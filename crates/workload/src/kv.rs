//! The key-value execution engine: the replicated service SpotLess
//! orders transactions for.
//!
//! Each replica holds an identical copy of the YCSB table (§6: "each
//! replica is initialized with an identical copy of the YCSB table") and
//! executes committed transactions sequentially. The store exposes two
//! commitments over its contents:
//!
//! * a cheap **rolling digest** over the applied write sequence
//!   ([`KvStore::state_digest`]) — the per-batch divergence check tests
//!   and client informs use;
//! * a **Merkle state root** ([`KvStore::state_root`]) over the store's
//!   *contents* — the commitment every ledger block seals, which lets a
//!   snapshot receiver verify transferred state byte-for-byte against
//!   the chain itself.
//!
//! The root is maintained incrementally so the hot path never rehashes
//! the full store per block: keys are partitioned into
//! [`STATE_BUCKETS`] fixed buckets by a multiplicative hash
//! ([`bucket_of`]), each write marks only its bucket dirty, and sealing
//! a block rehashes just the dirty buckets plus the (constant-size)
//! Merkle tree over the bucket digests. [`KvStore::rebuild_state_root`]
//! recomputes everything from scratch as the audit path.
//!
//! The same bucket partition is the unit of **chunked state transfer**:
//! a chunk is a contiguous bucket range in canonical encoding
//! ([`StateChunk`]), and each bucket's digest is one Merkle leaf, so a
//! receiver can verify every chunk against a block's state root with an
//! inclusion proof before trusting a single byte of it.

use crate::ycsb::{Operation, Transaction};
use spotless_crypto::MerkleTree;
use spotless_types::Digest;
use std::collections::{BTreeSet, HashMap};

/// Number of fixed state buckets (Merkle leaves) the key space is
/// partitioned into. **Consensus-critical**: every replica must use the
/// same count (and [`bucket_of`] placement) or their state roots — and
/// therefore their block hashes — diverge despite identical contents.
pub const STATE_BUCKETS: usize = 1024;

/// Leaf index of the store's metadata (rolling digest + counters) in
/// the state Merkle tree: one past the last bucket.
pub const META_LEAF: usize = STATE_BUCKETS;

/// The bucket a key belongs to. Fibonacci multiplicative hashing spreads
/// the YCSB key space (dense small integers) evenly over the buckets.
/// **Consensus-critical** — see [`STATE_BUCKETS`].
pub fn bucket_of(key: u64) -> usize {
    const SHIFT: u32 = 64 - STATE_BUCKETS.trailing_zeros();
    (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> SHIFT) as usize
}

/// Domain prefix of a bucket digest (a Merkle leaf payload).
const BUCKET_DOMAIN: &[u8] = b"spotless-kv-bucket-v1";
/// Magic prefix of the canonical metadata encoding (the meta leaf).
const META_MAGIC: &[u8] = b"spotless-kv-meta-v1";

/// Result of executing one transaction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExecResult {
    /// A read returning the value's digestible summary (length + first
    /// bytes); carrying full values out of the engine is the RPC layer's
    /// concern.
    Read {
        /// Digest of the read value (zero digest if the key is absent).
        value_digest: Digest,
    },
    /// A completed write.
    Written,
}

/// One chunk of a state transfer: the canonical encodings of a
/// contiguous bucket range. Chunks partition the whole bucket space;
/// each bucket inside verifies independently against the chain's state
/// root via its Merkle inclusion proof.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StateChunk {
    /// Index of the first bucket in the chunk.
    pub first_bucket: u32,
    /// Canonical encodings of buckets `first_bucket..first_bucket + len`.
    pub buckets: Vec<Vec<u8>>,
}

impl StateChunk {
    /// Canonical byte encoding (also the content-address preimage):
    /// `first:u32 count:u32 (len:u32 bytes)*`, little-endian.
    pub fn encode(&self) -> Vec<u8> {
        let total: usize = self.buckets.iter().map(|b| 8 + b.len()).sum();
        let mut out = Vec::with_capacity(8 + total);
        out.extend_from_slice(&self.first_bucket.to_le_bytes());
        out.extend_from_slice(&(self.buckets.len() as u32).to_le_bytes());
        for b in &self.buckets {
            out.extend_from_slice(&(b.len() as u32).to_le_bytes());
            out.extend_from_slice(b);
        }
        out
    }

    /// Decodes [`encode`](StateChunk::encode) output. Fail-closed: any
    /// structural defect (including trailing bytes or a bucket range
    /// leaving `0..STATE_BUCKETS`) yields `None`.
    pub fn decode(bytes: &[u8]) -> Option<StateChunk> {
        use spotless_types::bytes::take;
        let mut rest = bytes;
        let first_bucket = u32::from_le_bytes(take(&mut rest, 4)?.try_into().ok()?);
        let count = u32::from_le_bytes(take(&mut rest, 4)?.try_into().ok()?);
        if count == 0 || (first_bucket as u64 + count as u64) > STATE_BUCKETS as u64 {
            return None;
        }
        let mut buckets = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let len = u32::from_le_bytes(take(&mut rest, 4)?.try_into().ok()?) as usize;
            buckets.push(take(&mut rest, len)?.to_vec());
        }
        if !rest.is_empty() {
            return None;
        }
        Some(StateChunk {
            first_bucket,
            buckets,
        })
    }

    /// Content address: digest of the canonical encoding. Snapshot
    /// manifests and install journals reference chunks by this.
    pub fn content_digest(&self) -> Digest {
        spotless_crypto::digest_bytes(&self.encode())
    }
}

/// Digest of one canonically encoded bucket — the Merkle leaf payload
/// for that bucket's index. Verifiers recompute this over received
/// bucket bytes before checking the inclusion proof.
pub fn bucket_leaf_digest(encoded_bucket: &[u8]) -> Digest {
    spotless_crypto::digest_fields(&[BUCKET_DOMAIN, encoded_bucket])
}

/// An in-memory YCSB table with deterministic state digesting and an
/// incrementally maintained Merkle state root.
pub struct KvStore {
    table: HashMap<u64, Vec<u8>>,
    /// Rolling digest of the applied write sequence.
    state: Digest,
    writes_applied: u64,
    reads_served: u64,
    /// Sorted key membership per bucket (the canonical bucket order).
    bucket_keys: Vec<BTreeSet<u64>>,
    /// Cached per-bucket leaf digests; entries listed in `dirty` are
    /// stale and recomputed lazily at the next root/merkle call.
    bucket_digests: Vec<Digest>,
    dirty: Vec<bool>,
    any_dirty: bool,
    /// Cached root; `None` whenever contents or meta changed since the
    /// last computation.
    cached_root: Option<Digest>,
}

impl KvStore {
    /// An empty store.
    pub fn new() -> KvStore {
        KvStore {
            table: HashMap::new(),
            state: Digest::ZERO,
            writes_applied: 0,
            reads_served: 0,
            bucket_keys: vec![BTreeSet::new(); STATE_BUCKETS],
            bucket_digests: vec![Digest::ZERO; STATE_BUCKETS],
            dirty: vec![true; STATE_BUCKETS],
            any_dirty: true,
            cached_root: None,
        }
    }

    /// A store pre-loaded with `records` identical records of
    /// `value_size` bytes (the paper's initialization step).
    pub fn initialized(records: u64, value_size: u32) -> KvStore {
        let mut store = KvStore::new();
        let value = vec![0xAB; value_size as usize];
        for key in 0..records {
            store.raw_insert(key, value.clone());
        }
        store
    }

    /// Inserts without touching the rolling digest or counters (used by
    /// initialization and snapshot restore).
    fn raw_insert(&mut self, key: u64, value: Vec<u8>) {
        let b = bucket_of(key);
        self.bucket_keys[b].insert(key);
        self.table.insert(key, value);
        self.dirty[b] = true;
        self.any_dirty = true;
        self.cached_root = None;
    }

    /// Number of records currently stored.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// True iff the table is empty.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// Writes applied so far.
    pub fn writes_applied(&self) -> u64 {
        self.writes_applied
    }

    /// Reads served so far.
    pub fn reads_served(&self) -> u64 {
        self.reads_served
    }

    /// The rolling digest over the applied write sequence. Two replicas
    /// that executed the same committed transaction sequence have equal
    /// state digests.
    pub fn state_digest(&self) -> Digest {
        self.state
    }

    /// Executes one transaction.
    pub fn execute(&mut self, txn: &Transaction) -> ExecResult {
        match &txn.op {
            Operation::Read { key } => {
                self.reads_served += 1;
                // Counters live in the meta leaf, so even a read moves
                // the root (deterministically — reads are part of the
                // ordered execution sequence).
                self.cached_root = None;
                let value_digest = self
                    .table
                    .get(key)
                    .map(|v| spotless_crypto::digest_bytes(v))
                    .unwrap_or(Digest::ZERO);
                ExecResult::Read { value_digest }
            }
            Operation::Update { key, value } => {
                self.writes_applied += 1;
                self.raw_insert(*key, value.clone());
                // Chain the state digest over (key, value digest).
                let entry = spotless_crypto::digest_fields(&[&key.to_be_bytes(), value]);
                self.state = spotless_crypto::digest_chained(&self.state, &entry);
                ExecResult::Written
            }
        }
    }

    /// Executes a whole batch, returning the post-batch state digest.
    pub fn execute_batch(&mut self, txns: &[Transaction]) -> Digest {
        for txn in txns {
            self.execute(txn);
        }
        self.state
    }

    /// Canonical encoding of bucket `b`: `count:u32` then, per key in
    /// ascending order, `key:u64 len:u32 value`. This is both the Merkle
    /// leaf preimage (via [`bucket_leaf_digest`]) and the transfer
    /// payload unit.
    pub fn encode_bucket(&self, b: usize) -> Vec<u8> {
        let keys = &self.bucket_keys[b];
        let mut out = Vec::with_capacity(4 + keys.len() * 16);
        out.extend_from_slice(&(keys.len() as u32).to_le_bytes());
        for &key in keys {
            let value = &self.table[&key];
            out.extend_from_slice(&key.to_le_bytes());
            out.extend_from_slice(&(value.len() as u32).to_le_bytes());
            out.extend_from_slice(value);
        }
        out
    }

    /// Decodes one canonically encoded bucket, enforcing the canonical
    /// form: keys strictly ascending and every key placed in bucket `b`
    /// by [`bucket_of`]. `None` on any violation — a transfer peer
    /// cannot smuggle a key into the wrong bucket (its inclusion proof
    /// would cover the wrong leaf).
    pub fn decode_bucket(b: usize, bytes: &[u8]) -> Option<Vec<(u64, Vec<u8>)>> {
        use spotless_types::bytes::take;
        let mut rest = bytes;
        let count = u32::from_le_bytes(take(&mut rest, 4)?.try_into().ok()?);
        let mut entries = Vec::with_capacity(count.min(1 << 20) as usize);
        let mut last: Option<u64> = None;
        for _ in 0..count {
            let key = u64::from_le_bytes(take(&mut rest, 8)?.try_into().ok()?);
            if bucket_of(key) != b || last.is_some_and(|l| l >= key) {
                return None;
            }
            last = Some(key);
            let len = u32::from_le_bytes(take(&mut rest, 4)?.try_into().ok()?) as usize;
            entries.push((key, take(&mut rest, len)?.to_vec()));
        }
        if !rest.is_empty() {
            return None;
        }
        Some(entries)
    }

    /// Canonical encoding of the meta leaf: rolling digest + counters.
    /// Travels with transfer manifests; verified against the state root
    /// via the [`META_LEAF`] inclusion proof.
    pub fn transfer_meta(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(META_MAGIC.len() + 48);
        out.extend_from_slice(META_MAGIC);
        out.extend_from_slice(&self.state.0);
        out.extend_from_slice(&self.writes_applied.to_le_bytes());
        out.extend_from_slice(&self.reads_served.to_le_bytes());
        out
    }

    fn decode_meta(meta: &[u8]) -> Option<(Digest, u64, u64)> {
        use spotless_types::bytes::take;
        let mut rest = meta;
        if take(&mut rest, META_MAGIC.len())? != META_MAGIC {
            return None;
        }
        let mut state = Digest::ZERO;
        state.0.copy_from_slice(take(&mut rest, 32)?);
        let writes = u64::from_le_bytes(take(&mut rest, 8)?.try_into().ok()?);
        let reads = u64::from_le_bytes(take(&mut rest, 8)?.try_into().ok()?);
        if !rest.is_empty() {
            return None;
        }
        Some((state, writes, reads))
    }

    /// Recomputes the leaf digests of dirty buckets (cheap on the hot
    /// path: only buckets touched since the last call).
    fn refresh_buckets(&mut self) {
        if !self.any_dirty {
            return;
        }
        for b in 0..STATE_BUCKETS {
            if self.dirty[b] {
                self.bucket_digests[b] = bucket_leaf_digest(&self.encode_bucket(b));
                self.dirty[b] = false;
            }
        }
        self.any_dirty = false;
    }

    /// The state Merkle tree: leaves `0..STATE_BUCKETS` are the bucket
    /// digests, leaf [`META_LEAF`] is the meta encoding. Serving peers
    /// derive chunk inclusion proofs from it.
    pub fn state_merkle(&mut self) -> MerkleTree {
        self.refresh_buckets();
        let mut leaves: Vec<Vec<u8>> = Vec::with_capacity(STATE_BUCKETS + 1);
        for d in &self.bucket_digests {
            leaves.push(d.0.to_vec());
        }
        leaves.push(self.transfer_meta());
        MerkleTree::build(&leaves)
    }

    /// The Merkle commitment over the store's contents — what every
    /// ledger block seals as its `state_root`. Incremental: rehashes
    /// only dirty buckets plus the constant-size tree.
    pub fn state_root(&mut self) -> Digest {
        if let Some(root) = self.cached_root {
            return root;
        }
        let root = self.state_merkle().root();
        self.cached_root = Some(root);
        root
    }

    /// Audit path: recomputes the state root from nothing but the table
    /// contents and meta — no cached bucket digests, no dirty tracking.
    /// [`state_root`](KvStore::state_root) must always agree with this;
    /// snapshot installation uses it as the final gate on assembled
    /// state.
    pub fn rebuild_state_root(&self) -> Digest {
        let mut buckets: Vec<BTreeSet<u64>> = vec![BTreeSet::new(); STATE_BUCKETS];
        for &key in self.table.keys() {
            buckets[bucket_of(key)].insert(key);
        }
        let mut leaves: Vec<Vec<u8>> = Vec::with_capacity(STATE_BUCKETS + 1);
        for (b, keys) in buckets.iter().enumerate() {
            let mut enc = Vec::with_capacity(4 + keys.len() * 16);
            enc.extend_from_slice(&(keys.len() as u32).to_le_bytes());
            for &key in keys {
                let value = &self.table[&key];
                enc.extend_from_slice(&key.to_le_bytes());
                enc.extend_from_slice(&(value.len() as u32).to_le_bytes());
                enc.extend_from_slice(value);
            }
            debug_assert_eq!(enc, self.encode_bucket(b));
            leaves.push(bucket_leaf_digest(&enc).0.to_vec());
        }
        leaves.push(self.transfer_meta());
        MerkleTree::build(&leaves).root()
    }

    /// Splits the whole store into transfer chunks: contiguous bucket
    /// ranges packed greedily up to `budget` raw bytes each (always at
    /// least one bucket per chunk). The chunks partition
    /// `0..STATE_BUCKETS` exactly; together with
    /// [`transfer_meta`](KvStore::transfer_meta) they are the complete,
    /// verifiable serialization of the store.
    ///
    /// Scale bound: a single bucket is the smallest transferable unit,
    /// so one bucket's encoding must itself fit a wire frame — with
    /// [`STATE_BUCKETS`] fixed at 1024 and an evenly hashed key space
    /// that caps practical state around `1024 × chunk budget` (~1 GiB
    /// at the default budget) before skewed buckets risk outgrowing a
    /// frame. Growing past that needs a larger bucket count or
    /// sub-bucket chunking — a recorded ROADMAP item, since the bucket
    /// count is consensus-critical and cannot change ad hoc.
    pub fn to_chunks(&self, budget: usize) -> Vec<StateChunk> {
        let mut chunks = Vec::new();
        let mut current = StateChunk {
            first_bucket: 0,
            buckets: Vec::new(),
        };
        let mut current_bytes = 0usize;
        for b in 0..STATE_BUCKETS {
            let enc = self.encode_bucket(b);
            if !current.buckets.is_empty() && current_bytes + enc.len() > budget {
                let next_first = current.first_bucket + current.buckets.len() as u32;
                chunks.push(std::mem::replace(
                    &mut current,
                    StateChunk {
                        first_bucket: next_first,
                        buckets: Vec::new(),
                    },
                ));
                current_bytes = 0;
            }
            current_bytes += enc.len();
            current.buckets.push(enc);
        }
        chunks.push(current);
        chunks
    }

    /// Reassembles a store from a complete transfer: `meta` plus chunks
    /// covering every bucket exactly once. Fail-closed on any structural
    /// defect — gaps, overlaps, malformed buckets, keys in the wrong
    /// bucket. The caller still owns the cryptographic gate: comparing
    /// [`rebuild_state_root`](KvStore::rebuild_state_root) (or
    /// [`state_root`](KvStore::state_root)) of the result against the
    /// chain's committed root.
    pub fn from_transfer(meta: &[u8], chunks: &[StateChunk]) -> Option<KvStore> {
        let (state, writes_applied, reads_served) = KvStore::decode_meta(meta)?;
        let mut store = KvStore::new();
        let mut next_bucket = 0usize;
        for chunk in chunks {
            if chunk.first_bucket as usize != next_bucket {
                return None;
            }
            for (off, enc) in chunk.buckets.iter().enumerate() {
                let b = chunk.first_bucket as usize + off;
                if b >= STATE_BUCKETS {
                    return None;
                }
                for (key, value) in KvStore::decode_bucket(b, enc)? {
                    store.raw_insert(key, value);
                }
            }
            next_bucket += chunk.buckets.len();
        }
        if next_bucket != STATE_BUCKETS {
            return None;
        }
        store.state = state;
        store.writes_applied = writes_applied;
        store.reads_served = reads_served;
        Some(store)
    }

    /// Serializes the full store (table, rolling digest, counters) into
    /// a deterministic, monolithic byte snapshot: two stores with equal
    /// contents always produce equal bytes (keys are emitted in sorted
    /// order). Retained as the pre-chunking comparator (see the
    /// `snapshot_transfer` bench) and for small-state tooling; the
    /// durable and transfer paths use [`to_chunks`](KvStore::to_chunks).
    pub fn to_snapshot_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.table.len() * 16);
        out.extend_from_slice(SNAPSHOT_MAGIC);
        out.extend_from_slice(&self.state.0);
        out.extend_from_slice(&self.writes_applied.to_le_bytes());
        out.extend_from_slice(&self.reads_served.to_le_bytes());
        out.extend_from_slice(&(self.table.len() as u64).to_le_bytes());
        let mut keys: Vec<u64> = self.table.keys().copied().collect();
        keys.sort_unstable();
        for key in keys {
            let value = &self.table[&key];
            out.extend_from_slice(&key.to_le_bytes());
            out.extend_from_slice(&(value.len() as u32).to_le_bytes());
            out.extend_from_slice(value);
        }
        out
    }

    /// Restores a store from [`to_snapshot_bytes`](KvStore::to_snapshot_bytes)
    /// output. Fail-closed: any structural defect yields `None` rather
    /// than a partially restored store.
    pub fn from_snapshot_bytes(bytes: &[u8]) -> Option<KvStore> {
        use spotless_types::bytes::take;
        fn take_u64(bytes: &mut &[u8]) -> Option<u64> {
            take(bytes, 8).map(|s| u64::from_le_bytes(s.try_into().expect("8 bytes")))
        }
        let mut rest = bytes;
        if take(&mut rest, SNAPSHOT_MAGIC.len())? != SNAPSHOT_MAGIC {
            return None;
        }
        let mut state = Digest::ZERO;
        state.0.copy_from_slice(take(&mut rest, 32)?);
        let writes_applied = take_u64(&mut rest)?;
        let reads_served = take_u64(&mut rest)?;
        let count = take_u64(&mut rest)?;
        let mut store = KvStore::new();
        for _ in 0..count {
            let key = take_u64(&mut rest)?;
            let len = u32::from_le_bytes(take(&mut rest, 4)?.try_into().expect("4 bytes")) as usize;
            store.raw_insert(key, take(&mut rest, len)?.to_vec());
        }
        if !rest.is_empty() {
            return None;
        }
        store.state = state;
        store.writes_applied = writes_applied;
        store.reads_served = reads_served;
        Some(store)
    }
}

/// Version-bearing magic prefix of a monolithic KV snapshot.
const SNAPSHOT_MAGIC: &[u8] = b"spotless-kv-snapshot-v1";

impl Default for KvStore {
    fn default() -> Self {
        KvStore::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ycsb::{WorkloadGen, YcsbConfig};

    fn write(id: u64, key: u64, value: &[u8]) -> Transaction {
        Transaction {
            id,
            op: Operation::Update {
                key,
                value: value.to_vec(),
            },
        }
    }

    fn read(id: u64, key: u64) -> Transaction {
        Transaction {
            id,
            op: Operation::Read { key },
        }
    }

    #[test]
    fn initialization_loads_all_records() {
        let store = KvStore::initialized(1000, 48);
        assert_eq!(store.len(), 1000);
    }

    #[test]
    fn writes_then_reads_roundtrip() {
        let mut store = KvStore::new();
        store.execute(&write(0, 7, b"hello"));
        let r = store.execute(&read(1, 7));
        assert_eq!(
            r,
            ExecResult::Read {
                value_digest: spotless_crypto::digest_bytes(b"hello")
            }
        );
        assert_eq!(store.writes_applied(), 1);
        assert_eq!(store.reads_served(), 1);
    }

    #[test]
    fn missing_keys_read_as_zero_digest() {
        let mut store = KvStore::new();
        let r = store.execute(&read(0, 404));
        assert_eq!(
            r,
            ExecResult::Read {
                value_digest: Digest::ZERO
            }
        );
    }

    #[test]
    fn same_sequence_same_state_digest() {
        let mut generator = WorkloadGen::new(YcsbConfig::default(), 99);
        let txns = generator.next_batch(500);
        let mut a = KvStore::initialized(1000, 8);
        let mut b = KvStore::initialized(1000, 8);
        let da = a.execute_batch(&txns);
        let db = b.execute_batch(&txns);
        assert_eq!(da, db);
        assert_eq!(a.state_root(), b.state_root());
    }

    #[test]
    fn different_order_different_state_digest() {
        let t1 = write(0, 1, b"a");
        let t2 = write(1, 1, b"b");
        let mut a = KvStore::new();
        let mut b = KvStore::new();
        a.execute_batch(&[t1.clone(), t2.clone()]);
        b.execute_batch(&[t2, t1]);
        assert_ne!(a.state_digest(), b.state_digest());
        // The roots differ too: the rolling digest sits in the meta leaf.
        assert_ne!(a.state_root(), b.state_root());
    }

    #[test]
    fn incremental_root_matches_full_rebuild() {
        let mut generator = WorkloadGen::new(YcsbConfig::default(), 7);
        let mut store = KvStore::initialized(300, 16);
        for _ in 0..5 {
            store.execute_batch(&generator.next_batch(40));
            assert_eq!(
                store.state_root(),
                store.rebuild_state_root(),
                "incremental maintenance must agree with the audit rebuild"
            );
        }
    }

    #[test]
    fn content_changes_move_the_root() {
        let mut a = KvStore::new();
        let mut b = KvStore::new();
        a.execute(&write(0, 5, b"x"));
        b.execute(&write(0, 5, b"y"));
        assert_ne!(a.state_root(), b.state_root());
        // Reads move the root deterministically (counters are committed
        // state), and identically on both sides.
        let ra = a.state_root();
        a.execute(&read(1, 5));
        assert_ne!(a.state_root(), ra);
    }

    #[test]
    fn bucket_encoding_roundtrips_and_rejects_misplaced_keys() {
        let mut store = KvStore::new();
        for k in 0..200u64 {
            store.execute(&write(k, k, format!("v{k}").as_bytes()));
        }
        for b in 0..STATE_BUCKETS {
            let enc = store.encode_bucket(b);
            let entries = KvStore::decode_bucket(b, &enc).expect("canonical bucket decodes");
            assert!(entries.iter().all(|(k, _)| bucket_of(*k) == b));
            // The same bytes presented as a *different* bucket index
            // must be rejected unless the bucket is empty (an empty
            // encoding is valid anywhere — and hashes identically).
            if !entries.is_empty() {
                let wrong = (b + 1) % STATE_BUCKETS;
                assert!(KvStore::decode_bucket(wrong, &enc).is_none());
            }
        }
    }

    #[test]
    fn chunked_transfer_roundtrips_exactly() {
        let mut generator = WorkloadGen::new(YcsbConfig::default(), 21);
        let mut store = KvStore::initialized(500, 32);
        store.execute_batch(&generator.next_batch(400));
        let root = store.state_root();
        for budget in [64usize, 4096, 1 << 20] {
            let chunks = store.to_chunks(budget);
            assert_eq!(
                chunks.iter().map(|c| c.buckets.len()).sum::<usize>(),
                STATE_BUCKETS,
                "chunks must partition the bucket space"
            );
            // Wire roundtrip per chunk.
            let decoded: Vec<StateChunk> = chunks
                .iter()
                .map(|c| StateChunk::decode(&c.encode()).expect("chunk decodes"))
                .collect();
            assert_eq!(decoded, chunks);
            let mut back =
                KvStore::from_transfer(&store.transfer_meta(), &decoded).expect("assembles");
            assert_eq!(back.len(), store.len());
            assert_eq!(back.state_digest(), store.state_digest());
            assert_eq!(back.writes_applied(), store.writes_applied());
            assert_eq!(back.reads_served(), store.reads_served());
            assert_eq!(back.state_root(), root);
            assert_eq!(back.rebuild_state_root(), root);
        }
    }

    #[test]
    fn transfer_assembly_is_fail_closed() {
        let mut store = KvStore::initialized(50, 8);
        let meta = store.transfer_meta();
        let chunks = store.to_chunks(1 << 20);
        // Missing coverage.
        assert!(KvStore::from_transfer(&meta, &chunks[..0]).is_none());
        // Tampered meta.
        let mut bad_meta = meta.clone();
        bad_meta[0] ^= 0xff;
        assert!(KvStore::from_transfer(&bad_meta, &chunks).is_none());
        // A tampered bucket byte must break decoding or land keys in the
        // wrong bucket — and in every case move the recomputed root.
        let mut tampered = chunks.clone();
        let victim = tampered
            .iter_mut()
            .flat_map(|c| c.buckets.iter_mut())
            .find(|b| b.len() > 4)
            .expect("some non-empty bucket");
        let last = victim.len() - 1;
        victim[last] ^= 0x01;
        match KvStore::from_transfer(&meta, &tampered) {
            None => {}
            Some(polluted) => {
                assert_ne!(polluted.rebuild_state_root(), store.state_root());
            }
        }
    }

    #[test]
    fn chunk_content_digest_addresses_the_encoding() {
        let store = KvStore::initialized(20, 8);
        let chunks = store.to_chunks(1 << 20);
        let c = &chunks[0];
        assert_eq!(
            c.content_digest(),
            spotless_crypto::digest_bytes(&c.encode())
        );
    }

    #[test]
    fn state_merkle_proves_buckets_and_meta() {
        use spotless_crypto::{proof_index, verify_inclusion};
        let mut store = KvStore::initialized(200, 16);
        let tree = store.state_merkle();
        let root = store.state_root();
        assert_eq!(tree.root(), root);
        for b in [0usize, 1, STATE_BUCKETS / 2, STATE_BUCKETS - 1] {
            let proof = tree.prove(b).expect("bucket leaf");
            assert_eq!(proof_index(&proof), b);
            let leaf = bucket_leaf_digest(&store.encode_bucket(b));
            assert!(verify_inclusion(&leaf.0, &proof, &root));
        }
        let meta_proof = tree.prove(META_LEAF).expect("meta leaf");
        assert!(verify_inclusion(&store.transfer_meta(), &meta_proof, &root));
    }

    #[test]
    fn snapshot_bytes_roundtrip_exactly() {
        let mut generator = WorkloadGen::new(YcsbConfig::default(), 7);
        let mut store = KvStore::initialized(200, 16);
        store.execute_batch(&generator.next_batch(300));
        let bytes = store.to_snapshot_bytes();
        let mut back = KvStore::from_snapshot_bytes(&bytes).expect("valid snapshot");
        assert_eq!(back.state_digest(), store.state_digest());
        assert_eq!(back.writes_applied(), store.writes_applied());
        assert_eq!(back.reads_served(), store.reads_served());
        assert_eq!(back.len(), store.len());
        assert_eq!(back.state_root(), store.state_root());
        // Determinism: re-serializing the restored store is byte-identical.
        assert_eq!(back.to_snapshot_bytes(), bytes);
    }

    #[test]
    fn snapshot_decoding_is_fail_closed() {
        let mut store = KvStore::new();
        store.execute(&write(0, 3, b"abc"));
        let bytes = store.to_snapshot_bytes();
        assert!(KvStore::from_snapshot_bytes(&bytes[..bytes.len() - 1]).is_none());
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(KvStore::from_snapshot_bytes(&trailing).is_none());
        let mut bad_magic = bytes;
        bad_magic[0] ^= 0xff;
        assert!(KvStore::from_snapshot_bytes(&bad_magic).is_none());
        assert!(KvStore::from_snapshot_bytes(b"").is_none());
    }

    #[test]
    fn reads_do_not_change_state_digest() {
        let mut store = KvStore::new();
        store.execute(&write(0, 1, b"x"));
        let before = store.state_digest();
        store.execute(&read(1, 1));
        assert_eq!(store.state_digest(), before);
    }
}
