//! The key-value execution engine: the replicated service SpotLess
//! orders transactions for.
//!
//! Each replica holds an identical copy of the YCSB table (§6: "each
//! replica is initialized with an identical copy of the YCSB table") and
//! executes committed transactions sequentially. The store exposes a
//! running state digest so tests can check that replicas which executed
//! the same committed sequence hold the same state — the observable form
//! of non-divergence.

use crate::ycsb::{Operation, Transaction};
use spotless_types::Digest;
use std::collections::HashMap;

/// Result of executing one transaction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExecResult {
    /// A read returning the value's digestible summary (length + first
    /// bytes); carrying full values out of the engine is the RPC layer's
    /// concern.
    Read {
        /// Digest of the read value (zero digest if the key is absent).
        value_digest: Digest,
    },
    /// A completed write.
    Written,
}

/// An in-memory YCSB table with deterministic state digesting.
pub struct KvStore {
    table: HashMap<u64, Vec<u8>>,
    /// Rolling digest of the applied write sequence.
    state: Digest,
    writes_applied: u64,
    reads_served: u64,
}

impl KvStore {
    /// An empty store.
    pub fn new() -> KvStore {
        KvStore {
            table: HashMap::new(),
            state: Digest::ZERO,
            writes_applied: 0,
            reads_served: 0,
        }
    }

    /// A store pre-loaded with `records` identical records of
    /// `value_size` bytes (the paper's initialization step).
    pub fn initialized(records: u64, value_size: u32) -> KvStore {
        let mut store = KvStore::new();
        let value = vec![0xAB; value_size as usize];
        for key in 0..records {
            store.table.insert(key, value.clone());
        }
        store
    }

    /// Number of records currently stored.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// True iff the table is empty.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// Writes applied so far.
    pub fn writes_applied(&self) -> u64 {
        self.writes_applied
    }

    /// Reads served so far.
    pub fn reads_served(&self) -> u64 {
        self.reads_served
    }

    /// The rolling digest over the applied write sequence. Two replicas
    /// that executed the same committed transaction sequence have equal
    /// state digests.
    pub fn state_digest(&self) -> Digest {
        self.state
    }

    /// Executes one transaction.
    pub fn execute(&mut self, txn: &Transaction) -> ExecResult {
        match &txn.op {
            Operation::Read { key } => {
                self.reads_served += 1;
                let value_digest = self
                    .table
                    .get(key)
                    .map(|v| spotless_crypto::digest_bytes(v))
                    .unwrap_or(Digest::ZERO);
                ExecResult::Read { value_digest }
            }
            Operation::Update { key, value } => {
                self.writes_applied += 1;
                self.table.insert(*key, value.clone());
                // Chain the state digest over (key, value digest).
                let entry = spotless_crypto::digest_fields(&[&key.to_be_bytes(), value]);
                self.state = spotless_crypto::digest_chained(&self.state, &entry);
                ExecResult::Written
            }
        }
    }

    /// Executes a whole batch, returning the post-batch state digest.
    pub fn execute_batch(&mut self, txns: &[Transaction]) -> Digest {
        for txn in txns {
            self.execute(txn);
        }
        self.state
    }
}

impl Default for KvStore {
    fn default() -> Self {
        KvStore::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ycsb::{WorkloadGen, YcsbConfig};

    fn write(id: u64, key: u64, value: &[u8]) -> Transaction {
        Transaction {
            id,
            op: Operation::Update {
                key,
                value: value.to_vec(),
            },
        }
    }

    fn read(id: u64, key: u64) -> Transaction {
        Transaction {
            id,
            op: Operation::Read { key },
        }
    }

    #[test]
    fn initialization_loads_all_records() {
        let store = KvStore::initialized(1000, 48);
        assert_eq!(store.len(), 1000);
    }

    #[test]
    fn writes_then_reads_roundtrip() {
        let mut store = KvStore::new();
        store.execute(&write(0, 7, b"hello"));
        let r = store.execute(&read(1, 7));
        assert_eq!(
            r,
            ExecResult::Read {
                value_digest: spotless_crypto::digest_bytes(b"hello")
            }
        );
        assert_eq!(store.writes_applied(), 1);
        assert_eq!(store.reads_served(), 1);
    }

    #[test]
    fn missing_keys_read_as_zero_digest() {
        let mut store = KvStore::new();
        let r = store.execute(&read(0, 404));
        assert_eq!(
            r,
            ExecResult::Read {
                value_digest: Digest::ZERO
            }
        );
    }

    #[test]
    fn same_sequence_same_state_digest() {
        let mut generator = WorkloadGen::new(YcsbConfig::default(), 99);
        let txns = generator.next_batch(500);
        let mut a = KvStore::initialized(1000, 8);
        let mut b = KvStore::initialized(1000, 8);
        let da = a.execute_batch(&txns);
        let db = b.execute_batch(&txns);
        assert_eq!(da, db);
    }

    #[test]
    fn different_order_different_state_digest() {
        let t1 = write(0, 1, b"a");
        let t2 = write(1, 1, b"b");
        let mut a = KvStore::new();
        let mut b = KvStore::new();
        a.execute_batch(&[t1.clone(), t2.clone()]);
        b.execute_batch(&[t2, t1]);
        assert_ne!(a.state_digest(), b.state_digest());
    }

    #[test]
    fn reads_do_not_change_state_digest() {
        let mut store = KvStore::new();
        store.execute(&write(0, 1, b"x"));
        let before = store.state_digest();
        store.execute(&read(1, 1));
        assert_eq!(store.state_digest(), before);
    }
}
