//! The resource model: message sizes, cryptographic CPU costs, execution
//! speed, and NIC bandwidth.
//!
//! All constants default to the values §6.1 of the paper reports for
//! Apache ResilientDB on the Oracle Cloud e3 machines:
//!
//! * a proposal carrying a 100-transaction batch is **5400 B**;
//! * a client reply for 100 transactions is **1748 B**;
//! * every other replication message is **432 B**;
//! * sequential execution tops out at **340 ktxn/s**;
//! * replicas have **16 cores** at 3.4 GHz and (per Figure 14(b)) NICs
//!   shaped between 500 and 4000 Mbit/s — we default to 4000 Mbit/s,
//!   the unshaped operating point of the other experiments.
//!
//! Cryptographic costs are single-core latencies of Ed25519/SHA-256
//! class primitives on that hardware; the absolute values matter less
//! than their ratios (a signature verification is ~2 orders of magnitude
//! more expensive than a MAC), which is what drives the paper's
//! HotStuff-vs-SpotLess and Narwhal-HS CPU-bottleneck findings. The
//! repo's own from-scratch Ed25519 lands in the same band (the
//! `sig_verify` bench measures ~70 µs sign / ~90 µs serial verify on
//! dev hardware and asserts the ≥ 2× batched-verification floor that
//! [`CryptoCosts::batch_verify_k`] models), so simulated and deployed
//! cost ratios agree.

use serde::{Deserialize, Serialize};

/// Single-core CPU costs of cryptographic operations, in nanoseconds.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CryptoCosts {
    /// Producing one digital signature (Ed25519-class).
    pub sign_ns: u64,
    /// Verifying one digital signature serially.
    pub verify_ns: u64,
    /// Generating or verifying one MAC (HMAC-SHA256-class).
    pub mac_ns: u64,
    /// Hashing, per byte (batch digests, chain digests).
    pub hash_ns_per_byte: u64,
}

impl Default for CryptoCosts {
    fn default() -> Self {
        CryptoCosts {
            sign_ns: 35_000,
            verify_ns: 80_000,
            mac_ns: 900,
            hash_ns_per_byte: 3,
        }
    }
}

impl CryptoCosts {
    /// Cost of verifying `k` signatures serially (e.g. a HotStuff
    /// certificate represented as a list of `n − f` signatures, per
    /// §6.2 — the baselines verify one at a time, as the paper's
    /// deployment did).
    #[inline]
    pub fn verify_k(&self, k: u32) -> u64 {
        self.verify_ns * u64::from(k)
    }

    /// Cost of verifying `k` signatures in one batched pass (randomized
    /// linear combination over a shared doubling chain — the path the
    /// runtime's certificate re-checks take). The 2× amortization is
    /// the *floor* `benches/sig_verify.rs` asserts against the real
    /// implementation at quorum-scale batches; a single signature
    /// gains nothing from batching.
    #[inline]
    pub fn batch_verify_k(&self, k: u32) -> u64 {
        if k <= 1 {
            self.verify_k(k)
        } else {
            self.verify_k(k) / 2
        }
    }
}

/// Wire-size model for protocol messages, calibrated to §6.1.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SizeModel {
    /// Fixed size of a replication message that carries no batch and no
    /// certificate (PBFT prepare/commit, SpotLess `Sync`, HotStuff vote).
    pub protocol_msg: u64,
    /// Per-transaction framing overhead inside a proposal, added to the
    /// transaction payload itself. With the defaults, a 100 × 48 B batch
    /// proposal is `432 + 100 · (48 + 2) = 5432 B ≈ 5400 B`.
    pub per_txn_overhead: u64,
    /// Fixed part of a client reply (`Inform`).
    pub reply_base: u64,
    /// Per-transaction part of a client reply. Defaults give
    /// `48 + 100 · 17 = 1748 B`, the paper's reply size.
    pub reply_per_txn: u64,
    /// Size of one digital signature on the wire.
    pub signature: u64,
    /// Size of one digest on the wire.
    pub digest: u64,
}

impl Default for SizeModel {
    fn default() -> Self {
        SizeModel {
            protocol_msg: 432,
            per_txn_overhead: 2,
            reply_base: 48,
            reply_per_txn: 17,
            signature: 64,
            digest: 32,
        }
    }
}

impl SizeModel {
    /// Size of a proposal carrying `txns` transactions of `txn_size` bytes.
    #[inline]
    pub fn proposal(&self, txns: u32, txn_size: u32) -> u64 {
        self.protocol_msg + u64::from(txns) * (u64::from(txn_size) + self.per_txn_overhead)
    }

    /// Size of a certificate of `k` signatures attached to a message.
    #[inline]
    pub fn certificate(&self, k: u32) -> u64 {
        u64::from(k) * (self.signature + self.digest)
    }

    /// Size of a client reply for a `txns`-transaction batch.
    #[inline]
    pub fn reply(&self, txns: u32) -> u64 {
        self.reply_base + u64::from(txns) * self.reply_per_txn
    }
}

/// Per-replica hardware model.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResourceModel {
    /// Number of CPU cores available to consensus (Figure 14(a) varies
    /// this between 4 and 32; machines default to 16).
    pub cores: u32,
    /// Outbound/inbound NIC bandwidth in bits per second (Figure 14(b)
    /// varies 500–4000 Mbit/s).
    pub nic_bps: u64,
    /// Single-core nanoseconds to execute one transaction. The paper's
    /// sequential execution ceiling is 340 ktxn/s ⇒ ~2941 ns/txn.
    pub exec_ns_per_txn: u64,
    /// Base CPU nanoseconds to handle any delivered message, independent
    /// of authentication (deserialization, dispatch, bookkeeping).
    pub handle_ns: u64,
    /// Cryptographic cost table.
    pub crypto: CryptoCosts,
    /// Message size table.
    pub sizes: SizeModel,
}

impl Default for ResourceModel {
    fn default() -> Self {
        ResourceModel {
            cores: 16,
            nic_bps: 4_000_000_000,
            exec_ns_per_txn: 2_941,
            handle_ns: 1_500,
            crypto: CryptoCosts::default(),
            sizes: SizeModel::default(),
        }
    }
}

impl ResourceModel {
    /// Nanoseconds the NIC needs to serialize `bytes` onto the wire.
    #[inline]
    pub fn tx_ns(&self, bytes: u64) -> u64 {
        // bytes * 8 bits / (bits/s) in nanoseconds = bytes * 8e9 / bps.
        bytes.saturating_mul(8_000_000_000) / self.nic_bps
    }

    /// Sets the NIC bandwidth in Mbit/s (Figure 14(b) units).
    pub fn with_bandwidth_mbps(mut self, mbps: u64) -> Self {
        self.nic_bps = mbps * 1_000_000;
        self
    }

    /// Sets the core count (Figure 14(a) units).
    pub fn with_cores(mut self, cores: u32) -> Self {
        assert!(cores >= 1);
        self.cores = cores;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_sizes_match_section_6_1() {
        let s = SizeModel::default();
        // 100 txn × 48 B batch ⇒ ~5400 B proposal.
        let p = s.proposal(100, 48);
        assert!((5300..=5500).contains(&p), "proposal size {p}");
        // 100-transaction reply ⇒ 1748 B.
        assert_eq!(s.reply(100), 1748);
        // Non-batch messages are 432 B.
        assert_eq!(s.protocol_msg, 432);
    }

    #[test]
    fn default_execution_ceiling_is_340k() {
        let r = ResourceModel::default();
        let per_sec = 1_000_000_000 / r.exec_ns_per_txn;
        assert!((335_000..=345_000).contains(&per_sec), "{per_sec}");
    }

    #[test]
    fn tx_time_is_linear_in_bytes() {
        let r = ResourceModel::default().with_bandwidth_mbps(1000);
        // 1 Gbit/s: 1250 bytes take 10 µs.
        assert_eq!(r.tx_ns(1250), 10_000);
        assert_eq!(r.tx_ns(0), 0);
    }

    #[test]
    fn signature_much_slower_than_mac() {
        let c = CryptoCosts::default();
        assert!(c.verify_ns > 50 * c.mac_ns);
        assert!(
            c.sign_ns < c.verify_ns,
            "Ed25519 signs cheaper than it verifies"
        );
        assert_eq!(c.verify_k(3), 3 * c.verify_ns);
    }

    #[test]
    fn batch_verification_halves_quorum_cost() {
        let c = CryptoCosts::default();
        assert_eq!(c.batch_verify_k(0), 0);
        assert_eq!(
            c.batch_verify_k(1),
            c.verify_ns,
            "no gain for a single signature"
        );
        assert_eq!(c.batch_verify_k(64), 32 * c.verify_ns);
        assert!(c.batch_verify_k(3) < c.verify_k(3));
    }

    #[test]
    fn builders() {
        let r = ResourceModel::default()
            .with_cores(4)
            .with_bandwidth_mbps(500);
        assert_eq!(r.cores, 4);
        assert_eq!(r.nic_bps, 500_000_000);
    }
}
