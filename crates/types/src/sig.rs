//! Detached signatures and the vote statements they cover.
//!
//! The `Signature` *carrier* lives here, next to [`Digest`], so that
//! protocol messages and [`CommitCertificate`] can transport signatures
//! without depending on the signature algorithm: `spotless-crypto`
//! depends on this crate, not the other way around. The bytes are an
//! Ed25519 signature (R ‖ S) when produced by the real key store, or
//! all-zero placeholders under pure simulation, where authenticity is
//! *charged* by the cost model instead of computed.
//!
//! [`CommitCertificate`]: crate::node::CommitCertificate

use crate::ids::{Digest, InstanceId, View};
use serde::{Deserialize, Serialize};

/// Length of a detached signature in bytes (Ed25519: R ‖ S).
pub const SIGNATURE_LEN: usize = 64;

/// A detached signature over some statement.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Signature(pub [u8; SIGNATURE_LEN]);

impl Signature {
    /// The all-zero placeholder used where no key material exists: by
    /// the default [`Context`] signing oracle under simulation, and in
    /// hand-built test fixtures. Never verifies under a real key.
    ///
    /// [`Context`]: crate::node::Context
    pub const ZERO: Signature = Signature([0u8; SIGNATURE_LEN]);
}

impl Default for Signature {
    fn default() -> Signature {
        Signature::ZERO
    }
}

impl std::fmt::Debug for Signature {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sig:{:02x}{:02x}…", self.0[0], self.0[1])
    }
}

/// The statement a consensus vote signs: "in `view` of `instance`, I
/// vote for `digest` (at `slot`)".
///
/// This is the canonical signing unit shared by every protocol in the
/// workspace — a SpotLess `Sync` claim or `CP` endorsement, a HotStuff
/// vote, a PBFT commit. `digest` is whatever object the protocol votes
/// on (a proposal digest, block digest, or batch digest); `slot`
/// disambiguates protocols like PBFT whose voted digest does not itself
/// bind a log position (zero elsewhere).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct VoteStatement {
    /// The consensus instance the vote belongs to.
    pub instance: InstanceId,
    /// The view the vote was cast in.
    pub view: View,
    /// Log position, for protocols whose digest does not bind one.
    pub slot: u64,
    /// The object being voted for.
    pub digest: Digest,
}

impl VoteStatement {
    /// A statement with no separate log position.
    pub fn new(instance: InstanceId, view: View, digest: Digest) -> VoteStatement {
        VoteStatement {
            instance,
            view,
            slot: 0,
            digest,
        }
    }

    /// The canonical byte string that is actually signed:
    /// domain tag ‖ instance ‖ view ‖ slot ‖ digest, all fixed-width, so
    /// no two distinct statements share an encoding.
    pub fn signing_bytes(&self) -> [u8; 68] {
        let mut out = [0u8; 68];
        out[..16].copy_from_slice(b"spotless-vote-v1");
        out[16..20].copy_from_slice(&self.instance.0.to_le_bytes());
        out[20..28].copy_from_slice(&self.view.0.to_le_bytes());
        out[28..36].copy_from_slice(&self.slot.to_le_bytes());
        out[36..].copy_from_slice(&self.digest.0);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signing_bytes_are_injective_across_fields() {
        let base = VoteStatement::new(InstanceId(1), View(2), Digest::from_u64(3));
        let variants = [
            VoteStatement::new(InstanceId(2), View(2), Digest::from_u64(3)),
            VoteStatement::new(InstanceId(1), View(3), Digest::from_u64(3)),
            VoteStatement::new(InstanceId(1), View(2), Digest::from_u64(4)),
            VoteStatement { slot: 7, ..base },
        ];
        for v in variants {
            assert_ne!(base.signing_bytes(), v.signing_bytes());
        }
        assert_eq!(base.signing_bytes(), base.signing_bytes());
    }

    #[test]
    fn zero_signature_is_default() {
        assert_eq!(Signature::default(), Signature::ZERO);
        assert_eq!(format!("{:?}", Signature::ZERO), "sig:0000…");
    }
}
