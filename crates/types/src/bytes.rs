//! Minimal byte-cursor helper shared by the workspace's hand-rolled
//! binary decoders (KV snapshots in `spotless-workload`, wire envelopes
//! in `spotless-runtime`). One implementation, so bounds-handling fixes
//! land everywhere at once.

/// Splits the first `n` bytes off the front of `bytes`, advancing it.
/// `None` if fewer than `n` bytes remain — callers decode fail-closed.
pub fn take<'a>(bytes: &mut &'a [u8], n: usize) -> Option<&'a [u8]> {
    if bytes.len() < n {
        return None;
    }
    let (head, tail) = bytes.split_at(n);
    *bytes = tail;
    Some(head)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_advances_and_bounds_checks() {
        let data = [1u8, 2, 3, 4, 5];
        let mut cursor: &[u8] = &data;
        assert_eq!(take(&mut cursor, 2), Some(&[1u8, 2][..]));
        assert_eq!(take(&mut cursor, 0), Some(&[][..]));
        assert_eq!(take(&mut cursor, 3), Some(&[3u8, 4, 5][..]));
        assert_eq!(take(&mut cursor, 1), None);
        let mut empty: &[u8] = &[];
        assert_eq!(take(&mut empty, 1), None);
        assert_eq!(take(&mut empty, 0), Some(&[][..]));
    }
}
