//! Strongly-typed identifiers.
//!
//! The paper models the system as a fixed set of replicas `ℜ` with
//! `id(R) ∈ [0, n)` plus an open set of clients. We keep each identifier in
//! its own newtype so that views, instances, and replicas cannot be mixed
//! up silently — a classic source of rotational-consensus bugs, since the
//! primary of instance `i` in view `v` is `(i + v) mod n` and every one of
//! those three numbers is "just an integer".

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a replica, `0 ≤ id < n`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ReplicaId(pub u32);

impl ReplicaId {
    /// The replica's position in the identifier space, as a `usize` index.
    #[inline]
    pub fn as_usize(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for ReplicaId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}", self.0)
    }
}

impl fmt::Display for ReplicaId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}", self.0)
    }
}

/// Identifier of a client. Clients are unbounded and untrusted (§2: "all
/// clients can be malicious without affecting SpotLess").
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ClientId(pub u64);

impl fmt::Debug for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C{}", self.0)
    }
}

/// Identifier of a concurrent consensus instance, `0 ≤ id < m ≤ n` (§4.1).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct InstanceId(pub u32);

impl InstanceId {
    /// The instance's position as a `usize` index.
    #[inline]
    pub fn as_usize(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for InstanceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "I{}", self.0)
    }
}

/// A view number. Each chained-consensus instance proceeds through views
/// `v = 0, 1, 2, …`; view `v` of instance `i` is coordinated by replica
/// `(i + v) mod n`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default)]
pub struct View(pub u64);

impl View {
    /// The genesis view.
    pub const ZERO: View = View(0);

    /// The next view, `v + 1`.
    #[inline]
    pub fn next(self) -> View {
        View(self.0 + 1)
    }

    /// The previous view, or `None` at genesis.
    #[inline]
    pub fn prev(self) -> Option<View> {
        self.0.checked_sub(1).map(View)
    }

    /// `self + delta` views ahead.
    #[inline]
    pub fn advance(self, delta: u64) -> View {
        View(self.0 + delta)
    }
}

impl fmt::Debug for View {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for View {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Identifier of a client batch of transactions, unique per run. Batches
/// are the unit proposed by primaries (ResilientDB groups ~100 txn/batch).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BatchId(pub u64);

impl fmt::Debug for BatchId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "B{}", self.0)
    }
}

/// A 32-byte cryptographic digest (`digest(v)` in the paper's notation).
///
/// The digest algorithm lives in `spotless-crypto`; this type is only the
/// carrier so that the protocol crates do not depend on the hash
/// implementation. Simulation code builds digests from counters via
/// [`Digest::from_u64`], which preserves uniqueness without hashing cost.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default)]
pub struct Digest(pub [u8; 32]);

impl Digest {
    /// The all-zero digest, used for genesis and no-op placeholders.
    pub const ZERO: Digest = Digest([0u8; 32]);

    /// Embeds a `u64` tag into a digest (bytes 0..8, big-endian). Distinct
    /// tags yield distinct digests, which is all simulation needs.
    pub fn from_u64(tag: u64) -> Digest {
        let mut d = [0u8; 32];
        d[..8].copy_from_slice(&tag.to_be_bytes());
        Digest(d)
    }

    /// Recovers the `u64` tag from a digest made by [`Digest::from_u64`].
    pub fn as_u64_tag(&self) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.0[..8]);
        u64::from_be_bytes(b)
    }
}

impl fmt::Debug for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#")?;
        for byte in &self.0[..4] {
            write!(f, "{byte:02x}")?;
        }
        write!(f, "…")
    }
}

/// Any addressable participant: a replica or a client.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum NodeId {
    /// A consensus replica.
    Replica(ReplicaId),
    /// A client (or the simulator's aggregated client sink).
    Client(ClientId),
}

impl NodeId {
    /// Returns the replica id if this node is a replica.
    #[inline]
    pub fn replica(self) -> Option<ReplicaId> {
        match self {
            NodeId::Replica(r) => Some(r),
            NodeId::Client(_) => None,
        }
    }

    /// True iff this node is a replica.
    #[inline]
    pub fn is_replica(self) -> bool {
        matches!(self, NodeId::Replica(_))
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeId::Replica(r) => write!(f, "{r:?}"),
            NodeId::Client(c) => write!(f, "{c:?}"),
        }
    }
}

impl From<ReplicaId> for NodeId {
    fn from(r: ReplicaId) -> Self {
        NodeId::Replica(r)
    }
}

impl From<ClientId> for NodeId {
    fn from(c: ClientId) -> Self {
        NodeId::Client(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn view_arithmetic() {
        assert_eq!(View::ZERO.next(), View(1));
        assert_eq!(View(5).prev(), Some(View(4)));
        assert_eq!(View::ZERO.prev(), None);
        assert_eq!(View(3).advance(4), View(7));
    }

    #[test]
    fn node_id_conversions() {
        let r: NodeId = ReplicaId(3).into();
        assert!(r.is_replica());
        assert_eq!(r.replica(), Some(ReplicaId(3)));
        let c: NodeId = ClientId(9).into();
        assert!(!c.is_replica());
        assert_eq!(c.replica(), None);
    }

    #[test]
    fn debug_formats_are_compact() {
        assert_eq!(format!("{:?}", ReplicaId(7)), "R7");
        assert_eq!(format!("{:?}", View(2)), "v2");
        assert_eq!(format!("{:?}", InstanceId(1)), "I1");
        assert_eq!(format!("{:?}", BatchId(42)), "B42");
        assert_eq!(format!("{:?}", NodeId::Client(ClientId(0))), "C0");
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(View(2) < View(10));
        assert!(ReplicaId(0) < ReplicaId(1));
    }
}
