//! Shared vocabulary for the SpotLess reproduction.
//!
//! This crate defines the small, dependency-light types that every other
//! crate in the workspace builds on:
//!
//! * [`ids`] — strongly-typed identifiers for replicas, clients, consensus
//!   instances, views, and client batches.
//! * [`time`] — a nanosecond-resolution simulated clock ([`SimTime`],
//!   [`SimDuration`]) shared by the discrete-event simulator and the
//!   protocol timers.
//! * [`node`] — the **sans-IO node model**: every protocol in this
//!   workspace (SpotLess and the four baselines) is an I/O-free state
//!   machine implementing [`node::Node`]. The discrete-event simulator and
//!   the tokio transport both drive the very same protocol code through
//!   this interface.
//! * [`config`] — cluster-level configuration and quorum arithmetic
//!   (`n > 3f`, quorums of `n - f`, weak quorums of `f + 1`).
//! * [`costs`] — the resource model constants (message sizes, CPU costs of
//!   cryptographic operations, sequential-execution speed) taken from
//!   §6.1 of the paper.
//! * [`fault`] — the Byzantine behaviour taxonomy used by the failure
//!   experiments (attacks A1–A4 of §6.3).
//! * [`bytes`] — the shared byte-cursor helper for hand-rolled binary
//!   decoders.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bytes;
pub mod config;
pub mod costs;
pub mod fault;
pub mod ids;
pub mod node;
pub mod replica_set;
pub mod time;

pub use config::ClusterConfig;
pub use costs::{CryptoCosts, ResourceModel, SizeModel};
pub use fault::ByzantineBehavior;
pub use ids::{BatchId, ClientId, Digest, InstanceId, NodeId, ReplicaId, View};
pub use node::{
    CertPhase, ClientBatch, CommitCertificate, CommitInfo, Context, Input, Node, TimerId, TimerKind,
};
pub use replica_set::ReplicaSet;
pub use time::{SimDuration, SimTime};
