//! Shared vocabulary for the SpotLess reproduction.
//!
//! This crate defines the small, dependency-light types that every other
//! crate in the workspace builds on:
//!
//! * [`ids`] — strongly-typed identifiers for replicas, clients, consensus
//!   instances, views, and client batches.
//! * [`time`] — a nanosecond-resolution simulated clock ([`SimTime`],
//!   [`SimDuration`]) shared by the discrete-event simulator and the
//!   protocol timers.
//! * [`node`] — the **sans-IO node model**: every protocol in this
//!   workspace (SpotLess and the four baselines) is an I/O-free state
//!   machine implementing [`node::Node`]. The discrete-event simulator and
//!   the tokio transport both drive the very same protocol code through
//!   this interface.
//! * [`config`] — cluster-level configuration and quorum arithmetic
//!   (`n > 3f`, quorums of `n - f`, weak quorums of `f + 1`).
//! * [`costs`] — the resource model constants (message sizes, CPU costs of
//!   cryptographic operations, sequential-execution speed) taken from
//!   §6.1 of the paper.
//! * [`fault`] — the Byzantine behaviour taxonomy used by the failure
//!   experiments (attacks A1–A4 of §6.3).
//! * [`sig`] — the detached [`Signature`] carrier (Ed25519 `R ‖ S`
//!   bytes) and the [`VoteStatement`] a certificate's signatures cover,
//!   kept algorithm-agnostic here so `spotless-crypto` can depend on
//!   this crate and not vice versa.
//! * [`bytes`] — the shared byte-cursor helper for hand-rolled binary
//!   decoders.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bytes;
pub mod config;
pub mod costs;
pub mod fault;
pub mod ids;
pub mod node;
pub mod replica_set;
pub mod sig;
pub mod time;

pub use config::ClusterConfig;
pub use costs::{CryptoCosts, ResourceModel, SizeModel};
pub use fault::ByzantineBehavior;
pub use ids::{BatchId, ClientId, Digest, InstanceId, NodeId, ReplicaId, View};
pub use node::{
    CertPhase, ClientBatch, CommitCertificate, CommitInfo, Context, Input, Node, TimerId, TimerKind,
};
pub use replica_set::ReplicaSet;
pub use sig::{Signature, VoteStatement, SIGNATURE_LEN};
pub use time::{SimDuration, SimTime};

/// Upper bound on a single wire frame (DoS guard; generously above the
/// largest proposal at 400 txn × 1600 B). Centralized here because
/// multiple layers must agree on it: the TCP fabric enforces it on both
/// read and write, and the runtime derives its catch-up response and
/// snapshot-chunk budgets from it so nothing it emits can ever exceed
/// what the fabric will carry.
pub const SIMPLE_FRAME_LIMIT: u64 = 8 * 1024 * 1024;

/// Raw-byte budget for one snapshot-transfer chunk, derived from the
/// frame limit: a chunk's wire frame adds per-bucket Merkle proofs
/// (~360 B each) and framing on top of the raw bytes (the binary wire
/// codec carries byte payloads 1:1 — the budget kept its JSON-era
/// margin, which is now pure headroom), so an eighth of the frame
/// limit keeps the serialized frame comfortably inside it.
pub const SNAPSHOT_CHUNK_BYTES: usize = (SIMPLE_FRAME_LIMIT / 8) as usize;
