//! Cluster configuration and quorum arithmetic.
//!
//! The paper assumes `n > 3f` (§2). All quorum sizes used anywhere in the
//! workspace come from this module so the arithmetic is written — and
//! property-tested — exactly once.

use crate::ids::{InstanceId, ReplicaId, View};
use crate::time::SimDuration;
use serde::{Deserialize, Serialize};

/// Static configuration of one consensus cluster.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Number of replicas, `n`.
    pub n: u32,
    /// Number of concurrent consensus instances, `1 ≤ m ≤ n` (§4.1).
    pub m: u32,
    /// Transactions grouped per client batch (ResilientDB default: 100).
    pub batch_txns: u32,
    /// Size in bytes of an individual transaction (YCSB default: 48 B).
    pub txn_size: u32,
    /// Initial value of the Recording timer `t_R` (ST1).
    pub recording_timeout: SimDuration,
    /// Initial value of the Certifying timer `t_A` (ST3).
    pub certifying_timeout: SimDuration,
    /// The constant `ε` added to a timer after consecutive timeouts (§3.5).
    pub timeout_epsilon: SimDuration,
    /// Period of the §3.5 retransmission loop for unanswered Υ/Ask traffic.
    pub retransmit_interval: SimDuration,
    /// Initial client response timeout `t_C` (§5, doubled per retry).
    pub client_timeout: SimDuration,
}

impl ClusterConfig {
    /// A configuration with `n` replicas and `n` concurrent instances,
    /// using the paper's defaults everywhere else.
    pub fn new(n: u32) -> ClusterConfig {
        ClusterConfig::with_instances(n, n)
    }

    /// A configuration with `n` replicas and `m` concurrent instances.
    pub fn with_instances(n: u32, m: u32) -> ClusterConfig {
        assert!(n >= 4, "consensus requires n > 3f with f >= 1, i.e. n >= 4");
        assert!(m >= 1 && m <= n, "instances must satisfy 1 <= m <= n");
        ClusterConfig {
            n,
            m,
            batch_txns: 100,
            txn_size: 48,
            recording_timeout: SimDuration::from_millis(150),
            certifying_timeout: SimDuration::from_millis(150),
            timeout_epsilon: SimDuration::from_millis(20),
            retransmit_interval: SimDuration::from_millis(100),
            client_timeout: SimDuration::from_millis(1500),
        }
    }

    /// Calibrates the protocol timeouts for a deployment whose largest
    /// one-way link latency is `max_one_way` (§6.3: the authors "set the
    /// timeout length appropriately" from the calculated view duration;
    /// a view needs at least a Propose hop plus a Sync hop, so timers
    /// below a few RTTs time out spuriously on WAN links and collapse
    /// chained progress — see the geo-scale experiments).
    pub fn calibrate_timeouts(&mut self, max_one_way: SimDuration) {
        // A full view is ~2 one-way hops; leave 3x headroom for queueing.
        let view_floor = SimDuration::from_nanos(max_one_way.as_nanos().saturating_mul(6));
        self.recording_timeout = self.recording_timeout.max(view_floor);
        self.certifying_timeout = self.certifying_timeout.max(view_floor);
        self.timeout_epsilon = self
            .timeout_epsilon
            .max(SimDuration::from_nanos(view_floor.as_nanos() / 8));
        self.retransmit_interval = self.retransmit_interval.max(SimDuration::from_nanos(
            max_one_way.as_nanos().saturating_mul(2),
        ));
        // Clients wait for consensus + execution + a reply hop.
        let client_floor = SimDuration::from_nanos(view_floor.as_nanos().saturating_mul(10));
        self.client_timeout = self.client_timeout.max(client_floor);
    }

    /// Maximum number of tolerated faulty replicas, `f = ⌊(n − 1) / 3⌋`
    /// (largest `f` with `n > 3f`).
    #[inline]
    pub fn f(&self) -> u32 {
        (self.n - 1) / 3
    }

    /// The strong quorum `n − f`: enough concurring votes to conditionally
    /// prepare, certify, or (transitively) commit.
    #[inline]
    pub fn quorum(&self) -> u32 {
        self.n - self.f()
    }

    /// The weak quorum `f + 1`: guarantees at least one non-faulty member,
    /// used by the RVS view-jump, echo, and conditional-prepare-by-CP rules.
    #[inline]
    pub fn weak_quorum(&self) -> u32 {
        self.f() + 1
    }

    /// The primary of view `v` in instance `i`: replica `(i + v) mod n`
    /// (§4.1, Figure 5). Single-instance deployments use instance 0 and
    /// recover the paper's §3.1 rule `id(P) = v mod n`.
    #[inline]
    pub fn primary_of(&self, instance: InstanceId, view: View) -> ReplicaId {
        ReplicaId(((u64::from(instance.0) + view.0) % u64::from(self.n)) as u32)
    }

    /// Which instance may propose a batch with digest tag `d`
    /// (§5: instance `i` proposes digests with `d mod m == i`, stated
    /// 1-based in the paper; we use the equivalent 0-based form).
    #[inline]
    pub fn instance_for_digest(&self, digest_tag: u64) -> InstanceId {
        InstanceId((digest_tag % u64::from(self.m)) as u32)
    }

    /// Iterator over all replica ids.
    pub fn replicas(&self) -> impl Iterator<Item = ReplicaId> {
        (0..self.n).map(ReplicaId)
    }

    /// Iterator over all instance ids.
    pub fn instances(&self) -> impl Iterator<Item = InstanceId> {
        (0..self.m).map(InstanceId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibrate_timeouts_scales_with_link_latency() {
        let mut c = ClusterConfig::new(16);
        let (t_r0, t_a0) = (c.recording_timeout, c.certifying_timeout);
        // A LAN-scale latency leaves the defaults alone.
        c.calibrate_timeouts(SimDuration::from_micros(250));
        assert_eq!(c.recording_timeout, t_r0);
        assert_eq!(c.certifying_timeout, t_a0);
        // A WAN latency raises every timer to cover the view round-trip.
        c.calibrate_timeouts(SimDuration::from_millis(37));
        assert!(c.recording_timeout >= SimDuration::from_millis(6 * 37));
        assert!(c.certifying_timeout >= SimDuration::from_millis(6 * 37));
        assert!(c.retransmit_interval >= SimDuration::from_millis(2 * 37));
        assert!(c.client_timeout > c.recording_timeout);
    }

    #[test]
    fn calibrate_timeouts_is_monotone_and_idempotent() {
        let mut a = ClusterConfig::new(16);
        a.calibrate_timeouts(SimDuration::from_millis(20));
        let snap = (a.recording_timeout, a.certifying_timeout, a.client_timeout);
        // Re-calibrating with the same latency changes nothing.
        a.calibrate_timeouts(SimDuration::from_millis(20));
        assert_eq!(
            snap,
            (a.recording_timeout, a.certifying_timeout, a.client_timeout)
        );
        // Calibrating with a smaller latency never lowers the timers.
        a.calibrate_timeouts(SimDuration::from_millis(1));
        assert_eq!(
            snap,
            (a.recording_timeout, a.certifying_timeout, a.client_timeout)
        );
    }

    #[test]
    fn quorum_arithmetic_matches_paper() {
        // n = 4: f = 1, quorum = 3, weak = 2 — the classical minimum.
        let c = ClusterConfig::new(4);
        assert_eq!((c.f(), c.quorum(), c.weak_quorum()), (1, 3, 2));
        // n = 128 (the paper's largest deployment): f = 42.
        let c = ClusterConfig::new(128);
        assert_eq!(c.f(), 42);
        assert_eq!(c.quorum(), 86);
        assert_eq!(c.weak_quorum(), 43);
    }

    #[test]
    fn n_greater_than_3f_always_holds() {
        for n in 4..=200 {
            let c = ClusterConfig::new(n);
            assert!(c.n > 3 * c.f(), "n={n}");
            // Two strong quorums intersect in at least f + 1 replicas:
            // the core of every safety argument (Theorem 3.2).
            assert!(2 * c.quorum() >= c.n + c.weak_quorum(), "n={n}");
        }
    }

    #[test]
    fn primary_rotation_matches_figure_5() {
        // Figure 5: four replicas, four instances. Replica r is primary of
        // instance i in view v iff r = (i + v) mod 4.
        let c = ClusterConfig::new(4);
        assert_eq!(c.primary_of(InstanceId(0), View(0)), ReplicaId(0));
        assert_eq!(c.primary_of(InstanceId(3), View(0)), ReplicaId(3));
        assert_eq!(c.primary_of(InstanceId(0), View(1)), ReplicaId(1));
        assert_eq!(c.primary_of(InstanceId(3), View(1)), ReplicaId(0));
        assert_eq!(c.primary_of(InstanceId(2), View(2)), ReplicaId(0));
    }

    #[test]
    fn every_view_assigns_distinct_primaries_per_instance() {
        let c = ClusterConfig::new(7);
        for v in 0..20 {
            let mut seen = std::collections::HashSet::new();
            for i in c.instances() {
                assert!(seen.insert(c.primary_of(i, View(v))));
            }
        }
    }

    #[test]
    fn digest_assignment_load_balances() {
        let c = ClusterConfig::with_instances(8, 4);
        let mut counts = [0u32; 4];
        for d in 0..4000u64 {
            counts[c.instance_for_digest(d).as_usize()] += 1;
        }
        for count in counts {
            assert_eq!(count, 1000);
        }
    }

    #[test]
    #[should_panic(expected = "instances must satisfy")]
    fn too_many_instances_rejected() {
        let _ = ClusterConfig::with_instances(4, 5);
    }
}
