//! Simulated time.
//!
//! All protocol code is written against a logical clock with nanosecond
//! resolution. Under the discrete-event simulator this clock is the event
//! queue's virtual time; under the tokio transport it is wall-clock time
//! since process start. Keeping time as a plain `u64` of nanoseconds makes
//! the event queue ordering cheap and total.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant on the simulation clock, in nanoseconds since time zero.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimTime(pub u64);

/// A span of simulated time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// Time zero — the start of every simulation run.
    pub const ZERO: SimTime = SimTime(0);

    /// Nanoseconds since time zero.
    #[inline]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since time zero, as a float (for reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The duration elapsed since `earlier`, saturating at zero.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Builds a duration from nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> SimDuration {
        SimDuration(ns)
    }

    /// Builds a duration from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> SimDuration {
        SimDuration(us * 1_000)
    }

    /// Builds a duration from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> SimDuration {
        SimDuration(ms * 1_000_000)
    }

    /// Builds a duration from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> SimDuration {
        SimDuration(s * 1_000_000_000)
    }

    /// Builds a duration from fractional seconds (panics on negative input).
    #[inline]
    pub fn from_secs_f64(s: f64) -> SimDuration {
        assert!(s >= 0.0, "duration must be non-negative, got {s}");
        SimDuration((s * 1e9).round() as u64)
    }

    /// Nanoseconds in this duration.
    #[inline]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Milliseconds in this duration (for reporting only).
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Seconds in this duration, as a float (for reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Scales this duration by an integer factor, saturating.
    #[inline]
    pub fn saturating_mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }

    /// Half of this duration (used by the adaptive-timeout halving rule).
    #[inline]
    pub fn halved(self) -> SimDuration {
        SimDuration(self.0 / 2)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, d: SimDuration) {
        self.0 = self.0.saturating_add(d.0);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, other: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, d: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(d.0))
    }
}

impl AddAssign<SimDuration> for SimDuration {
    #[inline]
    fn add_assign(&mut self, d: SimDuration) {
        self.0 = self.0.saturating_add(d.0);
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_units() {
        assert_eq!(SimDuration::from_micros(3).as_nanos(), 3_000);
        assert_eq!(SimDuration::from_millis(2).as_nanos(), 2_000_000);
        assert_eq!(SimDuration::from_secs(1).as_nanos(), 1_000_000_000);
        assert_eq!(SimDuration::from_secs_f64(0.5).as_nanos(), 500_000_000);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_millis(5);
        assert_eq!(t.as_nanos(), 5_000_000);
        assert_eq!((t - SimTime::ZERO).as_nanos(), 5_000_000);
        assert_eq!(t.since(SimTime(10_000_000)), SimDuration::ZERO);
    }

    #[test]
    fn halving_and_scaling() {
        let d = SimDuration::from_millis(10);
        assert_eq!(d.halved(), SimDuration::from_millis(5));
        assert_eq!(d.saturating_mul(3), SimDuration::from_millis(30));
        assert_eq!(SimDuration(u64::MAX).saturating_mul(2).0, u64::MAX);
    }

    #[test]
    fn saturating_subtraction_never_underflows() {
        let early = SimTime(5);
        let late = SimTime(9);
        assert_eq!((early - late), SimDuration::ZERO);
        assert_eq!((late - early), SimDuration(4));
    }
}
