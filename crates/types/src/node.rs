//! The sans-IO node model.
//!
//! Every protocol in this workspace — SpotLess itself and the four
//! baselines — is implemented as an I/O-free state machine that consumes
//! [`Input`]s and produces effects through a [`Context`]. Neither the
//! discrete-event simulator (`spotless-simnet`) nor the tokio transport
//! (`spotless-transport`) contains any protocol logic; they only shuttle
//! inputs and effects. Benchmarks therefore exercise exactly the code that
//! runs in a real deployment.
//!
//! Conventions:
//!
//! * `broadcast` delivers to **all replicas including the sender** (the
//!   paper's Remark 3.1 presentation). Self-delivery is a local loopback
//!   and is free of network cost in the simulator.
//! * Timers are never cancelled; a protocol must ignore stale
//!   [`TimerId`]s (they carry the instance and view they were armed for,
//!   which makes staleness checks O(1)).
//! * `commit` announces a consensus decision; execution and client
//!   `Inform` replies are the runtime's job (the simulator charges the
//!   sequential-execution and reply-bandwidth model, the tokio transport
//!   executes against the key-value store and answers clients).

use crate::costs::{CryptoCosts, SizeModel};
use crate::ids::{BatchId, ClientId, Digest, InstanceId, NodeId, ReplicaId, View};
use crate::sig::{Signature, VoteStatement};
use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// A batch of client transactions — the unit that primaries propose.
///
/// In simulation the payload is empty and only the size model matters; the
/// tokio transport carries the serialized transactions in `payload`.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClientBatch {
    /// Unique identifier of this batch within a run.
    pub id: BatchId,
    /// The client (or client pool) that produced the batch.
    pub origin: ClientId,
    /// Digest of the batch contents; proposals reference batches by digest
    /// (§6.1: primaries disseminate contents ahead of proposing digests).
    pub digest: Digest,
    /// Number of transactions in the batch.
    pub txns: u32,
    /// Size in bytes of each individual transaction (YCSB record write).
    pub txn_size: u32,
    /// When the client created the batch; latency is measured from here.
    pub created_at: SimTime,
    /// Serialized transactions (empty under simulation).
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub payload: Vec<u8>,
}

impl ClientBatch {
    /// A no-op batch proposed by a starved primary so execution of other
    /// instances' proposals does not stall (§5).
    pub fn noop(created_at: SimTime) -> ClientBatch {
        ClientBatch {
            id: BatchId(u64::MAX),
            origin: ClientId(u64::MAX),
            digest: Digest::ZERO,
            txns: 0,
            txn_size: 0,
            created_at,
            payload: Vec::new(),
        }
    }

    /// True iff this is a no-op filler batch.
    #[inline]
    pub fn is_noop(&self) -> bool {
        self.id == BatchId(u64::MAX)
    }

    /// Bytes this batch occupies inside a proposal.
    #[inline]
    pub fn body_size(&self, sizes: &SizeModel) -> u64 {
        u64::from(self.txns) * (u64::from(self.txn_size) + sizes.per_txn_overhead)
    }
}

/// What a protocol timer was armed for. Kinds are shared across protocols;
/// each protocol interprets only the kinds it arms.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum TimerKind {
    /// SpotLess ST1: waiting for an acceptable proposal (`t_R`).
    Recording,
    /// SpotLess ST3: waiting for `n − f` matching claims (`t_A`).
    Certifying,
    /// Periodic retransmission of unanswered `Sync(Υ)`/`Ask` messages (§3.5).
    Retransmit,
    /// HotStuff-style pacemaker / PBFT view-change timer.
    ViewChange,
    /// Client-side response timeout.
    Client,
    /// Harness-defined timers (load generation, fault injection).
    Custom(u16),
}

/// Identifies one armed timer. Carries enough context (instance + view)
/// for the protocol to recognise stale fires without a cancel facility.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TimerId {
    /// What the timer is for.
    pub kind: TimerKind,
    /// The consensus instance it belongs to (instance 0 for single-instance
    /// protocols and client timers).
    pub instance: InstanceId,
    /// The view the timer was armed in.
    pub view: View,
}

impl TimerId {
    /// Convenience constructor.
    pub fn new(kind: TimerKind, instance: InstanceId, view: View) -> TimerId {
        TimerId {
            kind,
            instance,
            view,
        }
    }
}

/// The strength class of a commit certificate: which quorum rule the
/// signer set satisfied at the replica that announced the commit.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CertPhase {
    /// A strong quorum certified the decision (`n − f` signers): a
    /// SpotLess same-claim `Sync` quorum, a PBFT commit-phase quorum,
    /// or a HotStuff quorum certificate.
    Strong,
    /// Weak-quorum evidence (`f + 1` signers, guaranteeing at least one
    /// honest member): SpotLess prepares driven by `CP`-set
    /// endorsements on a recovering replica.
    Weak,
}

/// The certificate behind a consensus decision: which replicas' signed
/// votes the announcing replica holds for it, and the signatures
/// themselves. This is what makes a commit *verifiable* after the
/// fact — the runtime copies it into the durable block's `CommitProof`,
/// the ledger refuses to append a block whose certificate does not
/// satisfy the quorum rules **or whose signatures do not check out**,
/// and state transfer re-verifies it on every received block.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommitCertificate {
    /// The view the certifying votes were cast in. Usually the
    /// committed proposal's own view; a straggler that commits an
    /// ancestor transitively (three-chain rule) records the certifying
    /// descendant's view instead.
    pub view: View,
    /// Which quorum rule `signers` satisfies.
    pub phase: CertPhase,
    /// The digest the certifying votes were cast *for* — the voted
    /// proposal/block digest. Under the three-chain rule this is the
    /// certifying descendant's digest, not the committed batch's.
    pub voted: Digest,
    /// Log position bound by the votes, for protocols whose voted
    /// digest does not itself bind one (PBFT sequence numbers); zero
    /// elsewhere.
    pub slot: u64,
    /// The replicas whose votes certify the decision. Must be
    /// duplicate-free and within the cluster; size must meet the
    /// phase's quorum (`n − f` strong, `f + 1` weak).
    pub signers: Vec<ReplicaId>,
    /// Each signer's signature over the vote statement
    /// `(instance, view, slot, voted)`, parallel to `signers`.
    /// All-zero placeholders under pure simulation (the default
    /// [`Context`] oracle); real Ed25519 under the runtime.
    pub sigs: Vec<Signature>,
}

impl CommitCertificate {
    /// A strong (`n − f`) certificate.
    pub fn strong(
        view: View,
        voted: Digest,
        signers: Vec<ReplicaId>,
        sigs: Vec<Signature>,
    ) -> CommitCertificate {
        CommitCertificate {
            view,
            phase: CertPhase::Strong,
            voted,
            slot: 0,
            signers,
            sigs,
        }
    }

    /// A weak (`f + 1`) certificate.
    pub fn weak(
        view: View,
        voted: Digest,
        signers: Vec<ReplicaId>,
        sigs: Vec<Signature>,
    ) -> CommitCertificate {
        CommitCertificate {
            view,
            phase: CertPhase::Weak,
            voted,
            slot: 0,
            signers,
            sigs,
        }
    }

    /// The statement every signature in this certificate covers.
    pub fn statement(&self, instance: InstanceId) -> VoteStatement {
        VoteStatement {
            instance,
            view: self.view,
            slot: self.slot,
            digest: self.voted,
        }
    }
}

/// A consensus decision announced by a replica.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommitInfo {
    /// The instance whose chain the decision extends.
    pub instance: InstanceId,
    /// The view in which the committed proposal was made.
    pub view: View,
    /// Chain depth of the committed proposal (genesis = depth 0).
    pub depth: u64,
    /// The batch decided at this position.
    pub batch: ClientBatch,
    /// Who certified the decision (travels into durable storage as the
    /// block's `CommitProof`).
    pub cert: CommitCertificate,
}

/// Inputs driven into a protocol state machine by the runtime.
#[derive(Clone, Debug)]
pub enum Input<M> {
    /// The node has been started; arm initial timers, propose if primary.
    Start,
    /// A message arrived from `from` (authenticity already charged by the
    /// runtime's cost model; forged messages are modelled by Byzantine
    /// senders, not by the transport).
    Deliver {
        /// The sending node.
        from: NodeId,
        /// The message.
        msg: M,
    },
    /// A previously armed timer fired. Stale fires are the receiver's
    /// responsibility to ignore.
    Timer(TimerId),
    /// A client batch arrived at this replica for proposing.
    Request(ClientBatch),
}

/// The effect interface protocols write to.
pub trait Context {
    /// The protocol's wire message type.
    type Message;

    /// Current logical time.
    fn now(&self) -> SimTime;

    /// This node's own identity.
    fn id(&self) -> NodeId;

    /// Sends `msg` to a single node.
    fn send(&mut self, to: NodeId, msg: Self::Message);

    /// Sends `msg` to every replica, **including this one** (Remark 3.1).
    fn broadcast(&mut self, msg: Self::Message);

    /// Arms a timer to fire `after` from now.
    fn set_timer(&mut self, id: TimerId, after: SimDuration);

    /// Announces a consensus decision at this replica.
    fn commit(&mut self, info: CommitInfo);

    /// Signs `statement` with this replica's vote key.
    ///
    /// The default returns the all-zero placeholder: under the
    /// discrete-event simulator there is no key material and signature
    /// CPU is *charged* by the cost model, not computed. The runtime
    /// overrides this with the cluster key store so certificates carry
    /// real Ed25519 signatures.
    fn sign_vote(&mut self, statement: &VoteStatement) -> Signature {
        let _ = statement;
        Signature::ZERO
    }

    /// Verifies `signer`'s vote signature over `statement`.
    ///
    /// The default accepts everything, mirroring [`sign_vote`]'s
    /// placeholder: simulation models forgery through Byzantine sender
    /// behaviour, not through the byte-level signature check. The
    /// runtime overrides this with real verification, so protocol code
    /// must call it before counting a vote toward a certificate.
    ///
    /// [`sign_vote`]: Context::sign_vote
    fn verify_vote(
        &mut self,
        signer: ReplicaId,
        statement: &VoteStatement,
        sig: &Signature,
    ) -> bool {
        let _ = (signer, statement, sig);
        true
    }
}

/// An I/O-free protocol state machine.
pub trait Node {
    /// The protocol's wire message type.
    type Message: ProtocolMessage;

    /// Processes one input, emitting effects through `ctx`.
    fn on_input(
        &mut self,
        input: Input<Self::Message>,
        ctx: &mut dyn Context<Message = Self::Message>,
    );
}

/// Resource-model hooks every wire message must provide so the simulator
/// can charge network and CPU costs faithfully.
pub trait ProtocolMessage: Clone {
    /// Bytes this message occupies on the wire.
    fn wire_size(&self, sizes: &SizeModel) -> u64;

    /// Single-core CPU nanoseconds the **receiver** spends authenticating
    /// this message before the protocol handler may run. This is where the
    /// MAC-vs-signature distinction of §2 shows up: SpotLess `Sync`
    /// messages cost one MAC verification, HotStuff certificates cost
    /// `n − f` signature verifications, and so on.
    fn verify_cost(&self, costs: &CryptoCosts) -> u64;

    /// Single-core CPU nanoseconds the **sender** spends authenticating
    /// this message (signing happens once per message; per-destination MAC
    /// generation is charged by the runtime).
    fn sign_cost(&self, costs: &CryptoCosts) -> u64;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ReplicaId;

    #[test]
    fn noop_batches_are_marked() {
        let b = ClientBatch::noop(SimTime::ZERO);
        assert!(b.is_noop());
        assert_eq!(b.txns, 0);
        assert_eq!(b.body_size(&SizeModel::default()), 0);
    }

    #[test]
    fn batch_body_size_scales_with_txn_size() {
        let sizes = SizeModel::default();
        let b = ClientBatch {
            id: BatchId(1),
            origin: ClientId(0),
            digest: Digest::ZERO,
            txns: 100,
            txn_size: 48,
            created_at: SimTime::ZERO,
            payload: Vec::new(),
        };
        assert_eq!(b.body_size(&sizes), 100 * (48 + sizes.per_txn_overhead));
    }

    #[test]
    fn timer_ids_carry_staleness_context() {
        let t = TimerId::new(TimerKind::Recording, InstanceId(2), View(7));
        assert_eq!(t.instance, InstanceId(2));
        assert_eq!(t.view, View(7));
        let _ = NodeId::Replica(ReplicaId(0));
    }
}
