//! The Byzantine behaviour taxonomy of the evaluation (§6.3).
//!
//! The throughput-Byzantine experiment (Figure 11) subjects the system to
//! four attacks. Faulty behaviour is implemented *inside* the protocol
//! state machines (a replica constructed with a non-honest behaviour
//! deviates in exactly the attack's way) rather than in the transport, so
//! the attacks exercise the real acceptance and recovery code paths.

use serde::{Deserialize, Serialize};

/// How a replica behaves.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum ByzantineBehavior {
    /// Follows the protocol.
    #[default]
    Honest,
    /// **A1** — non-responsive: ignores every input and sends nothing.
    /// (Also used for the plain crash-failure experiments of Figures 7–10.)
    Crash,
    /// **A2** — keeps `f` non-faulty replicas "in the dark" by withholding
    /// its proposals from them when it is a primary.
    DarkPrimary,
    /// **A3** — equivocates: sends one proposal/vote to `f` non-faulty
    /// replicas and a conflicting one to the rest, attempting divergence.
    Equivocate,
    /// **A4** — refuses to participate in consensus on proposals from
    /// non-faulty primaries, trying to make those primaries look faulty.
    AntiPrimary,
}

impl ByzantineBehavior {
    /// True iff the replica deviates from the protocol in any way.
    #[inline]
    pub fn is_faulty(self) -> bool {
        self != ByzantineBehavior::Honest
    }

    /// True iff the replica is silent (sends nothing at all).
    #[inline]
    pub fn is_silent(self) -> bool {
        self == ByzantineBehavior::Crash
    }

    /// The attack label used in the paper's figures, or `"honest"`.
    pub fn label(self) -> &'static str {
        match self {
            ByzantineBehavior::Honest => "honest",
            ByzantineBehavior::Crash => "A1",
            ByzantineBehavior::DarkPrimary => "A2",
            ByzantineBehavior::Equivocate => "A3",
            ByzantineBehavior::AntiPrimary => "A4",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_honest() {
        assert_eq!(ByzantineBehavior::default(), ByzantineBehavior::Honest);
        assert!(!ByzantineBehavior::Honest.is_faulty());
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(ByzantineBehavior::Crash.label(), "A1");
        assert_eq!(ByzantineBehavior::DarkPrimary.label(), "A2");
        assert_eq!(ByzantineBehavior::Equivocate.label(), "A3");
        assert_eq!(ByzantineBehavior::AntiPrimary.label(), "A4");
    }

    #[test]
    fn only_crash_is_silent() {
        assert!(ByzantineBehavior::Crash.is_silent());
        assert!(!ByzantineBehavior::Equivocate.is_silent());
        assert!(ByzantineBehavior::Equivocate.is_faulty());
    }
}
