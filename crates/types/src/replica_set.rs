//! Small utilities: a replica-id bitset for quorum counting.
//!
//! Quorum tracking is the hottest bookkeeping in the protocol (every
//! `Sync` updates several counters), so sender sets are flat bitsets
//! rather than hash sets — two `u64` words cover the paper's largest
//! deployment of 128 replicas.

use crate::ids::ReplicaId;

/// A set of replica ids backed by a bit vector.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ReplicaSet {
    words: Vec<u64>,
    count: u32,
}

impl ReplicaSet {
    /// An empty set sized for `n` replicas.
    pub fn new(n: u32) -> ReplicaSet {
        ReplicaSet {
            words: vec![0; (n as usize).div_ceil(64)],
            count: 0,
        }
    }

    /// Inserts `r`; returns true if it was not already present.
    pub fn insert(&mut self, r: ReplicaId) -> bool {
        let (w, b) = (r.as_usize() / 64, r.as_usize() % 64);
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        let mask = 1u64 << b;
        if self.words[w] & mask != 0 {
            return false;
        }
        self.words[w] |= mask;
        self.count += 1;
        true
    }

    /// True iff `r` is in the set.
    pub fn contains(&self, r: ReplicaId) -> bool {
        let (w, b) = (r.as_usize() / 64, r.as_usize() % 64);
        self.words.get(w).is_some_and(|word| word & (1 << b) != 0)
    }

    /// Number of members.
    pub fn len(&self) -> u32 {
        self.count
    }

    /// True iff no members.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Iterates over members in id order.
    pub fn iter(&self) -> impl Iterator<Item = ReplicaId> + '_ {
        self.words.iter().enumerate().flat_map(|(w, &word)| {
            (0..64)
                .filter(move |b| word & (1u64 << b) != 0)
                .map(move |b| ReplicaId((w * 64 + b) as u32))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_count_contains() {
        let mut s = ReplicaSet::new(128);
        assert!(s.is_empty());
        assert!(s.insert(ReplicaId(0)));
        assert!(s.insert(ReplicaId(127)));
        assert!(!s.insert(ReplicaId(0)), "double insert");
        assert_eq!(s.len(), 2);
        assert!(s.contains(ReplicaId(127)));
        assert!(!s.contains(ReplicaId(5)));
        assert!(!s.contains(ReplicaId(500)));
    }

    #[test]
    fn iter_in_order() {
        let mut s = ReplicaSet::new(70);
        for id in [65u32, 3, 64, 0] {
            s.insert(ReplicaId(id));
        }
        let got: Vec<u32> = s.iter().map(|r| r.0).collect();
        assert_eq!(got, vec![0, 3, 64, 65]);
    }

    #[test]
    fn grows_beyond_initial_capacity() {
        let mut s = ReplicaSet::new(4);
        assert!(s.insert(ReplicaId(200)));
        assert!(s.contains(ReplicaId(200)));
    }
}
