//! Digest helpers bridging the from-scratch SHA-256 to the workspace-wide
//! [`Digest`] carrier type.

use crate::sha256::Sha256;
use spotless_types::Digest;

/// Hashes arbitrary bytes into a [`Digest`].
pub fn digest_bytes(data: &[u8]) -> Digest {
    Digest(Sha256::digest(data))
}

/// Hashes a sequence of labelled fields into a [`Digest`]. Fields are
/// length-prefixed so `("ab", "c")` and `("a", "bc")` cannot collide —
/// the usual domain-separation requirement for signing structured
/// messages (§2's `digest(v)` is over the canonical encoding of `v`).
pub fn digest_fields(fields: &[&[u8]]) -> Digest {
    let mut h = Sha256::new();
    for field in fields {
        h.update(&(field.len() as u64).to_be_bytes());
        h.update(field);
    }
    Digest(h.finalize())
}

/// A chained digest: `H(parent ‖ item)`, used by the ledger to maintain
/// the hash chain over committed blocks.
pub fn digest_chained(parent: &Digest, item: &Digest) -> Digest {
    let mut h = Sha256::new();
    h.update(&parent.0);
    h.update(&item.0);
    Digest(h.finalize())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_bytes_matches_sha256() {
        assert_eq!(digest_bytes(b"abc").0, Sha256::digest(b"abc"));
    }

    #[test]
    fn field_hashing_is_injective_across_boundaries() {
        let a = digest_fields(&[b"ab", b"c"]);
        let b = digest_fields(&[b"a", b"bc"]);
        let c = digest_fields(&[b"abc"]);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    fn chained_digest_depends_on_both_inputs() {
        let p1 = digest_bytes(b"p1");
        let p2 = digest_bytes(b"p2");
        let x = digest_bytes(b"x");
        assert_ne!(digest_chained(&p1, &x), digest_chained(&p2, &x));
        assert_ne!(digest_chained(&p1, &x), digest_chained(&p1, &p1));
    }
}
