//! Merkle trees over batch transactions.
//!
//! ResilientDB-style ledgers prove membership of a single transaction in
//! a committed batch without shipping the batch (§6.1's "strong data
//! provenance"). We build a standard binary Merkle tree over transaction
//! digests with domain-separated leaf/node hashing (guarding against the
//! classic leaf/interior second-preimage confusion).

use crate::sha256::Sha256;
use spotless_types::Digest;

fn leaf_hash(data: &[u8]) -> Digest {
    let mut h = Sha256::new();
    h.update(&[0x00]); // leaf domain
    h.update(data);
    Digest(h.finalize())
}

fn node_hash(left: &Digest, right: &Digest) -> Digest {
    let mut h = Sha256::new();
    h.update(&[0x01]); // interior domain
    h.update(&left.0);
    h.update(&right.0);
    Digest(h.finalize())
}

/// Upper bound on inclusion-proof length, shared by the prover and
/// every wire decoder that parses proofs (`spotless-runtime`'s
/// envelope codec). A binary tree with more than `2^64` leaves cannot
/// exist in this address space, so a longer proof is a malformed frame
/// by definition — decoders reject it before allocating, and
/// [`MerkleTree::prove`] never emits one. Keeping the two sides on one
/// named constant is what stops the bound from silently drifting apart.
pub const MAX_PROOF_DEPTH: usize = 64;

/// One step of a Merkle inclusion proof.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProofStep {
    /// The sibling hash at this level.
    pub sibling: Digest,
    /// True iff the sibling sits to the right of the running hash.
    pub sibling_on_right: bool,
}

/// A Merkle tree over a batch's transactions.
pub struct MerkleTree {
    /// levels[0] = leaves; last level = [root]. Empty input ⇒ one level
    /// holding the zero digest.
    levels: Vec<Vec<Digest>>,
}

impl MerkleTree {
    /// Builds a tree over the given leaf payloads.
    pub fn build<T: AsRef<[u8]>>(items: &[T]) -> MerkleTree {
        if items.is_empty() {
            return MerkleTree {
                levels: vec![vec![Digest::ZERO]],
            };
        }
        let mut levels = vec![items
            .iter()
            .map(|item| leaf_hash(item.as_ref()))
            .collect::<Vec<_>>()];
        while levels.last().expect("non-empty").len() > 1 {
            let prev = levels.last().expect("non-empty");
            let mut next = Vec::with_capacity(prev.len().div_ceil(2));
            for pair in prev.chunks(2) {
                let combined = match pair {
                    [left, right] => node_hash(left, right),
                    // Odd node promotes by pairing with itself.
                    [only] => node_hash(only, only),
                    _ => unreachable!("chunks(2)"),
                };
                next.push(combined);
            }
            levels.push(next);
        }
        MerkleTree { levels }
    }

    /// The root digest.
    pub fn root(&self) -> Digest {
        self.levels.last().expect("non-empty")[0]
    }

    /// Number of leaves.
    pub fn len(&self) -> usize {
        self.levels[0].len()
    }

    /// True iff the tree was built over no items.
    pub fn is_empty(&self) -> bool {
        self.levels.len() == 1 && self.levels[0][0] == Digest::ZERO
    }

    /// Inclusion proof for leaf `index`. Never longer than
    /// [`MAX_PROOF_DEPTH`] steps (the tree height is `⌈log₂ leaves⌉`,
    /// and `leaves` is bounded by the address space) — the same bound
    /// wire decoders enforce when parsing proofs.
    pub fn prove(&self, index: usize) -> Option<Vec<ProofStep>> {
        if index >= self.levels[0].len() || self.is_empty() {
            return None;
        }
        debug_assert!(
            self.levels.len() - 1 <= MAX_PROOF_DEPTH,
            "tree deeper than MAX_PROOF_DEPTH cannot exist"
        );
        let mut proof = Vec::with_capacity(self.levels.len());
        let mut at = index;
        for level in &self.levels[..self.levels.len() - 1] {
            let sibling_index = at ^ 1;
            let sibling = *level.get(sibling_index).unwrap_or(&level[at]);
            proof.push(ProofStep {
                sibling,
                sibling_on_right: sibling_index > at,
            });
            at /= 2;
        }
        Some(proof)
    }
}

/// The leaf index a proof's direction bits encode: step `k`'s sibling
/// sits to the right exactly when bit `k` of the index is 0. Verifiers
/// that must pin an item to a *specific* position (e.g. a state-chunk
/// bucket, whose contents are only meaningful at their own index)
/// compare this against the claimed index in addition to running
/// [`verify_inclusion`] — a valid proof for the wrong slot is rejected.
pub fn proof_index(proof: &[ProofStep]) -> usize {
    let mut index = 0usize;
    for (level, step) in proof.iter().enumerate() {
        if !step.sibling_on_right {
            index |= 1 << level;
        }
    }
    index
}

/// The domain-separated leaf digest of an item — the value a proof
/// folds up from. Exposed so multi-level verifiers (a shard tree whose
/// roots are themselves leaves of a top tree) can compose proofs with
/// [`fold_proof`]; plain single-tree checks should keep calling
/// [`verify_inclusion`].
pub fn leaf_digest(item: &[u8]) -> Digest {
    leaf_hash(item)
}

/// Folds a digest up through a proof's steps, returning the root the
/// proof implies. `start` must already be a leaf digest
/// ([`leaf_digest`]) or an interior node — folding raw item bytes here
/// would reintroduce the leaf/interior confusion the domains exist to
/// prevent.
pub fn fold_proof(start: Digest, proof: &[ProofStep]) -> Digest {
    let mut acc = start;
    for step in proof {
        acc = if step.sibling_on_right {
            node_hash(&acc, &step.sibling)
        } else {
            node_hash(&step.sibling, &acc)
        };
    }
    acc
}

/// Verifies an inclusion proof: does `item` at some position hash up to
/// `root` through `proof`?
pub fn verify_inclusion(item: &[u8], proof: &[ProofStep], root: &Digest) -> bool {
    fold_proof(leaf_hash(item), proof) == *root
}

#[cfg(test)]
mod tests {
    use super::*;

    fn items(n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|i| format!("txn-{i}").into_bytes()).collect()
    }

    #[test]
    fn single_leaf_root_is_leaf_hash() {
        let tree = MerkleTree::build(&items(1));
        assert_eq!(tree.root(), leaf_hash(b"txn-0"));
        assert_eq!(tree.len(), 1);
    }

    #[test]
    fn proofs_verify_for_every_leaf_and_size() {
        for n in [1usize, 2, 3, 4, 5, 7, 8, 100] {
            let data = items(n);
            let tree = MerkleTree::build(&data);
            for (i, item) in data.iter().enumerate() {
                let proof = tree.prove(i).expect("in range");
                assert!(verify_inclusion(item, &proof, &tree.root()), "n={n} i={i}");
            }
        }
    }

    #[test]
    fn wrong_item_or_position_fails() {
        let data = items(8);
        let tree = MerkleTree::build(&data);
        let proof = tree.prove(3).unwrap();
        assert!(!verify_inclusion(b"txn-4", &proof, &tree.root()));
        let other = tree.prove(4).unwrap();
        assert!(!verify_inclusion(b"txn-3", &other, &tree.root()));
    }

    #[test]
    fn tampered_root_fails() {
        let data = items(4);
        let tree = MerkleTree::build(&data);
        let proof = tree.prove(0).unwrap();
        let mut bad_root = tree.root();
        bad_root.0[0] ^= 1;
        assert!(!verify_inclusion(b"txn-0", &proof, &bad_root));
    }

    #[test]
    fn out_of_range_proof_is_none() {
        let tree = MerkleTree::build(&items(4));
        assert!(tree.prove(4).is_none());
    }

    #[test]
    fn proof_index_recovers_the_leaf_position() {
        for n in [1usize, 2, 3, 5, 8, 100] {
            let tree = MerkleTree::build(&items(n));
            for i in 0..n {
                let proof = tree.prove(i).expect("in range");
                assert_eq!(proof_index(&proof), i, "n={n} i={i}");
            }
        }
    }

    #[test]
    fn leaf_and_interior_domains_differ() {
        // H(leaf x) must differ from H(node(x, x))'s preimage structure:
        // build two trees where confusion would collide.
        let a = MerkleTree::build(&[b"x".to_vec()]);
        let b = MerkleTree::build(&[b"x".to_vec(), b"x".to_vec()]);
        assert_ne!(a.root(), b.root());
    }

    #[test]
    fn empty_tree_has_zero_root_and_no_proofs() {
        let tree = MerkleTree::build::<Vec<u8>>(&[]);
        assert!(tree.is_empty());
        assert_eq!(tree.root(), Digest::ZERO);
        assert!(tree.prove(0).is_none());
    }

    #[test]
    fn two_level_proofs_compose_via_fold() {
        // A bottom tree per group, a top tree over the group roots:
        // folding a leaf through its bottom proof must yield exactly
        // the digest whose top-tree inclusion proof verifies — and a
        // naive verify_inclusion of the composed chain must NOT (the
        // top tree re-applies the leaf domain to the sub-root bytes).
        let groups: Vec<Vec<Vec<u8>>> = (0..4)
            .map(|g| {
                (0..5)
                    .map(|i| format!("g{g}-item{i}").into_bytes())
                    .collect()
            })
            .collect();
        let bottoms: Vec<MerkleTree> = groups.iter().map(|g| MerkleTree::build(g)).collect();
        let top_leaves: Vec<Vec<u8>> = bottoms.iter().map(|t| t.root().0.to_vec()).collect();
        let top = MerkleTree::build(&top_leaves);
        for (g, group) in groups.iter().enumerate() {
            let top_proof = top.prove(g).expect("group in range");
            assert_eq!(proof_index(&top_proof), g);
            for (i, item) in group.iter().enumerate() {
                let bottom_proof = bottoms[g].prove(i).expect("item in range");
                let sub_root = fold_proof(leaf_digest(item), &bottom_proof);
                assert_eq!(sub_root, bottoms[g].root());
                assert!(verify_inclusion(&sub_root.0, &top_proof, &top.root()));
                // Concatenated steps through one verify_inclusion call
                // must fail: levels are domain-separated on purpose.
                let mut joined = bottom_proof.clone();
                joined.extend_from_slice(&top_proof);
                assert!(!verify_inclusion(item, &joined, &top.root()));
            }
        }
    }

    #[test]
    fn distinct_batches_distinct_roots() {
        let a = MerkleTree::build(&items(5));
        let mut data = items(5);
        data[2] = b"txn-TAMPERED".to_vec();
        let b = MerkleTree::build(&data);
        assert_ne!(a.root(), b.root());
    }
}
