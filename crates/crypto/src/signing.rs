//! Digital signatures and the cluster key store.
//!
//! Signed messages (`⟨v⟩_p` in the paper's notation) are required whenever
//! a message may be forwarded — proposals, `Sync` claims used in
//! certificates, and client requests (§2). Key generation is
//! deterministic from seeds so test clusters are reproducible.
//!
//! # Real Ed25519
//!
//! Signatures are RFC 8032 Ed25519, implemented from scratch in the
//! workspace's `compat/ed25519` crate (the build environment has no
//! crates.io access, so `ed25519-dalek` is out — the same situation that
//! produced `compat/sha2`). This replaced an earlier keyed-hash
//! stand-in that anyone holding a public key could forge under; with
//! real asymmetric signatures, a quorum certificate is now evidence
//! that the named replicas actually voted, which is what lets
//! `spotless-ledger` re-verify `CommitProof` signatures at append time
//! and state transfer reject forged chain extensions.
//!
//! The API is shaped by what real signatures need and the stand-in
//! couldn't express:
//!
//! * verification returns a typed [`VerifyError`] instead of `bool`
//!   (callers migrating from the old API: `verify(...)` →
//!   `verify(...).is_ok()` is the mechanical translation, but prefer
//!   propagating the error — it says *why* a certificate was rejected);
//! * [`PublicKey::from_bytes`] is fallible: point decompression rejects
//!   non-canonical encodings, and small-order (torsion) points are
//!   refused outright since signatures by them say nothing about who
//!   signed;
//! * [`Keypair`] holds an actual secret scalar — only the seed holder
//!   can sign;
//! * [`BatchVerifier`] and [`KeyStore::verify_quorum`] expose Ed25519
//!   batch verification (one shared doubling chain across the whole
//!   batch), which is what keeps quorum re-checking off the consensus
//!   hot path's critical per-signature cost.
//!
//! One caveat survives from the stand-in era: the underlying arithmetic
//! is variable-time. Verification only ever touches public data, but a
//! production deployment signing high-value keys adjacent to untrusted
//! timers would want a constant-time signer.

use crate::sha256::Sha256;
use spotless_types::{ReplicaId, Signature, VoteStatement};

pub use spotless_types::SIGNATURE_LEN;

/// Why a key or signature was rejected. Ordered roughly by how early in
/// the pipeline the rejection happens: key parsing, signature parsing,
/// then the verification equation itself.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VerifyError {
    /// 32 bytes that are not the canonical encoding of a curve point
    /// (a non-canonical y ≥ p, an x that is not on the curve, or a
    /// "−0" sign bit).
    MalformedKey,
    /// A public key whose point has small order (divides the cofactor
    /// 8): any signature verifies ambiguously under such a key.
    WeakKey,
    /// The signature's R half is not a canonical curve point encoding.
    MalformedSignature,
    /// The signature's S half is ≥ the group order L (RFC 8032 forbids
    /// this; accepting it would make signatures malleable).
    NonCanonicalScalar,
    /// The verification equation does not hold: the signature was not
    /// produced by this key over this message.
    BadSignature,
    /// The claimed signer is outside the cluster's key set.
    UnknownSigner(ReplicaId),
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerifyError::MalformedKey => write!(f, "malformed public key encoding"),
            VerifyError::WeakKey => write!(f, "small-order public key"),
            VerifyError::MalformedSignature => write!(f, "malformed signature R point"),
            VerifyError::NonCanonicalScalar => write!(f, "signature scalar S out of range"),
            VerifyError::BadSignature => write!(f, "signature does not verify"),
            VerifyError::UnknownSigner(r) => write!(f, "unknown signer {r}"),
        }
    }
}

impl std::error::Error for VerifyError {}

/// Maps a low-level Ed25519 error in *signature* position (never key
/// position — key errors are handled at [`PublicKey::from_bytes`]).
fn sig_error(e: ed25519::Error) -> VerifyError {
    match e {
        ed25519::Error::MalformedPoint => VerifyError::MalformedSignature,
        ed25519::Error::NonCanonicalScalar => VerifyError::NonCanonicalScalar,
        // A small-order R is legal per RFC 8032; the ed25519 crate only
        // reports SmallOrderKey for keys, which we validated earlier.
        ed25519::Error::SmallOrderKey | ed25519::Error::BadSignature => VerifyError::BadSignature,
    }
}

/// A verifying (public) key: a validated point on edwards25519.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PublicKey(ed25519::VerifyingKey);

impl PublicKey {
    /// Verifies `sig` over `message`.
    pub fn verify(&self, message: &[u8], sig: &Signature) -> Result<(), VerifyError> {
        self.0.verify(message, &sig.0).map_err(sig_error)
    }

    /// The compressed 32-byte key encoding.
    pub fn to_bytes(&self) -> [u8; 32] {
        self.0.to_bytes()
    }

    /// Parses and validates 32 bytes of key material. Fails with
    /// [`VerifyError::MalformedKey`] on anything that is not a
    /// canonical point encoding and [`VerifyError::WeakKey`] on
    /// small-order points.
    pub fn from_bytes(bytes: &[u8; 32]) -> Result<PublicKey, VerifyError> {
        match ed25519::VerifyingKey::from_bytes(bytes) {
            Ok(vk) => Ok(PublicKey(vk)),
            Err(ed25519::Error::SmallOrderKey) => Err(VerifyError::WeakKey),
            Err(_) => Err(VerifyError::MalformedKey),
        }
    }
}

/// A signing keypair holding a real secret scalar; only the seed holder
/// can produce signatures.
#[derive(Clone)]
pub struct Keypair {
    signing: ed25519::SigningKey,
    public: PublicKey,
}

impl Keypair {
    /// Builds a keypair deterministically from a 32-byte seed
    /// (RFC 8032 seed expansion).
    pub fn from_seed(seed: [u8; 32]) -> Keypair {
        let signing = ed25519::SigningKey::from_seed(&seed);
        let public = PublicKey(*signing.verifying_key());
        Keypair { signing, public }
    }

    /// Derives the keypair for participant `label`/`index` from a cluster
    /// master secret (test and simulation deployments).
    pub fn derive(master: &[u8], label: &str, index: u64) -> Keypair {
        // Length-prefix each component so distinct (master, label)
        // splits can never concatenate to the same byte string.
        let mut material = Vec::with_capacity(master.len() + label.len() + 24);
        material.extend_from_slice(&(master.len() as u64).to_be_bytes());
        material.extend_from_slice(master);
        material.extend_from_slice(&(label.len() as u64).to_be_bytes());
        material.extend_from_slice(label.as_bytes());
        material.extend_from_slice(&index.to_be_bytes());
        Keypair::from_seed(Sha256::digest(&material))
    }

    /// The matching public key.
    pub fn public(&self) -> PublicKey {
        self.public
    }

    /// Signs `message`.
    pub fn sign(&self, message: &[u8]) -> Signature {
        Signature(self.signing.sign(message))
    }

    /// Signs a batch of messages, byte-identical to per-message
    /// [`sign`](Keypair::sign) but amortized through the shared
    /// fixed-base basepoint table — the sealer lanes drain their
    /// queues through this.
    pub fn sign_batch(&self, messages: &[&[u8]]) -> Vec<Signature> {
        self.signing
            .sign_batch(messages)
            .into_iter()
            .map(Signature)
            .collect()
    }
}

/// Accumulates `(key, message, signature)` triples and verifies them all
/// at once by random linear combination: one shared doubling chain
/// across the batch instead of one per signature, which is what makes
/// quorum re-checking cheap.
///
/// The accept set is identical to verifying each triple serially (both
/// paths use cofactored verification), so batching is purely a
/// performance choice. On failure the batch cannot attribute blame —
/// callers that need to know *which* signature was bad re-verify
/// serially (see [`KeyStore::filter_valid`]).
#[derive(Default)]
pub struct BatchVerifier {
    items: Vec<(PublicKey, Vec<u8>, Signature)>,
}

impl BatchVerifier {
    /// An empty batch.
    pub fn new() -> BatchVerifier {
        BatchVerifier::default()
    }

    /// Adds one triple to the batch.
    pub fn push(&mut self, key: &PublicKey, message: &[u8], sig: &Signature) {
        self.items.push((*key, message.to_vec(), *sig));
    }

    /// Number of queued triples.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True iff nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Verifies the whole batch. `Ok` iff every triple verifies; an
    /// empty batch is `Ok`.
    pub fn verify(self) -> Result<(), VerifyError> {
        let items: Vec<(&ed25519::VerifyingKey, &[u8], &[u8; 64])> = self
            .items
            .iter()
            .map(|(key, message, sig)| (&key.0, message.as_slice(), &sig.0))
            .collect();
        ed25519::verify_batch(&items).map_err(sig_error)
    }
}

/// Per-replica view of the cluster's key material: everyone's public keys
/// plus this replica's own signing key.
#[derive(Clone)]
pub struct KeyStore {
    me: ReplicaId,
    keypair: Keypair,
    publics: Vec<PublicKey>,
}

impl KeyStore {
    /// Builds key stores for a full cluster of `n` replicas from a master
    /// secret. Returns one store per replica.
    pub fn cluster(master: &[u8], n: u32) -> Vec<KeyStore> {
        let keypairs: Vec<Keypair> = (0..n)
            .map(|i| Keypair::derive(master, "replica", u64::from(i)))
            .collect();
        let publics: Vec<PublicKey> = keypairs.iter().map(Keypair::public).collect();
        keypairs
            .into_iter()
            .enumerate()
            .map(|(i, keypair)| KeyStore {
                me: ReplicaId(i as u32),
                keypair,
                publics: publics.clone(),
            })
            .collect()
    }

    /// This replica's identity.
    pub fn me(&self) -> ReplicaId {
        self.me
    }

    /// Number of replicas whose keys this store holds.
    pub fn n(&self) -> usize {
        self.publics.len()
    }

    /// Signs with this replica's key.
    pub fn sign(&self, message: &[u8]) -> Signature {
        self.keypair.sign(message)
    }

    /// Signs a vote statement with this replica's key.
    pub fn sign_vote(&self, statement: &VoteStatement) -> Signature {
        self.sign(&statement.signing_bytes())
    }

    /// Signs a batch of messages with this replica's key (see
    /// [`Keypair::sign_batch`]).
    pub fn sign_batch(&self, messages: &[&[u8]]) -> Vec<Signature> {
        self.keypair.sign_batch(messages)
    }

    /// Verifies a signature attributed to `signer`.
    pub fn verify(
        &self,
        signer: ReplicaId,
        message: &[u8],
        sig: &Signature,
    ) -> Result<(), VerifyError> {
        self.publics
            .get(signer.as_usize())
            .ok_or(VerifyError::UnknownSigner(signer))?
            .verify(message, sig)
    }

    /// Verifies a vote signature attributed to `signer`.
    pub fn verify_vote(
        &self,
        signer: ReplicaId,
        statement: &VoteStatement,
        sig: &Signature,
    ) -> Result<(), VerifyError> {
        self.verify(signer, &statement.signing_bytes(), sig)
    }

    /// Batch-verifies a quorum's signatures over one shared `message`
    /// (the vote statement everyone signed). `Ok` iff *every* vote
    /// checks out — this is the entry point `ledger::verify_proof` uses
    /// to re-verify `CommitProof` signatures at append time.
    pub fn verify_quorum(
        &self,
        message: &[u8],
        votes: &[(ReplicaId, Signature)],
    ) -> Result<(), VerifyError> {
        let mut batch = BatchVerifier::new();
        for (signer, sig) in votes {
            let key = self
                .publics
                .get(signer.as_usize())
                .ok_or(VerifyError::UnknownSigner(*signer))?;
            batch.push(key, message, sig);
        }
        batch.verify()
    }

    /// Which of `votes` verify over `message`: the sanitizing
    /// counterpart to [`verify_quorum`] for live certificates, where a
    /// Byzantine replica may have attached garbage alongside honest
    /// votes and all-or-nothing rejection would poison honest commits.
    /// Batches first (one pass when everything is honest — the common
    /// case) and only attributes blame serially on failure.
    ///
    /// [`verify_quorum`]: KeyStore::verify_quorum
    pub fn filter_valid(&self, message: &[u8], votes: &[(ReplicaId, Signature)]) -> Vec<bool> {
        if self.verify_quorum(message, votes).is_ok() {
            return vec![true; votes.len()];
        }
        votes
            .iter()
            .map(|(signer, sig)| self.verify(*signer, message, sig).is_ok())
            .collect()
    }

    /// Public key of `replica`.
    pub fn public_of(&self, replica: ReplicaId) -> Option<&PublicKey> {
        self.publics.get(replica.as_usize())
    }

    /// Batch-verifies independent `(signer, message, sig)` triples
    /// without copying any message bytes — the borrowing counterpart to
    /// [`BatchVerifier`], for ingress paths where the messages already
    /// live in received buffers and a per-triple copy would defeat the
    /// point of batching. `Ok` iff every triple verifies (empty is
    /// `Ok`); an unknown signer fails the whole batch with
    /// [`VerifyError::UnknownSigner`]. Like [`BatchVerifier::verify`],
    /// failure does not attribute blame — re-verify serially via
    /// [`KeyStore::verify`] to find the culprits.
    pub fn verify_batch_refs(
        &self,
        items: &[(ReplicaId, &[u8], &Signature)],
    ) -> Result<(), VerifyError> {
        let mut refs: Vec<(&ed25519::VerifyingKey, &[u8], &[u8; 64])> =
            Vec::with_capacity(items.len());
        for (signer, message, sig) in items {
            let key = self
                .publics
                .get(signer.as_usize())
                .ok_or(VerifyError::UnknownSigner(*signer))?;
            refs.push((&key.0, message, &sig.0));
        }
        ed25519::verify_batch(&refs).map_err(sig_error)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sign_verify_roundtrip() {
        let kp = Keypair::from_seed([42u8; 32]);
        let sig = kp.sign(b"propose v7");
        assert!(kp.public().verify(b"propose v7", &sig).is_ok());
        assert_eq!(
            kp.public().verify(b"propose v8", &sig),
            Err(VerifyError::BadSignature)
        );
    }

    #[test]
    fn derivation_is_deterministic_and_distinct() {
        let a1 = Keypair::derive(b"master", "replica", 0);
        let a2 = Keypair::derive(b"master", "replica", 0);
        let b = Keypair::derive(b"master", "replica", 1);
        assert_eq!(a1.public().to_bytes(), a2.public().to_bytes());
        assert_ne!(a1.public().to_bytes(), b.public().to_bytes());
    }

    #[test]
    fn public_key_byte_roundtrip() {
        let kp = Keypair::from_seed([9u8; 32]);
        let bytes = kp.public().to_bytes();
        let back = PublicKey::from_bytes(&bytes).unwrap();
        let sig = kp.sign(b"x");
        assert!(back.verify(b"x", &sig).is_ok());
    }

    #[test]
    fn from_bytes_rejects_non_canonical_encodings() {
        // y = p: a non-canonical encoding of y = 0.
        let mut non_canonical = [0xffu8; 32];
        non_canonical[0] = 0xed;
        non_canonical[31] = 0x7f;
        assert_eq!(
            PublicKey::from_bytes(&non_canonical),
            Err(VerifyError::MalformedKey)
        );
        // An x that is not on the curve.
        let mut off_curve = [0u8; 32];
        off_curve[0] = 2;
        assert_eq!(
            PublicKey::from_bytes(&off_curve),
            Err(VerifyError::MalformedKey)
        );
    }

    #[test]
    fn from_bytes_rejects_small_order_points() {
        // The identity (0, 1).
        let mut ident = [0u8; 32];
        ident[0] = 1;
        assert_eq!(PublicKey::from_bytes(&ident), Err(VerifyError::WeakKey));
        // The order-2 point (0, −1).
        let mut order2 = [0xffu8; 32];
        order2[0] = 0xec;
        order2[31] = 0x7f;
        assert_eq!(PublicKey::from_bytes(&order2), Err(VerifyError::WeakKey));
    }

    #[test]
    fn cluster_stores_cross_verify() {
        let stores = KeyStore::cluster(b"secret", 4);
        assert_eq!(stores.len(), 4);
        let sig = stores[2].sign(b"sync v3");
        for store in &stores {
            assert!(store.verify(ReplicaId(2), b"sync v3", &sig).is_ok());
            assert_eq!(
                store.verify(ReplicaId(1), b"sync v3", &sig),
                Err(VerifyError::BadSignature)
            );
            assert_eq!(
                store.verify(ReplicaId(9), b"sync v3", &sig),
                Err(VerifyError::UnknownSigner(ReplicaId(9)))
            );
        }
    }

    #[test]
    fn tampered_signature_rejected() {
        let kp = Keypair::from_seed([1u8; 32]);
        let mut sig = kp.sign(b"msg");
        sig.0[10] ^= 0xff;
        assert!(kp.public().verify(b"msg", &sig).is_err());
    }

    #[test]
    fn batch_verifier_accepts_valid_and_rejects_one_bad() {
        let stores = KeyStore::cluster(b"batch", 7);
        let mut batch = BatchVerifier::new();
        for (i, store) in stores.iter().enumerate() {
            let msg = format!("vote {i}");
            let sig = store.sign(msg.as_bytes());
            batch.push(store.public_of(store.me()).unwrap(), msg.as_bytes(), &sig);
        }
        assert_eq!(batch.len(), 7);
        batch.verify().unwrap();

        let mut batch = BatchVerifier::new();
        for (i, store) in stores.iter().enumerate() {
            let msg = format!("vote {i}");
            let mut sig = store.sign(msg.as_bytes());
            if i == 3 {
                sig.0[40] ^= 1;
            }
            batch.push(store.public_of(store.me()).unwrap(), msg.as_bytes(), &sig);
        }
        assert_eq!(batch.verify(), Err(VerifyError::BadSignature));
    }

    #[test]
    fn batch_signing_is_byte_identical_to_serial_signing() {
        let stores = KeyStore::cluster(b"batch-sign", 2);
        let msgs: Vec<Vec<u8>> = (0..9u8).map(|i| vec![i; 5 + i as usize]).collect();
        let refs: Vec<&[u8]> = msgs.iter().map(|m| m.as_slice()).collect();
        let batched = stores[0].sign_batch(&refs);
        assert_eq!(batched.len(), msgs.len());
        for (m, sig) in msgs.iter().zip(&batched) {
            assert_eq!(*sig, stores[0].sign(m));
            stores[1].verify(stores[0].me(), m, sig).unwrap();
        }
    }

    #[test]
    fn verify_quorum_checks_every_vote() {
        let stores = KeyStore::cluster(b"quorum", 4);
        let statement = b"commit view 9 digest abc";
        let mut votes: Vec<(ReplicaId, Signature)> =
            stores.iter().map(|s| (s.me(), s.sign(statement))).collect();
        stores[0].verify_quorum(statement, &votes).unwrap();
        // Swap one vote for a forgery: the whole quorum check fails.
        votes[2].1 = Signature([7u8; SIGNATURE_LEN]);
        assert!(stores[0].verify_quorum(statement, &votes).is_err());
        // filter_valid attributes the blame.
        let mask = stores[0].filter_valid(statement, &votes);
        assert_eq!(mask, vec![true, true, false, true]);
    }

    #[test]
    fn vote_statement_signing_round_trips() {
        use spotless_types::{Digest, InstanceId, View};
        let stores = KeyStore::cluster(b"votes", 4);
        let st = VoteStatement::new(InstanceId(1), View(4), Digest::from_u64(77));
        let sig = stores[1].sign_vote(&st);
        stores[0].verify_vote(ReplicaId(1), &st, &sig).unwrap();
        let other = VoteStatement::new(InstanceId(1), View(5), Digest::from_u64(77));
        assert_eq!(
            stores[0].verify_vote(ReplicaId(1), &other, &sig),
            Err(VerifyError::BadSignature)
        );
    }
}
