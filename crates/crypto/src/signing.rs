//! Digital signatures (Ed25519) and the cluster key store.
//!
//! Signed messages (`⟨v⟩_p` in the paper's notation) are required whenever
//! a message may be forwarded — proposals, `Sync` claims used in
//! certificates, and client requests (§2). We wrap `ed25519-dalek` rather
//! than reimplementing the curve; see DESIGN.md §2/§7 for the
//! justification. Key generation is deterministic from seeds so test
//! clusters are reproducible.

use crate::sha256::Sha256;
use ed25519_dalek::{Signer as _, SigningKey, Verifier as _, VerifyingKey};
use spotless_types::ReplicaId;

/// Length of an Ed25519 signature in bytes.
pub const SIGNATURE_LEN: usize = 64;

/// A detached signature.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct Signature(pub [u8; SIGNATURE_LEN]);

impl std::fmt::Debug for Signature {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sig:{:02x}{:02x}…", self.0[0], self.0[1])
    }
}

/// A verifying (public) key.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PublicKey(VerifyingKey);

impl PublicKey {
    /// Verifies `sig` over `message`.
    pub fn verify(&self, message: &[u8], sig: &Signature) -> bool {
        let sig = ed25519_dalek::Signature::from_bytes(&sig.0);
        self.0.verify(message, &sig).is_ok()
    }

    /// The raw 32-byte key material.
    pub fn to_bytes(&self) -> [u8; 32] {
        self.0.to_bytes()
    }

    /// Parses 32 bytes of key material.
    pub fn from_bytes(bytes: &[u8; 32]) -> Option<PublicKey> {
        VerifyingKey::from_bytes(bytes).ok().map(PublicKey)
    }
}

/// A signing keypair.
#[derive(Clone)]
pub struct Keypair {
    key: SigningKey,
}

impl Keypair {
    /// Builds a keypair deterministically from a 32-byte seed.
    pub fn from_seed(seed: [u8; 32]) -> Keypair {
        Keypair {
            key: SigningKey::from_bytes(&seed),
        }
    }

    /// Derives the keypair for participant `label`/`index` from a cluster
    /// master secret (test and simulation deployments).
    pub fn derive(master: &[u8], label: &str, index: u64) -> Keypair {
        let mut material = Vec::with_capacity(master.len() + label.len() + 8);
        material.extend_from_slice(master);
        material.extend_from_slice(label.as_bytes());
        material.extend_from_slice(&index.to_be_bytes());
        Keypair::from_seed(Sha256::digest(&material))
    }

    /// The matching public key.
    pub fn public(&self) -> PublicKey {
        PublicKey(self.key.verifying_key())
    }

    /// Signs `message`.
    pub fn sign(&self, message: &[u8]) -> Signature {
        Signature(self.key.sign(message).to_bytes())
    }
}

/// Per-replica view of the cluster's key material: everyone's public keys
/// plus this replica's own signing key.
#[derive(Clone)]
pub struct KeyStore {
    me: ReplicaId,
    keypair: Keypair,
    publics: Vec<PublicKey>,
}

impl KeyStore {
    /// Builds key stores for a full cluster of `n` replicas from a master
    /// secret. Returns one store per replica.
    pub fn cluster(master: &[u8], n: u32) -> Vec<KeyStore> {
        let keypairs: Vec<Keypair> = (0..n)
            .map(|i| Keypair::derive(master, "replica", u64::from(i)))
            .collect();
        let publics: Vec<PublicKey> = keypairs.iter().map(Keypair::public).collect();
        keypairs
            .into_iter()
            .enumerate()
            .map(|(i, keypair)| KeyStore {
                me: ReplicaId(i as u32),
                keypair,
                publics: publics.clone(),
            })
            .collect()
    }

    /// This replica's identity.
    pub fn me(&self) -> ReplicaId {
        self.me
    }

    /// Signs with this replica's key.
    pub fn sign(&self, message: &[u8]) -> Signature {
        self.keypair.sign(message)
    }

    /// Verifies a signature attributed to `signer`.
    pub fn verify(&self, signer: ReplicaId, message: &[u8], sig: &Signature) -> bool {
        self.publics
            .get(signer.as_usize())
            .is_some_and(|pk| pk.verify(message, sig))
    }

    /// Public key of `replica`.
    pub fn public_of(&self, replica: ReplicaId) -> Option<&PublicKey> {
        self.publics.get(replica.as_usize())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sign_verify_roundtrip() {
        let kp = Keypair::from_seed([42u8; 32]);
        let sig = kp.sign(b"propose v7");
        assert!(kp.public().verify(b"propose v7", &sig));
        assert!(!kp.public().verify(b"propose v8", &sig));
    }

    #[test]
    fn derivation_is_deterministic_and_distinct() {
        let a1 = Keypair::derive(b"master", "replica", 0);
        let a2 = Keypair::derive(b"master", "replica", 0);
        let b = Keypair::derive(b"master", "replica", 1);
        assert_eq!(a1.public().to_bytes(), a2.public().to_bytes());
        assert_ne!(a1.public().to_bytes(), b.public().to_bytes());
    }

    #[test]
    fn public_key_byte_roundtrip() {
        let kp = Keypair::from_seed([9u8; 32]);
        let bytes = kp.public().to_bytes();
        let back = PublicKey::from_bytes(&bytes).unwrap();
        let sig = kp.sign(b"x");
        assert!(back.verify(b"x", &sig));
    }

    #[test]
    fn cluster_stores_cross_verify() {
        let stores = KeyStore::cluster(b"secret", 4);
        assert_eq!(stores.len(), 4);
        let sig = stores[2].sign(b"sync v3");
        for store in &stores {
            assert!(store.verify(ReplicaId(2), b"sync v3", &sig));
            assert!(!store.verify(ReplicaId(1), b"sync v3", &sig));
            assert!(!store.verify(ReplicaId(9), b"sync v3", &sig));
        }
    }

    #[test]
    fn tampered_signature_rejected() {
        let kp = Keypair::from_seed([1u8; 32]);
        let mut sig = kp.sign(b"msg");
        sig.0[10] ^= 0xff;
        assert!(!kp.public().verify(b"msg", &sig));
    }
}
