//! Digital signatures and the cluster key store.
//!
//! Signed messages (`⟨v⟩_p` in the paper's notation) are required whenever
//! a message may be forwarded — proposals, `Sync` claims used in
//! certificates, and client requests (§2). Key generation is
//! deterministic from seeds so test clusters are reproducible.
//!
//! # Simulation-grade scheme
//!
//! The build environment has no crates.io access, so instead of wrapping
//! `ed25519-dalek` this module implements a **keyed-hash signature
//! stand-in** over the crate's own SHA-256: a "public key" is a hash
//! commitment to the seed, and a signature is a 64-byte keyed hash of
//! the message under that commitment. The API (32-byte public keys,
//! 64-byte signatures, deterministic seed derivation) and all functional
//! properties the tests and protocol rely on — roundtrip, tamper
//! rejection, per-signer domain separation — match Ed25519, and the
//! simulator's cost model still charges Ed25519 timings. What it does
//! **not** provide is real asymmetry: anyone holding a public key could
//! forge signatures under it, so this is NOT secure against a true
//! Byzantine network adversary. Swapping `ed25519-dalek` back in
//! restores that without touching any caller.

use crate::sha256::Sha256;
use spotless_types::ReplicaId;

/// Length of a signature in bytes (matches Ed25519).
pub const SIGNATURE_LEN: usize = 64;

/// A detached signature.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct Signature(pub [u8; SIGNATURE_LEN]);

impl std::fmt::Debug for Signature {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sig:{:02x}{:02x}…", self.0[0], self.0[1])
    }
}

/// Domain-separation prefix for deriving a public key from a seed.
const PK_DOMAIN: &[u8] = b"spotless-sim-sig-pk-v1";
/// Domain-separation prefixes for the two signature halves.
const SIG_DOMAIN_LO: &[u8] = b"spotless-sim-sig-lo-v1";
const SIG_DOMAIN_HI: &[u8] = b"spotless-sim-sig-hi-v1";

/// Computes one 32-byte signature half.
fn sig_half(domain: &[u8], pk: &[u8; 32], message: &[u8]) -> [u8; 32] {
    let mut hasher = Sha256::new();
    hasher.update(domain);
    hasher.update(pk);
    hasher.update(message);
    hasher.finalize()
}

/// Computes the full 64-byte signature bound to `pk`.
fn sign_with(pk: &[u8; 32], message: &[u8]) -> Signature {
    let mut sig = [0u8; SIGNATURE_LEN];
    sig[..32].copy_from_slice(&sig_half(SIG_DOMAIN_LO, pk, message));
    sig[32..].copy_from_slice(&sig_half(SIG_DOMAIN_HI, pk, message));
    Signature(sig)
}

/// A verifying (public) key.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PublicKey([u8; 32]);

impl PublicKey {
    /// Verifies `sig` over `message`.
    pub fn verify(&self, message: &[u8], sig: &Signature) -> bool {
        sign_with(&self.0, message) == *sig
    }

    /// The raw 32-byte key material.
    pub fn to_bytes(&self) -> [u8; 32] {
        self.0
    }

    /// Parses 32 bytes of key material.
    pub fn from_bytes(bytes: &[u8; 32]) -> Option<PublicKey> {
        Some(PublicKey(*bytes))
    }
}

/// A signing keypair.
#[derive(Clone)]
pub struct Keypair {
    public: PublicKey,
}

impl Keypair {
    /// Builds a keypair deterministically from a 32-byte seed.
    pub fn from_seed(seed: [u8; 32]) -> Keypair {
        let mut hasher = Sha256::new();
        hasher.update(PK_DOMAIN);
        hasher.update(&seed);
        Keypair {
            public: PublicKey(hasher.finalize()),
        }
    }

    /// Derives the keypair for participant `label`/`index` from a cluster
    /// master secret (test and simulation deployments).
    pub fn derive(master: &[u8], label: &str, index: u64) -> Keypair {
        // Length-prefix each component so distinct (master, label)
        // splits can never concatenate to the same byte string.
        let mut material = Vec::with_capacity(master.len() + label.len() + 24);
        material.extend_from_slice(&(master.len() as u64).to_be_bytes());
        material.extend_from_slice(master);
        material.extend_from_slice(&(label.len() as u64).to_be_bytes());
        material.extend_from_slice(label.as_bytes());
        material.extend_from_slice(&index.to_be_bytes());
        Keypair::from_seed(Sha256::digest(&material))
    }

    /// The matching public key.
    pub fn public(&self) -> PublicKey {
        self.public
    }

    /// Signs `message`.
    pub fn sign(&self, message: &[u8]) -> Signature {
        sign_with(&self.public.0, message)
    }
}

/// Per-replica view of the cluster's key material: everyone's public keys
/// plus this replica's own signing key.
#[derive(Clone)]
pub struct KeyStore {
    me: ReplicaId,
    keypair: Keypair,
    publics: Vec<PublicKey>,
}

impl KeyStore {
    /// Builds key stores for a full cluster of `n` replicas from a master
    /// secret. Returns one store per replica.
    pub fn cluster(master: &[u8], n: u32) -> Vec<KeyStore> {
        let keypairs: Vec<Keypair> = (0..n)
            .map(|i| Keypair::derive(master, "replica", u64::from(i)))
            .collect();
        let publics: Vec<PublicKey> = keypairs.iter().map(Keypair::public).collect();
        keypairs
            .into_iter()
            .enumerate()
            .map(|(i, keypair)| KeyStore {
                me: ReplicaId(i as u32),
                keypair,
                publics: publics.clone(),
            })
            .collect()
    }

    /// This replica's identity.
    pub fn me(&self) -> ReplicaId {
        self.me
    }

    /// Signs with this replica's key.
    pub fn sign(&self, message: &[u8]) -> Signature {
        self.keypair.sign(message)
    }

    /// Verifies a signature attributed to `signer`.
    pub fn verify(&self, signer: ReplicaId, message: &[u8], sig: &Signature) -> bool {
        self.publics
            .get(signer.as_usize())
            .is_some_and(|pk| pk.verify(message, sig))
    }

    /// Public key of `replica`.
    pub fn public_of(&self, replica: ReplicaId) -> Option<&PublicKey> {
        self.publics.get(replica.as_usize())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sign_verify_roundtrip() {
        let kp = Keypair::from_seed([42u8; 32]);
        let sig = kp.sign(b"propose v7");
        assert!(kp.public().verify(b"propose v7", &sig));
        assert!(!kp.public().verify(b"propose v8", &sig));
    }

    #[test]
    fn derivation_is_deterministic_and_distinct() {
        let a1 = Keypair::derive(b"master", "replica", 0);
        let a2 = Keypair::derive(b"master", "replica", 0);
        let b = Keypair::derive(b"master", "replica", 1);
        assert_eq!(a1.public().to_bytes(), a2.public().to_bytes());
        assert_ne!(a1.public().to_bytes(), b.public().to_bytes());
    }

    #[test]
    fn public_key_byte_roundtrip() {
        let kp = Keypair::from_seed([9u8; 32]);
        let bytes = kp.public().to_bytes();
        let back = PublicKey::from_bytes(&bytes).unwrap();
        let sig = kp.sign(b"x");
        assert!(back.verify(b"x", &sig));
    }

    #[test]
    fn cluster_stores_cross_verify() {
        let stores = KeyStore::cluster(b"secret", 4);
        assert_eq!(stores.len(), 4);
        let sig = stores[2].sign(b"sync v3");
        for store in &stores {
            assert!(store.verify(ReplicaId(2), b"sync v3", &sig));
            assert!(!store.verify(ReplicaId(1), b"sync v3", &sig));
            assert!(!store.verify(ReplicaId(9), b"sync v3", &sig));
        }
    }

    #[test]
    fn tampered_signature_rejected() {
        let kp = Keypair::from_seed([1u8; 32]);
        let mut sig = kp.sign(b"msg");
        sig.0[10] ^= 0xff;
        assert!(!kp.public().verify(b"msg", &sig));
    }
}
