//! HMAC-SHA256, implemented from scratch (RFC 2104 / FIPS 198-1).
//!
//! The paper uses MACs for all messages that are never forwarded (§2),
//! because a MAC costs roughly two hash compressions instead of an
//! elliptic-curve operation. This module provides the MAC itself plus the
//! pairwise-key session type used by replicas.

use crate::sha256::{Sha256, BLOCK_LEN, DIGEST_LEN};

/// Length of an HMAC-SHA256 tag in bytes.
pub const TAG_LEN: usize = DIGEST_LEN;

/// Computes `HMAC-SHA256(key, message)`.
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> [u8; TAG_LEN] {
    // Keys longer than the block size are hashed first (RFC 2104 §2).
    let mut key_block = [0u8; BLOCK_LEN];
    if key.len() > BLOCK_LEN {
        key_block[..DIGEST_LEN].copy_from_slice(&Sha256::digest(key));
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }

    let mut ipad = [0x36u8; BLOCK_LEN];
    let mut opad = [0x5cu8; BLOCK_LEN];
    for i in 0..BLOCK_LEN {
        ipad[i] ^= key_block[i];
        opad[i] ^= key_block[i];
    }

    let mut inner = Sha256::new();
    inner.update(&ipad);
    inner.update(message);
    let inner_digest = inner.finalize();

    let mut outer = Sha256::new();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finalize()
}

/// Constant-time tag comparison (avoids leaking the mismatch index).
pub fn verify_tag(expected: &[u8; TAG_LEN], candidate: &[u8]) -> bool {
    if candidate.len() != TAG_LEN {
        return false;
    }
    let mut diff = 0u8;
    for (a, b) in expected.iter().zip(candidate.iter()) {
        diff |= a ^ b;
    }
    diff == 0
}

/// A pairwise MAC session between two replicas sharing a symmetric key,
/// as PBFT-style authenticated channels assume.
#[derive(Clone)]
pub struct MacKey {
    key: [u8; 32],
}

impl MacKey {
    /// Builds a session from 32 bytes of keying material.
    pub fn new(key: [u8; 32]) -> MacKey {
        MacKey { key }
    }

    /// Derives the canonical pairwise key for replicas `a` and `b` from a
    /// cluster master secret. Symmetric in `a`/`b` so both ends derive the
    /// same key.
    pub fn derive_pairwise(master: &[u8], a: u32, b: u32) -> MacKey {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let mut material = Vec::with_capacity(master.len() + 8);
        material.extend_from_slice(master);
        material.extend_from_slice(&lo.to_be_bytes());
        material.extend_from_slice(&hi.to_be_bytes());
        MacKey {
            key: Sha256::digest(&material),
        }
    }

    /// Tags a message.
    pub fn tag(&self, message: &[u8]) -> [u8; TAG_LEN] {
        hmac_sha256(&self.key, message)
    }

    /// Verifies a tag over a message.
    pub fn verify(&self, message: &[u8], tag: &[u8]) -> bool {
        verify_tag(&self.tag(message), tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    // RFC 4231 test vectors for HMAC-SHA256.
    #[test]
    fn rfc4231_case_1() {
        let key = [0x0bu8; 20];
        let tag = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            hex(&tag),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case_2_jefe() {
        let tag = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex(&tag),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case_3_aa() {
        let key = [0xaau8; 20];
        let data = [0xddu8; 50];
        let tag = hmac_sha256(&key, &data);
        assert_eq!(
            hex(&tag),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_case_6_long_key() {
        let key = [0xaau8; 131];
        let tag = hmac_sha256(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            hex(&tag),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn matches_reference_implementation() {
        use hmac::Mac as _;
        type RefHmac = hmac::Hmac<sha2::Sha256>;
        for key_len in [0usize, 1, 32, 64, 65, 200] {
            let key: Vec<u8> = (0..key_len).map(|i| i as u8).collect();
            let msg: Vec<u8> = (0..97u8).collect();
            let ours = hmac_sha256(&key, &msg);
            let mut reference = RefHmac::new_from_slice(&key).unwrap();
            reference.update(&msg);
            let theirs = reference.finalize().into_bytes();
            assert_eq!(ours[..], theirs[..], "key_len {key_len}");
        }
    }

    #[test]
    fn pairwise_keys_are_symmetric_and_distinct() {
        let master = b"cluster-secret";
        let k_ab = MacKey::derive_pairwise(master, 1, 5);
        let k_ba = MacKey::derive_pairwise(master, 5, 1);
        let k_ac = MacKey::derive_pairwise(master, 1, 6);
        assert_eq!(k_ab.key, k_ba.key);
        assert_ne!(k_ab.key, k_ac.key);
    }

    #[test]
    fn tag_roundtrip_and_tamper_detection() {
        let k = MacKey::new([7u8; 32]);
        let tag = k.tag(b"propose v3");
        assert!(k.verify(b"propose v3", &tag));
        assert!(!k.verify(b"propose v4", &tag));
        assert!(!k.verify(b"propose v3", &tag[..31]));
        let mut bad = tag;
        bad[0] ^= 1;
        assert!(!k.verify(b"propose v3", &bad));
    }

    #[test]
    fn constant_time_compare_rejects_wrong_lengths() {
        let tag = [1u8; TAG_LEN];
        assert!(!verify_tag(&tag, &[1u8; 16]));
        assert!(verify_tag(&tag, &[1u8; 32]));
    }
}
