//! Cryptographic substrate for the SpotLess reproduction.
//!
//! The paper's authentication model (§2) uses two mechanisms:
//!
//! * **MACs** for messages that are never forwarded (cheap; one symmetric
//!   operation) — implemented from scratch as HMAC-SHA256 in [`hmac`],
//!   over the from-scratch SHA-256 in [`sha256`];
//! * **digital signatures** for forwardable messages (proposals, `Sync`
//!   claims inside certificates, client requests) — real RFC 8032
//!   Ed25519 in [`signing`], built on the workspace's from-scratch
//!   `compat/ed25519` crate (the offline build environment rules out
//!   `ed25519-dalek`), with typed verification errors and batch
//!   verification for quorum re-checking.
//!
//! Under the discrete-event simulator, cryptography is *charged* rather
//! than computed: message types report their verification/signing costs
//! through `spotless_types::node::ProtocolMessage` and the simulator's CPU
//! model accounts for them. The real tokio transport uses the primitives
//! in this crate directly. Both paths share the digest helpers in
//! [`digest`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod digest;
pub mod hmac;
pub mod merkle;
pub mod sha256;
pub mod signing;

pub use digest::{digest_bytes, digest_chained, digest_fields};
pub use hmac::{hmac_sha256, MacKey, TAG_LEN};
pub use merkle::{
    fold_proof, leaf_digest, proof_index, verify_inclusion, MerkleTree, ProofStep, MAX_PROOF_DEPTH,
};
pub use sha256::Sha256;
pub use signing::{BatchVerifier, KeyStore, Keypair, PublicKey, VerifyError, SIGNATURE_LEN};
pub use spotless_types::Signature;
