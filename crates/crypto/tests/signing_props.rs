//! Property tests for the Ed25519 stack: field and scalar byte
//! round-trips plus algebraic identities at the bottom, and at the top
//! the equivalence the verification API leans on — a batch accepts iff
//! serial verification of every member accepts, and with exactly one
//! bad signature the serial pass blames exactly that index. The
//! pipeline's certificate sanitizer and `KeyStore::verify_quorum` are
//! both built on that equivalence, so it is load-bearing, not
//! decorative.

use ed25519::field::FieldElement;
use ed25519::scalar::Scalar;
use proptest::prelude::*;
use spotless_crypto::{BatchVerifier, KeyStore, Keypair};
use spotless_types::{ReplicaId, Signature};

/// 32 bytes assembled from four u64 limbs (the stand-in proptest has
/// no array strategy).
fn bytes32(limbs: (u64, u64, u64, u64)) -> [u8; 32] {
    let mut out = [0u8; 32];
    out[..8].copy_from_slice(&limbs.0.to_le_bytes());
    out[8..16].copy_from_slice(&limbs.1.to_le_bytes());
    out[16..24].copy_from_slice(&limbs.2.to_le_bytes());
    out[24..].copy_from_slice(&limbs.3.to_le_bytes());
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Canonical field encodings survive a decode/encode round-trip
    /// bit-exactly. Masking the top two bits keeps the value below
    /// 2^254 < p, so every generated encoding is canonical.
    #[test]
    fn field_bytes_roundtrip(limbs in (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>())) {
        let mut bytes = bytes32(limbs);
        bytes[31] &= 0x3f;
        let fe = FieldElement::from_bytes_canonical(&bytes).expect("< 2^254 is canonical");
        prop_assert_eq!(fe.to_bytes(), bytes);
    }

    /// Field arithmetic identities: additive inverse, multiplicative
    /// identity and commutativity, and `a · a⁻¹ = 1` for nonzero `a`.
    #[test]
    fn field_algebra_holds(
        a in (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
        b in (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
    ) {
        let (mut ab, mut bb) = (bytes32(a), bytes32(b));
        ab[31] &= 0x3f;
        bb[31] &= 0x3f;
        let x = FieldElement::from_bytes_canonical(&ab).unwrap();
        let y = FieldElement::from_bytes_canonical(&bb).unwrap();
        prop_assert_eq!(((x + y) - y).to_bytes(), x.to_bytes());
        prop_assert_eq!((x * FieldElement::ONE).to_bytes(), x.to_bytes());
        prop_assert_eq!((x * y).to_bytes(), (y * x).to_bytes());
        if !x.is_zero() {
            prop_assert_eq!((x * x.invert()).to_bytes(), FieldElement::ONE.to_bytes());
        }
    }

    /// `from_bytes_mod_order` always lands on a canonical encoding:
    /// its `to_bytes` re-parses via the strict path to the same value,
    /// and reducing again is a no-op.
    #[test]
    fn scalar_reduction_is_canonical(limbs in (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>())) {
        let s = Scalar::from_bytes_mod_order(&bytes32(limbs));
        let encoded = s.to_bytes();
        let strict = Scalar::from_canonical_bytes(&encoded)
            .expect("reduced scalars re-parse strictly");
        prop_assert_eq!(strict.to_bytes(), encoded);
        prop_assert_eq!(Scalar::from_bytes_mod_order(&encoded).to_bytes(), encoded);
    }

    /// Scalar arithmetic matches u128 arithmetic on small inputs, and
    /// `s + (−s) = 0` for arbitrary reduced scalars.
    #[test]
    fn scalar_algebra_holds(
        a in any::<u64>(),
        b in any::<u64>(),
        limbs in (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
    ) {
        let (sa, sb) = (Scalar::from_u128(a as u128), Scalar::from_u128(b as u128));
        let sum = Scalar::from_u128(a as u128 + b as u128);
        let product = Scalar::from_u128(a as u128 * b as u128);
        prop_assert_eq!((sa + sb).to_bytes(), sum.to_bytes());
        prop_assert_eq!((sa * sb).to_bytes(), product.to_bytes());
        let s = Scalar::from_bytes_mod_order(&bytes32(limbs));
        prop_assert!((s + s.neg()).is_zero());
    }

    /// Sign/verify round-trips for arbitrary seeds and messages, and
    /// any single-bit flip in the signature is rejected.
    #[test]
    fn sign_verify_roundtrip_and_bitflip_rejection(
        seed in (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
        message in prop::collection::vec(any::<u8>(), 0..64),
        flip in 0usize..512,
    ) {
        let kp = Keypair::from_seed(bytes32(seed));
        let sig = kp.sign(&message);
        prop_assert!(kp.public().verify(&message, &sig).is_ok());
        let mut bad = sig;
        bad.0[flip / 8] ^= 1 << (flip % 8);
        prop_assert!(kp.public().verify(&message, &bad).is_err());
    }

    /// Batch acceptance ⇔ serial acceptance. All-valid batches verify;
    /// corrupting exactly one signature fails the batch, and the serial
    /// pass (and `KeyStore::filter_valid`) blames exactly that index.
    #[test]
    fn batch_matches_serial_with_one_bad_signature(
        n in 4u32..9,
        message in prop::collection::vec(any::<u8>(), 1..48),
        bad_index in 0u32..4,
    ) {
        let stores = KeyStore::cluster(b"signing-props", n);
        let votes: Vec<(ReplicaId, Signature)> = (0..n)
            .map(|r| (ReplicaId(r), stores[r as usize].sign(&message)))
            .collect();

        // All valid: batch and serial agree on acceptance.
        let mut batch = BatchVerifier::new();
        for (r, sig) in &votes {
            batch.push(stores[0].public_of(*r).unwrap(), &message, sig);
        }
        prop_assert!(batch.verify().is_ok());
        prop_assert!(stores[0].verify_quorum(&message, &votes).is_ok());
        prop_assert_eq!(stores[0].filter_valid(&message, &votes), vec![true; n as usize]);

        // One forged member: the batch rejects as a whole; the serial
        // mask singles out the culprit and only the culprit.
        let bad_index = (bad_index % n) as usize;
        let mut forged = votes.clone();
        forged[bad_index].1 .0[0] ^= 0x01;
        let mut batch = BatchVerifier::new();
        for (r, sig) in &forged {
            batch.push(stores[0].public_of(*r).unwrap(), &message, sig);
        }
        prop_assert!(batch.verify().is_err());
        prop_assert!(stores[0].verify_quorum(&message, &forged).is_err());
        let mask = stores[0].filter_valid(&message, &forged);
        for (i, ok) in mask.iter().enumerate() {
            prop_assert_eq!(*ok, i != bad_index, "blame must land on index {bad_index} alone");
        }
    }
}
