//! Property tests for the Merkle tree: `prove`/`verify_inclusion`
//! round-trips over arbitrary item sets (odd-leaf duplication edge
//! cases included), and any single-byte tamper — in the item, in any
//! proof step, or in the root — is rejected. These are the proofs the
//! chunked snapshot transfer trusts state bytes on, so the rejection
//! side is as important as the round-trip.

use proptest::prelude::*;
use spotless_crypto::merkle::{proof_index, verify_inclusion, MerkleTree};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every leaf of every tree proves, verifies, and reports its own
    /// index through the proof's direction bits. Lengths 1..40 make odd
    /// counts as likely as even ones, so the duplicate-the-last-node
    /// promotion path is exercised at every level.
    #[test]
    fn prove_verify_roundtrips_for_arbitrary_items(
        items in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..24), 1..40),
    ) {
        let tree = MerkleTree::build(&items);
        prop_assert_eq!(tree.len(), items.len());
        for (i, item) in items.iter().enumerate() {
            let proof = tree.prove(i).expect("index in range");
            prop_assert!(verify_inclusion(item, &proof, &tree.root()), "leaf {i}");
            prop_assert_eq!(proof_index(&proof), i, "direction bits must encode the index");
        }
        prop_assert!(tree.prove(items.len()).is_none(), "out of range has no proof");
    }

    /// Flipping one bit of the proven item is rejected.
    #[test]
    fn tampered_item_is_rejected(
        items in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..24), 1..40),
        pick in any::<u64>(),
        at in any::<u64>(),
        bit in 0u8..8,
    ) {
        let tree = MerkleTree::build(&items);
        let i = (pick % items.len() as u64) as usize;
        let proof = tree.prove(i).expect("in range");
        let mut tampered = items[i].clone();
        if tampered.is_empty() {
            tampered.push(1); // no byte to flip: grow it instead
        } else {
            let at = (at % tampered.len() as u64) as usize;
            tampered[at] ^= 1 << bit;
        }
        prop_assert!(!verify_inclusion(&tampered, &proof, &tree.root()));
    }

    /// Flipping one bit of any proof step's sibling hash is rejected.
    /// (A single-leaf tree has an empty proof — nothing to tamper.)
    #[test]
    fn tampered_proof_sibling_is_rejected(
        items in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..24), 2..40),
        pick in any::<u64>(),
        step_pick in any::<u64>(),
        at in any::<u64>(),
        bit in 0u8..8,
    ) {
        let tree = MerkleTree::build(&items);
        let i = (pick % items.len() as u64) as usize;
        let mut proof = tree.prove(i).expect("in range");
        prop_assert!(!proof.is_empty(), "trees with ≥2 leaves have non-empty proofs");
        let s = (step_pick % proof.len() as u64) as usize;
        proof[s].sibling.0[(at % 32) as usize] ^= 1 << bit;
        prop_assert!(!verify_inclusion(&items[i], &proof, &tree.root()));
    }

    /// Flipping a proof step's direction bit is rejected whenever
    /// direction can matter — i.e. unless that step pairs the running
    /// hash with itself (the odd-leaf duplication case, where both
    /// orderings are byte-identical by construction).
    #[test]
    fn flipped_direction_bit_is_rejected(
        items in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..24), 2..40),
        pick in any::<u64>(),
        step_pick in any::<u64>(),
    ) {
        let tree = MerkleTree::build(&items);
        let i = (pick % items.len() as u64) as usize;
        let proof = tree.prove(i).expect("in range");
        let s = (step_pick % proof.len() as u64) as usize;
        let mut flipped = proof.clone();
        flipped[s].sibling_on_right = !flipped[s].sibling_on_right;
        if verify_inclusion(&items[i], &flipped, &tree.root()) {
            // Only legal when the step is a self-pairing (duplicated
            // odd node): swapping identical halves changes nothing.
            // Verify that is indeed the case by recomputing the running
            // hash up to this step and comparing it with the sibling.
            // A single-leaf tree's root is exactly the leaf hash.
            let mut acc = MerkleTree::build(&[items[i].clone()]).root();
            for step in &proof[..s] {
                acc = combine(&acc, step.sibling, step.sibling_on_right);
            }
            prop_assert_eq!(
                acc, proof[s].sibling,
                "a direction flip may only verify on a self-paired (odd-duplicate) step"
            );
        }
    }

    /// Flipping one bit of the root is rejected.
    #[test]
    fn tampered_root_is_rejected(
        items in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..24), 1..40),
        pick in any::<u64>(),
        at in any::<u64>(),
        bit in 0u8..8,
    ) {
        let tree = MerkleTree::build(&items);
        let i = (pick % items.len() as u64) as usize;
        let proof = tree.prove(i).expect("in range");
        let mut root = tree.root();
        root.0[(at % 32) as usize] ^= 1 << bit;
        prop_assert!(!verify_inclusion(&items[i], &proof, &root));
    }

    /// A proof never verifies a *different* leaf's payload at its
    /// position (unless the payloads are byte-identical).
    #[test]
    fn proof_is_position_bound(
        items in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..24), 2..40),
        a in any::<u64>(),
        b in any::<u64>(),
    ) {
        let tree = MerkleTree::build(&items);
        let i = (a % items.len() as u64) as usize;
        let j = (b % items.len() as u64) as usize;
        if items[i] != items[j] {
            let proof = tree.prove(i).expect("in range");
            prop_assert!(!verify_inclusion(&items[j], &proof, &tree.root()));
        }
    }

    /// Changing any item changes the root (collision-freedom smoke
    /// test at the structure level).
    #[test]
    fn any_item_change_moves_the_root(
        items in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..24), 1..40),
        pick in any::<u64>(),
    ) {
        let tree = MerkleTree::build(&items);
        let i = (pick % items.len() as u64) as usize;
        let mut changed = items.clone();
        changed[i].push(0xA5);
        let other = MerkleTree::build(&changed);
        prop_assert_ne!(tree.root(), other.root());
    }
}

/// The interior-node combiner, re-derived for the direction-flip test
/// (domain byte 0x01 ‖ left ‖ right, matching `merkle::node_hash`).
fn combine(
    left_or_acc: &spotless_types::Digest,
    sibling: spotless_types::Digest,
    sibling_on_right: bool,
) -> spotless_types::Digest {
    let mut h = spotless_crypto::Sha256::new();
    h.update(&[0x01]);
    if sibling_on_right {
        h.update(&left_or_acc.0);
        h.update(&sibling.0);
    } else {
        h.update(&sibling.0);
        h.update(&left_or_acc.0);
    }
    spotless_types::Digest(h.finalize())
}
