//! Direct tests of the discrete-event engine's semantics using a tiny
//! deterministic toy protocol (no consensus logic): resource charging,
//! sink quorums, crash handling, timers, and partitions.

use spotless_simnet::{Driver, IdleDriver, Injector, SimConfig, Simulation};
use spotless_types::node::ProtocolMessage;
use spotless_types::{
    ClientBatch, ClusterConfig, CommitInfo, Context, CryptoCosts, Input, InstanceId, Node, NodeId,
    ReplicaId, SimDuration, SizeModel, TimerId, TimerKind, View,
};

/// Toy message: the batch being shared.
#[derive(Clone, Debug)]
struct Share(ClientBatch);

impl ProtocolMessage for Share {
    fn wire_size(&self, sizes: &SizeModel) -> u64 {
        sizes.proposal(self.0.txns, self.0.txn_size)
    }
    fn verify_cost(&self, costs: &CryptoCosts) -> u64 {
        costs.mac_ns
    }
    fn sign_cost(&self, _costs: &CryptoCosts) -> u64 {
        0
    }
}

/// Toy protocol: whoever receives a client batch broadcasts it; every
/// replica commits every batch it sees (once). No safety — it exists to
/// exercise the engine's plumbing deterministically.
struct EchoNode {
    seen: std::collections::HashSet<spotless_types::BatchId>,
    depth: u64,
    timer_fires: u32,
}

impl EchoNode {
    fn new() -> EchoNode {
        EchoNode {
            seen: Default::default(),
            depth: 0,
            timer_fires: 0,
        }
    }

    fn commit(&mut self, batch: ClientBatch, ctx: &mut dyn Context<Message = Share>) {
        if self.seen.insert(batch.id) {
            self.depth += 1;
            let voted = batch.digest;
            ctx.commit(CommitInfo {
                instance: InstanceId(0),
                view: View(self.depth),
                depth: self.depth,
                batch,
                cert: spotless_types::CommitCertificate::strong(
                    View(self.depth),
                    voted,
                    vec![ReplicaId(0), ReplicaId(1), ReplicaId(2)],
                    vec![spotless_types::Signature::ZERO; 3],
                ),
            });
        }
    }
}

impl Node for EchoNode {
    type Message = Share;

    fn on_input(&mut self, input: Input<Share>, ctx: &mut dyn Context<Message = Share>) {
        match input {
            Input::Start => {
                ctx.set_timer(
                    TimerId::new(TimerKind::Custom(7), InstanceId(0), View(0)),
                    SimDuration::from_millis(10),
                );
            }
            Input::Request(batch) => {
                ctx.broadcast(Share(batch.clone()));
                self.commit(batch, ctx);
            }
            Input::Deliver { msg: Share(b), .. } => self.commit(b, ctx),
            Input::Timer(id) => {
                if id.kind == TimerKind::Custom(7) {
                    self.timer_fires += 1;
                }
            }
        }
    }
}

/// Driver submitting `count` batches to replica 0 at start.
struct BurstDriver {
    count: u32,
}

impl Driver for BurstDriver {
    fn start(&mut self, inj: &mut Injector<'_>) {
        for _ in 0..self.count {
            let b = inj.new_batch(ReplicaId(0));
            inj.submit(ReplicaId(0), b);
        }
    }
}

fn base_config(n: u32) -> SimConfig {
    let mut cfg = SimConfig::new(ClusterConfig::with_instances(n, 1));
    cfg.warmup = SimDuration::ZERO;
    cfg.duration = SimDuration::from_secs(2);
    cfg
}

fn nodes(n: u32) -> Vec<EchoNode> {
    (0..n).map(|_| EchoNode::new()).collect()
}

#[test]
fn batches_complete_after_weak_quorum_of_informs() {
    let mut sim = Simulation::new(base_config(4), nodes(4), BurstDriver { count: 5 });
    let report = sim.run();
    assert_eq!(report.batches, 5);
    assert_eq!(report.txns, 500);
    // Everyone committed everything: 4 replicas × 5 batches.
    assert_eq!(report.commits_observed, 20);
    assert!(report.avg_latency_s > 0.0, "latency includes wire + exec");
}

#[test]
fn crashed_receiver_breaks_nothing_but_its_own_informs() {
    // Crash 1 of 4: the other three still inform; f + 1 = 2 suffices.
    let cfg = base_config(4).with_crashed(1);
    let mut sim = Simulation::new(cfg, nodes(4), BurstDriver { count: 3 });
    let report = sim.run();
    assert_eq!(report.batches, 3);
    // Only 3 replicas commit (the crashed one is silent).
    assert_eq!(report.commits_observed, 9);
}

#[test]
fn crashing_the_entry_replica_stalls_until_client_retry() {
    // Batches go to replica 0 which is crashed; the client timeout
    // resends to replica 1 (ClosedLoopDriver's rule is tested in the
    // core suites; here IdleDriver shows the negative case: no retry,
    // no completion).
    let mut cfg = base_config(4);
    cfg.crash_at[0] = Some(spotless_types::SimTime::ZERO);
    let mut sim = Simulation::new(cfg, nodes(4), BurstDriver { count: 2 });
    let report = sim.run();
    assert_eq!(
        report.batches, 0,
        "burst driver never retries; crashed entry swallows the batches"
    );
}

#[test]
fn idle_driver_produces_nothing() {
    let mut sim = Simulation::new(base_config(4), nodes(4), IdleDriver);
    let report = sim.run();
    assert_eq!(report.batches, 0);
    assert_eq!(report.protocol_msgs, 0);
}

#[test]
fn protocol_bytes_match_size_model() {
    let cfg = base_config(4);
    let sizes = cfg.resources.sizes;
    let mut sim = Simulation::new(cfg, nodes(4), BurstDriver { count: 1 });
    let report = sim.run();
    // One broadcast from replica 0 to 3 peers, each proposal-sized.
    let expect = 3 * sizes.proposal(100, 48);
    assert_eq!(report.protocol_bytes, expect);
    assert_eq!(report.protocol_msgs, 3);
}

#[test]
fn partitions_block_delivery_while_active() {
    let mut cfg = base_config(4);
    // Replica 3 is cut off for the entire run.
    cfg.topology.partition_off(
        &[3],
        spotless_types::SimTime::ZERO,
        spotless_types::SimTime(u64::MAX),
    );
    let mut sim = Simulation::new(cfg, nodes(4), BurstDriver { count: 2 });
    let report = sim.run();
    // 3 replicas commit each batch instead of 4.
    assert_eq!(report.commits_observed, 6);
    assert_eq!(report.batches, 2, "f+1 informs still reachable");
}

#[test]
fn full_drop_rate_kills_all_replica_traffic() {
    let mut cfg = base_config(4);
    cfg.drop_rate = 1.0;
    let mut sim = Simulation::new(cfg, nodes(4), BurstDriver { count: 2 });
    let report = sim.run();
    // Replica 0 still commits locally (self-delivery is loopback) and
    // informs, but one inform < f + 1: nothing completes.
    assert_eq!(report.batches, 0);
    assert_eq!(report.commits_observed, 2);
}

#[test]
fn lower_bandwidth_increases_latency() {
    let run_with = |mbps: u64| {
        let mut cfg = base_config(4);
        cfg.resources = cfg.resources.with_bandwidth_mbps(mbps);
        let mut sim = Simulation::new(cfg, nodes(4), BurstDriver { count: 10 });
        sim.run()
    };
    let fast = run_with(4000);
    let slow = run_with(100);
    assert!(slow.avg_latency_s > fast.avg_latency_s);
}

#[test]
fn timers_fire_exactly_once_per_arm() {
    struct CountDriver;
    impl Driver for CountDriver {
        fn start(&mut self, _inj: &mut Injector<'_>) {}
    }
    let mut sim = Simulation::new(base_config(4), nodes(4), CountDriver);
    let _ = sim.run();
    // Each node armed one Custom timer at Start; no way to observe
    // directly through the report, but the run terminating quickly (no
    // timer storm) is the regression signal.
}

#[test]
fn client_latency_reflects_region_distance() {
    let mk = |regions: u32| {
        let mut cfg = base_config(8);
        cfg.topology = spotless_simnet::Topology::global(8, regions);
        let mut sim = Simulation::new(cfg, nodes(8), BurstDriver { count: 5 });
        sim.run()
    };
    let lan = mk(1);
    let wan = mk(4);
    assert!(wan.avg_latency_s > lan.avg_latency_s);
}

#[test]
fn reports_expose_event_counts() {
    let mut sim = Simulation::new(base_config(4), nodes(4), BurstDriver { count: 1 });
    let report = sim.run();
    assert!(report.events > 0);
    // WireArrival + HandleMsg per delivered message, plus requests,
    // informs, timers: strictly more events than messages.
    assert!(report.events > report.protocol_msgs);
}

#[test]
fn sends_to_clients_are_ignored_under_simulation() {
    struct ChattyNode;
    impl Node for ChattyNode {
        type Message = Share;
        fn on_input(&mut self, input: Input<Share>, ctx: &mut dyn Context<Message = Share>) {
            if let Input::Request(b) = input {
                // Protocols must not speak to clients directly in sim;
                // the engine models replies via commit. This send is
                // dropped silently.
                ctx.send(NodeId::Client(spotless_types::ClientId(0)), Share(b));
            }
        }
    }
    let mut sim = Simulation::new(
        base_config(4),
        (0..4).map(|_| ChattyNode).collect(),
        BurstDriver { count: 1 },
    );
    let report = sim.run();
    assert_eq!(report.protocol_msgs, 0);
    assert_eq!(report.batches, 0);
}
