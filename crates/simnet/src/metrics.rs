//! Measurement collection: throughput, latency, timelines, message costs.
//!
//! The paper measures (§6.3): throughput as transactions executed per
//! second, latency as the client-side delay until `f + 1` matching
//! `Inform` responses arrive, a 5-second-bucket throughput timeline
//! (Figure 12), and — implicitly, in Figure 1 — per-decision message
//! complexity. [`Metrics`] gathers all of these in one place and the
//! bench harness renders them.

use spotless_types::{SimDuration, SimTime};

/// Running metrics for one simulation.
#[derive(Clone, Debug)]
pub struct Metrics {
    /// Start of the measurement window (warm-up excluded before this).
    pub measure_from: SimTime,
    /// End of the measurement window (filled in by `finish`).
    pub measure_until: SimTime,
    /// Client-observed end-to-end batch latencies within the window.
    latencies: Vec<SimDuration>,
    /// Transactions completed (f+1 informs) within the window.
    txns_completed: u64,
    /// Batches completed within the window.
    batches_completed: u64,
    /// Committed slots observed (all replicas, incl. no-ops) — for view
    /// progress diagnostics, not throughput.
    pub commits_observed: u64,
    /// Replica-to-replica protocol messages sent (whole run).
    pub protocol_msgs: u64,
    /// Replica-to-replica protocol bytes sent (whole run).
    pub protocol_bytes: u64,
    /// Client replies sent (whole run).
    pub replies_sent: u64,
    /// Throughput timeline: transactions completed per bucket.
    timeline: Vec<u64>,
    /// Width of one timeline bucket.
    pub bucket: SimDuration,
}

impl Metrics {
    /// Fresh metrics; measurement starts at `measure_from`, the timeline
    /// uses `bucket`-wide bins from time zero.
    pub fn new(measure_from: SimTime, bucket: SimDuration) -> Metrics {
        Metrics {
            measure_from,
            measure_until: measure_from,
            latencies: Vec::new(),
            txns_completed: 0,
            batches_completed: 0,
            commits_observed: 0,
            protocol_msgs: 0,
            protocol_bytes: 0,
            replies_sent: 0,
            timeline: Vec::new(),
            bucket,
        }
    }

    /// Records a batch completing at the client at `now`.
    pub fn batch_complete(&mut self, now: SimTime, txns: u32, latency: SimDuration) {
        let bucket = (now.as_nanos() / self.bucket.as_nanos().max(1)) as usize;
        if bucket >= self.timeline.len() {
            self.timeline.resize(bucket + 1, 0);
        }
        self.timeline[bucket] += u64::from(txns);
        if now >= self.measure_from {
            self.txns_completed += u64::from(txns);
            self.batches_completed += 1;
            self.latencies.push(latency);
        }
    }

    /// Records one protocol message of `bytes` leaving a replica NIC.
    #[inline]
    pub fn protocol_send(&mut self, bytes: u64) {
        self.protocol_msgs += 1;
        self.protocol_bytes += bytes;
    }

    /// Closes the measurement window at `now`.
    pub fn finish(&mut self, now: SimTime) {
        self.measure_until = now;
    }

    /// Measured duration in seconds.
    pub fn window_secs(&self) -> f64 {
        (self.measure_until - self.measure_from)
            .as_secs_f64()
            .max(1e-9)
    }

    /// Client-observed throughput in transactions per second.
    pub fn throughput_tps(&self) -> f64 {
        self.txns_completed as f64 / self.window_secs()
    }

    /// Batches completed within the window.
    pub fn batches(&self) -> u64 {
        self.batches_completed
    }

    /// Transactions completed within the window.
    pub fn txns(&self) -> u64 {
        self.txns_completed
    }

    /// Average client latency in seconds (0 if nothing completed).
    pub fn avg_latency_s(&self) -> f64 {
        if self.latencies.is_empty() {
            return 0.0;
        }
        let total: f64 = self.latencies.iter().map(|d| d.as_secs_f64()).sum();
        total / self.latencies.len() as f64
    }

    /// Latency percentile in seconds (`p` in `[0, 100]`).
    pub fn latency_percentile_s(&self, p: f64) -> f64 {
        if self.latencies.is_empty() {
            return 0.0;
        }
        let mut sorted = self.latencies.clone();
        sorted.sort_unstable();
        let rank = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
        sorted[rank.min(sorted.len() - 1)].as_secs_f64()
    }

    /// The throughput timeline as (bucket start seconds, txn/s) pairs.
    pub fn timeline_tps(&self) -> Vec<(f64, f64)> {
        let width = self.bucket.as_secs_f64();
        self.timeline
            .iter()
            .enumerate()
            .map(|(i, &txns)| (i as f64 * width, txns as f64 / width))
            .collect()
    }

    /// Protocol messages per committed batch (Figure 1's "messages per
    /// decision", measured rather than analytic).
    pub fn msgs_per_decision(&self) -> f64 {
        if self.batches_completed == 0 {
            return f64::NAN;
        }
        self.protocol_msgs as f64 / self.batches_completed as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m() -> Metrics {
        Metrics::new(
            SimTime::ZERO + SimDuration::from_secs(1),
            SimDuration::from_secs(5),
        )
    }

    #[test]
    fn warmup_is_excluded() {
        let mut metrics = m();
        metrics.batch_complete(SimTime(500_000_000), 100, SimDuration::from_millis(10));
        assert_eq!(metrics.txns(), 0); // before measure_from
        metrics.batch_complete(SimTime(1_500_000_000), 100, SimDuration::from_millis(10));
        assert_eq!(metrics.txns(), 100);
        assert_eq!(metrics.batches(), 1);
    }

    #[test]
    fn throughput_uses_window() {
        let mut metrics = m();
        for i in 0..10 {
            metrics.batch_complete(
                SimTime(1_000_000_000 + i * 100_000_000),
                100,
                SimDuration::from_millis(5),
            );
        }
        metrics.finish(SimTime(2_000_000_000)); // 1 s window
        let tps = metrics.throughput_tps();
        assert!((990.0..=1010.0).contains(&tps), "{tps}");
    }

    #[test]
    fn latency_stats() {
        let mut metrics = m();
        for ms in [10u64, 20, 30, 40] {
            metrics.batch_complete(SimTime(1_500_000_000), 1, SimDuration::from_millis(ms));
        }
        assert!((metrics.avg_latency_s() - 0.025).abs() < 1e-9);
        assert!((metrics.latency_percentile_s(0.0) - 0.010).abs() < 1e-9);
        assert!((metrics.latency_percentile_s(100.0) - 0.040).abs() < 1e-9);
    }

    #[test]
    fn timeline_buckets_by_five_seconds() {
        let mut metrics = m();
        metrics.batch_complete(SimTime(2_000_000_000), 100, SimDuration::ZERO);
        metrics.batch_complete(SimTime(7_000_000_000), 200, SimDuration::ZERO);
        let tl = metrics.timeline_tps();
        assert_eq!(tl.len(), 2);
        assert!((tl[0].1 - 20.0).abs() < 1e-9); // 100 txn / 5 s
        assert!((tl[1].1 - 40.0).abs() < 1e-9);
    }

    #[test]
    fn msgs_per_decision() {
        let mut metrics = m();
        for _ in 0..30 {
            metrics.protocol_send(432);
        }
        metrics.batch_complete(SimTime(1_500_000_000), 100, SimDuration::ZERO);
        metrics.batch_complete(SimTime(1_600_000_000), 100, SimDuration::ZERO);
        assert!((metrics.msgs_per_decision() - 15.0).abs() < 1e-9);
        assert_eq!(metrics.protocol_bytes, 30 * 432);
    }
}
