//! Per-replica hardware resource queues.
//!
//! Three resources shape the paper's results and are modelled here:
//!
//! * **NIC** ([`Nic`]) — an outbound serialization queue; a replica
//!   transmitting `b` bytes occupies its uplink for `8·b / bandwidth`.
//!   This is what bottlenecks the single primary of PBFT/HotStuff at
//!   large batch sizes (Figure 7(d)) and all replicas under shaped
//!   bandwidth (Figure 14(b)).
//! * **CPU** ([`Cpu`]) — `k` identical cores; authentication and handler
//!   work are jobs placed on the earliest-free core. This is what
//!   bottlenecks Narwhal-HS (n − f signature verifications per block,
//!   Figure 14(a/b)) and HotStuff's certificate checks.
//! * **Execution lane** ([`ExecLane`]) — sequential transaction execution
//!   at ~340 ktxn/s (§6.1); committed batches execute in total order and
//!   client replies leave only after execution.

use spotless_types::{ResourceModel, SimDuration, SimTime};

/// Outbound NIC serialization queue for one replica.
#[derive(Clone, Debug)]
pub struct Nic {
    free_at: SimTime,
    bytes_sent: u64,
}

impl Nic {
    /// A fresh, idle NIC.
    pub fn new() -> Nic {
        Nic {
            free_at: SimTime::ZERO,
            bytes_sent: 0,
        }
    }

    /// Transmits `bytes` starting no earlier than `ready`; returns the
    /// time the last bit leaves the wire.
    pub fn transmit(&mut self, ready: SimTime, bytes: u64, model: &ResourceModel) -> SimTime {
        let start = if self.free_at > ready {
            self.free_at
        } else {
            ready
        };
        let done = start + SimDuration::from_nanos(model.tx_ns(bytes));
        self.free_at = done;
        self.bytes_sent += bytes;
        done
    }

    /// Total bytes this NIC has transmitted.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent
    }

    /// Earliest time a new transmission could start.
    pub fn free_at(&self) -> SimTime {
        self.free_at
    }
}

impl Default for Nic {
    fn default() -> Self {
        Nic::new()
    }
}

/// A `k`-core CPU scheduler for one replica.
///
/// Jobs are placed on the earliest-free core (no migration, no
/// preemption). `cores` is small (4–32), so a linear scan beats a heap.
#[derive(Clone, Debug)]
pub struct Cpu {
    cores: Vec<SimTime>,
    busy_ns: u64,
}

impl Cpu {
    /// A fresh CPU with `cores` idle cores.
    pub fn new(cores: u32) -> Cpu {
        assert!(cores >= 1);
        Cpu {
            cores: vec![SimTime::ZERO; cores as usize],
            busy_ns: 0,
        }
    }

    /// Schedules a job of `cost_ns` arriving at `ready`; returns its
    /// completion time.
    pub fn schedule(&mut self, ready: SimTime, cost_ns: u64) -> SimTime {
        // Earliest-free core.
        let mut best = 0;
        for i in 1..self.cores.len() {
            if self.cores[i] < self.cores[best] {
                best = i;
            }
        }
        let start = if self.cores[best] > ready {
            self.cores[best]
        } else {
            ready
        };
        let done = start + SimDuration::from_nanos(cost_ns);
        self.cores[best] = done;
        self.busy_ns += cost_ns;
        done
    }

    /// Total core-nanoseconds consumed so far (utilization accounting).
    pub fn busy_ns(&self) -> u64 {
        self.busy_ns
    }
}

/// The sequential execution lane of one replica.
#[derive(Clone, Debug, Default)]
pub struct ExecLane {
    free_at: SimTime,
    txns_executed: u64,
}

impl ExecLane {
    /// A fresh, idle lane.
    pub fn new() -> ExecLane {
        ExecLane::default()
    }

    /// Executes `txns` transactions committed at `ready`; returns the time
    /// execution finishes (when the client reply may be produced).
    pub fn execute(&mut self, ready: SimTime, txns: u32, model: &ResourceModel) -> SimTime {
        let start = if self.free_at > ready {
            self.free_at
        } else {
            ready
        };
        let done =
            start + SimDuration::from_nanos(u64::from(txns).saturating_mul(model.exec_ns_per_txn));
        self.free_at = done;
        self.txns_executed += u64::from(txns);
        done
    }

    /// Total transactions executed by this replica.
    pub fn txns_executed(&self) -> u64 {
        self.txns_executed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spotless_types::ResourceModel;

    #[test]
    fn nic_serializes_back_to_back() {
        let model = ResourceModel::default().with_bandwidth_mbps(1000); // 1 Gbit
        let mut nic = Nic::new();
        // 1250 B = 10 µs on a 1 Gbit link.
        let d1 = nic.transmit(SimTime::ZERO, 1250, &model);
        assert_eq!(d1, SimTime(10_000));
        // Second message queued behind the first even though ready at 0.
        let d2 = nic.transmit(SimTime::ZERO, 1250, &model);
        assert_eq!(d2, SimTime(20_000));
        // A later-ready message starts at its ready time once idle.
        let d3 = nic.transmit(SimTime(100_000), 1250, &model);
        assert_eq!(d3, SimTime(110_000));
        assert_eq!(nic.bytes_sent(), 3750);
    }

    #[test]
    fn cpu_uses_all_cores_before_queueing() {
        let mut cpu = Cpu::new(2);
        let a = cpu.schedule(SimTime::ZERO, 100);
        let b = cpu.schedule(SimTime::ZERO, 100);
        let c = cpu.schedule(SimTime::ZERO, 100);
        // Two jobs run in parallel; the third queues behind one of them.
        assert_eq!(a, SimTime(100));
        assert_eq!(b, SimTime(100));
        assert_eq!(c, SimTime(200));
        assert_eq!(cpu.busy_ns(), 300);
    }

    #[test]
    fn more_cores_means_more_parallelism() {
        let mut small = Cpu::new(4);
        let mut big = Cpu::new(16);
        let mut small_done = SimTime::ZERO;
        let mut big_done = SimTime::ZERO;
        for _ in 0..32 {
            small_done = small.schedule(SimTime::ZERO, 1_000);
            big_done = big.schedule(SimTime::ZERO, 1_000);
        }
        assert!(small_done > big_done);
    }

    #[test]
    fn exec_lane_matches_sequential_ceiling() {
        let model = ResourceModel::default();
        let mut lane = ExecLane::new();
        // Executing 340k transactions takes about one second.
        let done = lane.execute(SimTime::ZERO, 340_000, &model);
        let secs = done.as_secs_f64();
        assert!((0.97..=1.03).contains(&secs), "{secs}");
        assert_eq!(lane.txns_executed(), 340_000);
    }

    #[test]
    fn exec_lane_serializes_batches() {
        let model = ResourceModel::default();
        let mut lane = ExecLane::new();
        let d1 = lane.execute(SimTime::ZERO, 100, &model);
        let d2 = lane.execute(SimTime::ZERO, 100, &model);
        assert!(d2 > d1);
        assert_eq!(d2.as_nanos(), 2 * d1.as_nanos());
    }
}
