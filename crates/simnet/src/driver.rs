//! Load generation: the client side of the evaluation.
//!
//! §5 of the paper defines the client protocol: a client sends a signed
//! batch to one replica, waits for `f + 1` matching `Inform` responses,
//! and on timeout resends to the next replica with a doubled timeout.
//! A [`Driver`] is the simulation's client population; the standard
//! [`ClosedLoopDriver`] keeps a fixed number of batches outstanding per
//! replica — the "client batches per primary" knob that Figures 7(c), 9,
//! and 10 sweep to control offered load.

use spotless_types::{
    BatchId, ClientBatch, ClientId, ClusterConfig, Digest, ReplicaId, SimDuration, SimTime,
};

/// Commands a driver issues during a callback.
pub(crate) enum InjectCmd {
    /// Deliver `batch` to replica `to`; `attempts` selects the client
    /// timeout backoff (doubles per attempt).
    Submit {
        to: u32,
        batch: ClientBatch,
        attempts: u32,
    },
}

/// The driver's handle for creating and submitting batches.
pub struct Injector<'a> {
    now: SimTime,
    cluster: &'a ClusterConfig,
    next_batch: u64,
    cmds: Vec<InjectCmd>,
}

/// SplitMix64: decorrelates sequential batch ids into digest tags so that
/// instance assignment (`digest mod m`, §5) behaves like the paper's
/// cryptographic-hash-based load balancing while staying deterministic.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

impl<'a> Injector<'a> {
    pub(crate) fn new(now: SimTime, cluster: &'a ClusterConfig, next_batch: u64) -> Injector<'a> {
        Injector {
            now,
            cluster,
            next_batch,
            cmds: Vec::new(),
        }
    }

    pub(crate) fn into_parts(self) -> (u64, Vec<InjectCmd>) {
        (self.next_batch, self.cmds)
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The cluster configuration (for `n`, batch size, …).
    pub fn cluster(&self) -> &ClusterConfig {
        self.cluster
    }

    /// Creates a fresh client batch with `home` as its origin. Latency is
    /// measured from `now`.
    pub fn new_batch(&mut self, home: ReplicaId) -> ClientBatch {
        let id = self.next_batch;
        self.next_batch += 1;
        ClientBatch {
            id: BatchId(id),
            origin: ClientId(u64::from(home.0)),
            digest: Digest::from_u64(splitmix64(id)),
            txns: self.cluster.batch_txns,
            txn_size: self.cluster.txn_size,
            created_at: self.now,
            payload: Vec::new(),
        }
    }

    /// Submits a fresh batch to replica `to` (first attempt).
    pub fn submit(&mut self, to: ReplicaId, batch: ClientBatch) {
        self.cmds.push(InjectCmd::Submit {
            to: to.0,
            batch,
            attempts: 0,
        });
    }

    /// Resends a timed-out batch to replica `to` with backoff level
    /// `attempts` (the client doubles its timeout per §5).
    pub fn resend(&mut self, to: ReplicaId, batch: ClientBatch, attempts: u32) {
        self.cmds.push(InjectCmd::Submit {
            to: to.0,
            batch,
            attempts,
        });
    }
}

/// The simulation's client population.
pub trait Driver {
    /// Called once at time zero to seed initial load.
    fn start(&mut self, inj: &mut Injector<'_>);

    /// A batch gathered `f + 1` informs; `latency` is end-to-end.
    fn batch_complete(
        &mut self,
        batch: &ClientBatch,
        latency: SimDuration,
        inj: &mut Injector<'_>,
    ) {
        let _ = (batch, latency, inj);
    }

    /// The client timer for a batch expired before completion.
    fn batch_timeout(&mut self, batch: &ClientBatch, attempts: u32, inj: &mut Injector<'_>) {
        let _ = (batch, attempts, inj);
    }
}

/// Closed-loop client population: keeps `per_replica` batches outstanding
/// at every replica; a completed batch is immediately replaced by a fresh
/// one at the same "home" replica, and a timed-out batch moves to the
/// next replica in id order (§5's retry rule).
#[derive(Clone, Debug)]
pub struct ClosedLoopDriver {
    /// Outstanding batches per replica ("client batches per primary").
    pub per_replica: u32,
}

impl ClosedLoopDriver {
    /// A driver keeping `per_replica` batches outstanding per replica.
    pub fn new(per_replica: u32) -> ClosedLoopDriver {
        ClosedLoopDriver { per_replica }
    }
}

impl Driver for ClosedLoopDriver {
    fn start(&mut self, inj: &mut Injector<'_>) {
        let n = inj.cluster().n;
        for r in 0..n {
            for _ in 0..self.per_replica {
                let batch = inj.new_batch(ReplicaId(r));
                inj.submit(ReplicaId(r), batch);
            }
        }
    }

    fn batch_complete(
        &mut self,
        batch: &ClientBatch,
        _latency: SimDuration,
        inj: &mut Injector<'_>,
    ) {
        // Refill the same home replica to hold occupancy constant.
        let home = ReplicaId(batch.origin.0 as u32);
        let fresh = inj.new_batch(home);
        inj.submit(home, fresh);
    }

    fn batch_timeout(&mut self, batch: &ClientBatch, attempts: u32, inj: &mut Injector<'_>) {
        // §5: resend to the next replica, doubling the timeout. The batch
        // keeps its original creation time so measured latency includes
        // the failed attempts.
        let n = inj.cluster().n;
        let next = ReplicaId((batch.origin.0 as u32 + attempts + 1) % n);
        inj.resend(next, batch.clone(), attempts + 1);
    }
}

/// A driver that injects nothing — for protocol-only unit tests where the
/// test itself submits batches through `Input::Request`.
#[derive(Clone, Copy, Debug, Default)]
pub struct IdleDriver;

impl Driver for IdleDriver {
    fn start(&mut self, _inj: &mut Injector<'_>) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use spotless_types::ClusterConfig;

    #[test]
    fn splitmix_decorrelates() {
        let a = splitmix64(0);
        let b = splitmix64(1);
        assert_ne!(a, b);
        assert_ne!(a & 0xffff, b & 0xffff);
    }

    #[test]
    fn closed_loop_seeds_w_batches_per_replica() {
        let cluster = ClusterConfig::new(4);
        let mut inj = Injector::new(SimTime::ZERO, &cluster, 0);
        ClosedLoopDriver::new(3).start(&mut inj);
        let (next, cmds) = inj.into_parts();
        assert_eq!(next, 12);
        assert_eq!(cmds.len(), 12);
    }

    #[test]
    fn batches_get_unique_ids_and_digests() {
        let cluster = ClusterConfig::new(4);
        let mut inj = Injector::new(SimTime::ZERO, &cluster, 0);
        let a = inj.new_batch(ReplicaId(0));
        let b = inj.new_batch(ReplicaId(0));
        assert_ne!(a.id, b.id);
        assert_ne!(a.digest, b.digest);
        assert_eq!(a.txns, cluster.batch_txns);
    }

    #[test]
    fn timeout_rotates_target_replica() {
        let cluster = ClusterConfig::new(4);
        let mut driver = ClosedLoopDriver::new(1);
        let mut inj = Injector::new(SimTime::ZERO, &cluster, 0);
        let batch = inj.new_batch(ReplicaId(2));
        driver.batch_timeout(&batch, 0, &mut inj);
        let (_, cmds) = inj.into_parts();
        match &cmds[0] {
            InjectCmd::Submit { to, attempts, .. } => {
                assert_eq!(*to, 3);
                assert_eq!(*attempts, 1);
            }
        }
    }
}
