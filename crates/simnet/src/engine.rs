//! The discrete-event simulation engine.
//!
//! The engine owns one sans-IO protocol node per replica and drives them
//! with `Deliver`/`Timer`/`Request` inputs in virtual-time order. Every
//! effect a node emits is charged against the resource model before it
//! takes effect:
//!
//! * a handler's outbound messages first pay the **sender CPU** cost of
//!   signing/MACing, then queue on the sender's **NIC** (serialization at
//!   the configured bandwidth), then cross the **link** (region latency ±
//!   jitter), then pay the **receiver CPU** authentication cost before the
//!   receiving handler runs;
//! * a `commit` enters the replica's sequential **execution lane**
//!   (340 ktxn/s, §6.1) and produces a client reply (`Inform`) whose
//!   bandwidth is charged before it reaches the client sink;
//! * the **client sink** declares a batch complete when `f + 1` replicas
//!   have informed it (§5) and reports the end-to-end latency.
//!
//! Event ordering is a strict total order on `(virtual time, sequence
//! number)`, and all randomness (jitter, drops) comes from one seeded
//! ChaCha stream, so every simulation is exactly reproducible from its
//! seed.

use crate::driver::{Driver, InjectCmd, Injector};
use crate::metrics::Metrics;
use crate::resources::{Cpu, ExecLane, Nic};
use crate::topology::Topology;
use rand::{Rng as _, SeedableRng as _};
use rand_chacha::ChaCha12Rng;
use spotless_types::node::ProtocolMessage;
use spotless_types::{
    BatchId, ClientBatch, ClusterConfig, CommitInfo, Context, Input, Node, NodeId, ReplicaId,
    ResourceModel, SimDuration, SimTime, TimerId,
};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};
use std::sync::Arc;

/// Simulation parameters beyond the cluster configuration.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Consensus cluster shape and protocol timeouts.
    pub cluster: ClusterConfig,
    /// Per-replica hardware model.
    pub resources: ResourceModel,
    /// Link topology.
    pub topology: Topology,
    /// Independent per-message drop probability (unreliable communication).
    pub drop_rate: f64,
    /// RNG seed; equal seeds give bit-identical runs.
    pub seed: u64,
    /// Per-replica crash times (`Some(t)` ⇒ silent from `t` on). Used for
    /// the A1/non-responsive experiments and the Figure 12 timeline.
    pub crash_at: Vec<Option<SimTime>>,
    /// Warm-up excluded from measurement (paper: first 10 s of 130 s).
    pub warmup: SimDuration,
    /// Measured duration after warm-up (paper: 120 s).
    pub duration: SimDuration,
    /// Timeline bucket width (paper: 5 s in Figure 12).
    pub timeline_bucket: SimDuration,
    /// Hard event-count ceiling; the run stops early if exceeded.
    pub max_events: u64,
    /// Record every [`CommitInfo`] per replica, readable after the run
    /// via [`Simulation::commit_log`]. Off by default: the benchmarks
    /// run millions of commits and only need the counters.
    pub record_commits: bool,
}

impl SimConfig {
    /// Defaults mirroring the paper's setup, scaled to a laptop run:
    /// 0.5 s warm-up, 2 s measured.
    pub fn new(cluster: ClusterConfig) -> SimConfig {
        let n = cluster.n;
        SimConfig {
            cluster,
            resources: ResourceModel::default(),
            topology: Topology::lan(n),
            drop_rate: 0.0,
            seed: 0xC0FFEE,
            crash_at: vec![None; n as usize],
            warmup: SimDuration::from_millis(500),
            duration: SimDuration::from_secs(2),
            timeline_bucket: SimDuration::from_secs(5),
            max_events: u64::MAX,
            record_commits: false,
        }
    }

    /// Marks `count` replicas as crashed from the start (the paper's
    /// non-responsive-failures setup). Crashing the *last* `count` ids
    /// leaves replica 0 honest, matching the paper's description of
    /// keeping measured clients attached to live replicas.
    pub fn with_crashed(mut self, count: u32) -> SimConfig {
        let n = self.cluster.n;
        for i in 0..count.min(n) {
            self.crash_at[(n - 1 - i) as usize] = Some(SimTime::ZERO);
        }
        self
    }
}

/// Summary of one finished run.
#[derive(Clone, Debug)]
pub struct SimReport {
    /// Client-observed throughput, transactions per second.
    pub throughput_tps: f64,
    /// Mean end-to-end client latency, seconds.
    pub avg_latency_s: f64,
    /// Median latency, seconds.
    pub p50_latency_s: f64,
    /// 99th-percentile latency, seconds.
    pub p99_latency_s: f64,
    /// Batches completed inside the measurement window.
    pub batches: u64,
    /// Transactions completed inside the measurement window.
    pub txns: u64,
    /// Replica-to-replica messages per completed batch.
    pub msgs_per_decision: f64,
    /// Total replica-to-replica messages (whole run).
    pub protocol_msgs: u64,
    /// Total replica-to-replica bytes (whole run).
    pub protocol_bytes: u64,
    /// Committed slots observed across all replicas (incl. no-ops).
    pub commits_observed: u64,
    /// Throughput timeline as (bucket start s, txn/s).
    pub timeline: Vec<(f64, f64)>,
    /// Events processed (simulator health diagnostic).
    pub events: u64,
}

enum EventKind<M> {
    /// A protocol message finished crossing the wire; charge receiver CPU.
    ///
    /// Messages ride the queue behind an `Arc`: a broadcast to `n − 1`
    /// destinations shares one materialized message, and the deep clone
    /// (needed because `Input::Deliver` hands the handler an owned
    /// value) happens only at delivery — never for copies that are
    /// dropped, blocked, or lost on the wire. Costs stay per
    /// destination: every copy still pays NIC serialization, link
    /// latency, and receiver CPU individually.
    WireArrival { to: u32, from: NodeId, msg: Arc<M> },
    /// Receiver CPU done; run the protocol handler.
    HandleMsg { to: u32, from: NodeId, msg: Arc<M> },
    /// A client batch reached the replica's NIC; charge verification.
    RequestArrival { to: u32, batch: ClientBatch },
    /// Request verified; hand to the protocol.
    HandleRequest { to: u32, batch: ClientBatch },
    /// A timer armed by the node fires.
    Timer { node: u32, id: TimerId },
    /// An executed batch's reply reached the client sink.
    InformArrival { from: u32, batch: ClientBatch },
    /// The client's response timer for a batch expired.
    ClientTimeout {
        id: BatchId,
        batch: ClientBatch,
        attempts: u32,
    },
}

struct Event<M> {
    at: SimTime,
    seq: u64,
    kind: EventKind<M>,
}

impl<M> PartialEq for Event<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Event<M> {}
impl<M> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Event<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse for earliest-first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// Buffered effect collector handed to protocol handlers.
struct SimCtx<M> {
    now: SimTime,
    me: NodeId,
    sends: Vec<(NodeId, M)>,
    broadcasts: Vec<M>,
    timers: Vec<(TimerId, SimDuration)>,
    commits: Vec<CommitInfo>,
}

impl<M> SimCtx<M> {
    fn new() -> SimCtx<M> {
        SimCtx {
            now: SimTime::ZERO,
            me: NodeId::Replica(ReplicaId(0)),
            sends: Vec::new(),
            broadcasts: Vec::new(),
            timers: Vec::new(),
            commits: Vec::new(),
        }
    }

    fn reset(&mut self, now: SimTime, me: NodeId) {
        self.now = now;
        self.me = me;
        self.sends.clear();
        self.broadcasts.clear();
        self.timers.clear();
        self.commits.clear();
    }
}

impl<M> Context for SimCtx<M> {
    type Message = M;

    fn now(&self) -> SimTime {
        self.now
    }

    fn id(&self) -> NodeId {
        self.me
    }

    fn send(&mut self, to: NodeId, msg: M) {
        self.sends.push((to, msg));
    }

    fn broadcast(&mut self, msg: M) {
        self.broadcasts.push(msg);
    }

    fn set_timer(&mut self, id: TimerId, after: SimDuration) {
        self.timers.push((id, after));
    }

    fn commit(&mut self, info: CommitInfo) {
        self.commits.push(info);
    }
}

struct SinkEntry {
    informs: u32,
    done: bool,
}

/// One deterministic simulation of a cluster running protocol `N` under
/// load generated by driver `D`.
pub struct Simulation<N: Node, D: Driver> {
    cfg: SimConfig,
    nodes: Vec<N>,
    driver: D,
    queue: BinaryHeap<Event<N::Message>>,
    seq: u64,
    now: SimTime,
    nics: Vec<Nic>,
    cpus: Vec<Cpu>,
    execs: Vec<ExecLane>,
    rng: ChaCha12Rng,
    metrics: Metrics,
    sink: HashMap<BatchId, SinkEntry>,
    next_batch: u64,
    events_processed: u64,
    ctx: SimCtx<N::Message>,
    commit_logs: Vec<Vec<CommitInfo>>,
}

impl<N: Node, D: Driver> Simulation<N, D> {
    /// Builds a simulation over `nodes` (one per replica, index = id).
    pub fn new(cfg: SimConfig, nodes: Vec<N>, driver: D) -> Simulation<N, D> {
        assert_eq!(
            nodes.len(),
            cfg.cluster.n as usize,
            "need exactly one node per replica"
        );
        assert_eq!(cfg.crash_at.len(), cfg.cluster.n as usize);
        let n = nodes.len();
        let warmup_end = SimTime::ZERO + cfg.warmup;
        Simulation {
            nics: vec![Nic::new(); n],
            cpus: vec![Cpu::new(cfg.resources.cores); n],
            execs: vec![ExecLane::new(); n],
            rng: ChaCha12Rng::seed_from_u64(cfg.seed),
            metrics: Metrics::new(warmup_end, cfg.timeline_bucket),
            sink: HashMap::new(),
            next_batch: 0,
            events_processed: 0,
            queue: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
            ctx: SimCtx::new(),
            commit_logs: vec![Vec::new(); n],
            cfg,
            nodes,
            driver,
        }
    }

    /// Access to the collected metrics (e.g. after `run`).
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Read access to a node (post-run inspection in tests/diagnostics).
    pub fn node(&self, i: u32) -> &N {
        &self.nodes[i as usize]
    }

    /// The ordered commit sequence replica `i` produced. Empty unless
    /// [`SimConfig::record_commits`] was set.
    pub fn commit_log(&self, i: u32) -> &[CommitInfo] {
        &self.commit_logs[i as usize]
    }

    /// Runs the simulation to `warmup + duration` and summarizes.
    pub fn run(&mut self) -> SimReport {
        let end = SimTime::ZERO + self.cfg.warmup + self.cfg.duration;
        // Seed client load.
        self.drive(|driver, inj| driver.start(inj));
        // Start every (non-crashed) node.
        for i in 0..self.nodes.len() {
            if !self.crashed(i as u32, SimTime::ZERO) {
                self.deliver_input(i as u32, Input::Start, SimTime::ZERO);
            }
        }
        while let Some(ev) = self.queue.pop() {
            if ev.at > end || self.events_processed >= self.cfg.max_events {
                break;
            }
            self.now = ev.at;
            self.events_processed += 1;
            self.process(ev);
        }
        self.metrics.finish(end);
        self.report()
    }

    fn report(&self) -> SimReport {
        SimReport {
            throughput_tps: self.metrics.throughput_tps(),
            avg_latency_s: self.metrics.avg_latency_s(),
            p50_latency_s: self.metrics.latency_percentile_s(50.0),
            p99_latency_s: self.metrics.latency_percentile_s(99.0),
            batches: self.metrics.batches(),
            txns: self.metrics.txns(),
            msgs_per_decision: self.metrics.msgs_per_decision(),
            protocol_msgs: self.metrics.protocol_msgs,
            protocol_bytes: self.metrics.protocol_bytes,
            commits_observed: self.metrics.commits_observed,
            timeline: self.metrics.timeline_tps(),
            events: self.events_processed,
        }
    }

    fn crashed(&self, node: u32, at: SimTime) -> bool {
        self.cfg.crash_at[node as usize].is_some_and(|c| at >= c)
    }

    fn push(&mut self, at: SimTime, kind: EventKind<N::Message>) {
        self.seq += 1;
        self.queue.push(Event {
            at,
            seq: self.seq,
            kind,
        });
    }

    /// Runs a driver callback with an [`Injector`] and applies the
    /// resulting injections.
    fn drive(&mut self, f: impl FnOnce(&mut D, &mut Injector<'_>)) {
        let mut inj = Injector::new(self.now, &self.cfg.cluster, self.next_batch);
        f(&mut self.driver, &mut inj);
        let (next_batch, cmds) = inj.into_parts();
        self.next_batch = next_batch;
        for cmd in cmds {
            let InjectCmd::Submit {
                to,
                batch,
                attempts,
            } = cmd;
            // Request travels client → replica over one link.
            let arrive = self.now + self.link_jitter(self.cfg.topology.client_latency(to as usize));
            self.push(
                arrive,
                EventKind::RequestArrival {
                    to,
                    batch: batch.clone(),
                },
            );
            // Client response timer, doubling per retry (§5).
            let backoff = self
                .cfg
                .cluster
                .client_timeout
                .saturating_mul(1u64 << attempts.min(16));
            self.push(
                self.now + backoff,
                EventKind::ClientTimeout {
                    id: batch.id,
                    batch,
                    attempts,
                },
            );
        }
    }

    fn link_jitter(&mut self, base: SimDuration) -> SimDuration {
        let j = self.cfg.topology.jitter;
        if j <= 0.0 || base == SimDuration::ZERO {
            return base;
        }
        let factor = 1.0 + j * (self.rng.random::<f64>() * 2.0 - 1.0);
        SimDuration::from_nanos((base.as_nanos() as f64 * factor).max(0.0) as u64)
    }

    fn process(&mut self, ev: Event<N::Message>) {
        match ev.kind {
            EventKind::WireArrival { to, from, msg } => {
                if self.crashed(to, self.now) {
                    return;
                }
                let cost =
                    self.cfg.resources.handle_ns + msg.verify_cost(&self.cfg.resources.crypto);
                let done = self.cpus[to as usize].schedule(self.now, cost);
                self.push(done, EventKind::HandleMsg { to, from, msg });
            }
            EventKind::HandleMsg { to, from, msg } => {
                // The last copy in flight is moved out of the Arc for
                // free; earlier copies (other destinations still queued)
                // clone here, at delivery, and nowhere else.
                let msg = Arc::try_unwrap(msg).unwrap_or_else(|shared| (*shared).clone());
                self.deliver_input(to, Input::Deliver { from, msg }, self.now);
            }
            EventKind::RequestArrival { to, batch } => {
                if self.crashed(to, self.now) {
                    return;
                }
                // One signature verification per client batch plus handling.
                let cost = self.cfg.resources.handle_ns + self.cfg.resources.crypto.verify_ns;
                let done = self.cpus[to as usize].schedule(self.now, cost);
                self.push(done, EventKind::HandleRequest { to, batch });
            }
            EventKind::HandleRequest { to, batch } => {
                self.deliver_input(to, Input::Request(batch), self.now);
            }
            EventKind::Timer { node, id } => {
                self.deliver_input(node, Input::Timer(id), self.now);
            }
            EventKind::InformArrival { from, batch } => {
                let _ = from;
                let quorum = self.cfg.cluster.weak_quorum();
                let entry = self.sink.entry(batch.id).or_insert(SinkEntry {
                    informs: 0,
                    done: false,
                });
                entry.informs += 1;
                if !entry.done && entry.informs >= quorum {
                    entry.done = true;
                    let latency = self.now.since(batch.created_at);
                    self.metrics.batch_complete(self.now, batch.txns, latency);
                    self.drive(|driver, inj| driver.batch_complete(&batch, latency, inj));
                }
            }
            EventKind::ClientTimeout {
                id,
                batch,
                attempts,
            } => {
                let done = self.sink.get(&id).is_some_and(|e| e.done);
                if !done {
                    self.drive(|driver, inj| driver.batch_timeout(&batch, attempts, inj));
                }
            }
        }
    }

    /// Runs the protocol handler for one input and charges its effects.
    fn deliver_input(&mut self, node: u32, input: Input<N::Message>, at: SimTime) {
        if self.crashed(node, at) {
            return;
        }
        let me = NodeId::Replica(ReplicaId(node));
        let mut ctx = std::mem::replace(&mut self.ctx, SimCtx::new());
        ctx.reset(at, me);
        self.nodes[node as usize].on_input(input, &mut ctx);
        self.apply_effects(node, &mut ctx);
        self.ctx = ctx;
    }

    fn apply_effects(&mut self, node: u32, ctx: &mut SimCtx<N::Message>) {
        let t_h = ctx.now;
        // Timers are armed relative to the handler's own time.
        for (id, after) in ctx.timers.drain(..) {
            self.push(t_h + after, EventKind::Timer { node, id });
        }
        // Commits enter the execution lane and produce client replies.
        for info in ctx.commits.drain(..) {
            self.metrics.commits_observed += 1;
            if self.cfg.record_commits {
                self.commit_logs[node as usize].push(info.clone());
            }
            if info.batch.is_noop() {
                continue;
            }
            let exec_done =
                self.execs[node as usize].execute(t_h, info.batch.txns, &self.cfg.resources);
            let reply_bytes = self.cfg.resources.sizes.reply(info.batch.txns);
            let wire_done =
                self.nics[node as usize].transmit(exec_done, reply_bytes, &self.cfg.resources);
            self.metrics.replies_sent += 1;
            let arrive =
                wire_done + self.link_jitter(self.cfg.topology.client_latency(node as usize));
            self.push(
                arrive,
                EventKind::InformArrival {
                    from: node,
                    batch: info.batch,
                },
            );
        }
        // Outbound messages: first the sender-side crypto (one signature
        // per message, one MAC per copy), then per-copy NIC + link.
        let n = self.cfg.cluster.n;
        let crypto = self.cfg.resources.crypto;
        let mut crypto_ns = 0u64;
        for (_, msg) in &ctx.sends {
            crypto_ns += msg.sign_cost(&crypto) + crypto.mac_ns;
        }
        for msg in &ctx.broadcasts {
            crypto_ns += msg.sign_cost(&crypto) + crypto.mac_ns * u64::from(n - 1);
        }
        let t_send = if crypto_ns > 0 {
            self.cpus[node as usize].schedule(t_h, crypto_ns)
        } else {
            t_h
        };
        let sends = std::mem::take(&mut ctx.sends);
        for (to, msg) in sends {
            match to {
                NodeId::Replica(r) => self.transmit_to(node, r.0, Arc::new(msg), t_send),
                NodeId::Client(_) => {
                    // Replies to clients are modelled through `commit`;
                    // explicit client sends are ignored under simulation.
                }
            }
        }
        let broadcasts = std::mem::take(&mut ctx.broadcasts);
        for msg in broadcasts {
            // One shared representation for all n destinations; each
            // copy is still charged NIC/link/CPU costs individually in
            // `transmit_to`.
            let msg = Arc::new(msg);
            // Self-delivery is a free local loopback (Remark 3.1).
            self.push(
                t_h,
                EventKind::HandleMsg {
                    to: node,
                    from: NodeId::Replica(ReplicaId(node)),
                    msg: msg.clone(),
                },
            );
            for dest in 0..n {
                if dest != node {
                    self.transmit_to(node, dest, msg.clone(), t_send);
                }
            }
        }
    }

    fn transmit_to(&mut self, from: u32, to: u32, msg: Arc<N::Message>, ready: SimTime) {
        let bytes = msg.wire_size(&self.cfg.resources.sizes);
        // The NIC is occupied whether or not the message is later lost.
        let wire_done = self.nics[from as usize].transmit(ready, bytes, &self.cfg.resources);
        self.metrics.protocol_send(bytes);
        if self.cfg.topology.blocked(from as usize, to as usize, ready) {
            return;
        }
        if self.cfg.drop_rate > 0.0 && self.rng.random::<f64>() < self.cfg.drop_rate {
            return;
        }
        let latency = self.link_jitter(self.cfg.topology.base_latency(from as usize, to as usize));
        self.push(
            wire_done + latency,
            EventKind::WireArrival {
                to,
                from: NodeId::Replica(ReplicaId(from)),
                msg,
            },
        );
    }
}
