//! Deterministic discrete-event simulator for BFT consensus evaluation.
//!
//! This crate is the reproduction's substitute for the paper's Oracle
//! Cloud testbed (see DESIGN.md §2). It simulates, at per-message
//! granularity, the three resources the paper's evaluation stresses —
//! NIC bandwidth, CPU cores (including cryptographic verification), and
//! the sequential execution lane — plus region-level link latencies,
//! message drops, partitions, and replica crashes. All five protocols in
//! the workspace run unmodified on top of it through the sans-IO
//! [`spotless_types::Node`] interface.
//!
//! Determinism: a run is a pure function of its [`engine::SimConfig`]
//! (including the seed). Every experiment in EXPERIMENTS.md records its
//! seed, so every number in that file can be regenerated exactly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod driver;
pub mod engine;
pub mod metrics;
pub mod resources;
pub mod topology;

pub use driver::{ClosedLoopDriver, Driver, IdleDriver, Injector};
pub use engine::{SimConfig, SimReport, Simulation};
pub use metrics::Metrics;
pub use topology::{Partition, Topology};
