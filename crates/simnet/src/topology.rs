//! Network topology: regions, link latencies, partitions.
//!
//! The paper's deployments are (a) single-region Oracle Cloud clusters and
//! (b) the global-regions experiment of Figure 14(c,d) spreading 128
//! replicas over Oregon, North Virginia, London, and Zurich. We model
//! links as a one-way base latency per region pair plus deterministic
//! seeded jitter. Partitions make pairs of groups mutually unreachable
//! during an interval — used by the liveness/recovery tests.

use spotless_types::{SimDuration, SimTime};

/// The four cloud regions of the global-regions experiment, in the order
/// the paper lists them.
pub const REGION_NAMES: [&str; 4] = ["oregon", "n-virginia", "london", "zurich"];

/// One-way latencies in microseconds between the four regions
/// (approximately half the public inter-region RTTs).
const REGION_LATENCY_US: [[u64; 4]; 4] = [
    // oregon  n-va   london  zurich
    [250, 16_000, 34_000, 37_000], // oregon
    [16_000, 250, 19_000, 22_000], // n-virginia
    [34_000, 19_000, 250, 4_000],  // london
    [37_000, 22_000, 4_000, 250],  // zurich
];

/// A communication-blocking partition: nodes in different groups cannot
/// exchange messages while the partition is active.
#[derive(Clone, Debug)]
pub struct Partition {
    /// When the partition starts.
    pub start: SimTime,
    /// When communication heals.
    pub end: SimTime,
    /// Group index of every replica (same group ⇒ still connected).
    pub group_of: Vec<u8>,
}

impl Partition {
    /// True iff `a → b` is blocked at time `t`.
    pub fn blocks(&self, a: usize, b: usize, t: SimTime) -> bool {
        t >= self.start
            && t < self.end
            && self.group_of.get(a).copied() != self.group_of.get(b).copied()
    }
}

/// Cluster topology: which region every replica sits in.
#[derive(Clone, Debug)]
pub struct Topology {
    region_of: Vec<u8>,
    /// Relative jitter applied to each link delay, e.g. 0.05 ⇒ ±5 %.
    pub jitter: f64,
    /// Active partitions (usually empty; set by fault-injection tests).
    pub partitions: Vec<Partition>,
}

impl Topology {
    /// A single-region (LAN) cluster of `n` replicas — the default setup
    /// of every experiment except Figure 14(c,d).
    pub fn lan(n: u32) -> Topology {
        Topology {
            region_of: vec![0; n as usize],
            jitter: 0.05,
            partitions: Vec::new(),
        }
    }

    /// `n` replicas distributed uniformly (round-robin) over the first
    /// `regions` of the paper's four regions (Figure 14(c,d)).
    pub fn global(n: u32, regions: u32) -> Topology {
        assert!((1..=4).contains(&regions), "1..=4 regions supported");
        Topology {
            region_of: (0..n).map(|i| (i % regions) as u8).collect(),
            jitter: 0.05,
            partitions: Vec::new(),
        }
    }

    /// Number of replicas.
    pub fn len(&self) -> usize {
        self.region_of.len()
    }

    /// True iff the topology is empty (never in practice).
    pub fn is_empty(&self) -> bool {
        self.region_of.is_empty()
    }

    /// The region index of replica `i`.
    pub fn region(&self, i: usize) -> u8 {
        self.region_of[i]
    }

    /// One-way base latency between replicas `a` and `b` (excluding
    /// jitter). Loopback is zero.
    pub fn base_latency(&self, a: usize, b: usize) -> SimDuration {
        if a == b {
            return SimDuration::ZERO;
        }
        let ra = self.region_of[a] as usize;
        let rb = self.region_of[b] as usize;
        SimDuration::from_micros(REGION_LATENCY_US[ra][rb])
    }

    /// One-way latency from replica `a` to the (region-0) client sink.
    pub fn client_latency(&self, a: usize) -> SimDuration {
        let ra = self.region_of[a] as usize;
        SimDuration::from_micros(REGION_LATENCY_US[ra][0].max(250))
    }

    /// True iff `a → b` is blocked by an active partition at `t`.
    pub fn blocked(&self, a: usize, b: usize, t: SimTime) -> bool {
        self.partitions.iter().any(|p| p.blocks(a, b, t))
    }

    /// The largest base one-way latency between any two replicas — the
    /// quantity protocol timeouts must be calibrated against (§6.3:
    /// "based on the calculated average view duration, we have set the
    /// timeout length appropriately").
    pub fn max_one_way_latency(&self) -> SimDuration {
        let n = self.region_of.len();
        let mut max = SimDuration::ZERO;
        for a in 0..n {
            for b in (a + 1)..n {
                max = max.max(self.base_latency(a, b));
            }
        }
        max
    }

    /// Adds a partition splitting the replicas whose ids are in `minority`
    /// from everyone else during `[start, end)`.
    pub fn partition_off(&mut self, minority: &[u32], start: SimTime, end: SimTime) {
        let mut group_of = vec![0u8; self.len()];
        for &m in minority {
            group_of[m as usize] = 1;
        }
        self.partitions.push(Partition {
            start,
            end,
            group_of,
        });
    }
}

#[cfg(test)]
mod tests_latency {
    use super::*;

    #[test]
    fn lan_max_one_way_is_intra_region() {
        let t = Topology::lan(8);
        assert_eq!(t.max_one_way_latency(), SimDuration::from_micros(250));
    }

    #[test]
    fn global_max_one_way_grows_with_regions() {
        let two = Topology::global(16, 2).max_one_way_latency();
        let three = Topology::global(16, 3).max_one_way_latency();
        let four = Topology::global(16, 4).max_one_way_latency();
        assert_eq!(two, SimDuration::from_micros(16_000)); // Oregon-N.Va
        assert_eq!(three, SimDuration::from_micros(34_000)); // Oregon-London
        assert_eq!(four, SimDuration::from_micros(37_000)); // Oregon-Zurich
        assert!(two < three && three < four);
    }

    #[test]
    fn single_replica_topology_has_zero_spread() {
        let t = Topology::global(1, 1);
        assert_eq!(t.max_one_way_latency(), SimDuration::ZERO);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lan_latency_is_sub_millisecond_and_symmetric() {
        let t = Topology::lan(8);
        let d = t.base_latency(0, 5);
        assert_eq!(d, SimDuration::from_micros(250));
        assert_eq!(t.base_latency(5, 0), d);
        assert_eq!(t.base_latency(3, 3), SimDuration::ZERO);
    }

    #[test]
    fn global_topology_spreads_round_robin() {
        let t = Topology::global(8, 4);
        assert_eq!(t.region(0), 0);
        assert_eq!(t.region(1), 1);
        assert_eq!(t.region(5), 1);
        // Oregon ↔ Zurich is the longest link.
        assert!(t.base_latency(0, 3) > t.base_latency(2, 3));
    }

    #[test]
    fn more_regions_increase_average_latency() {
        let avg = |t: &Topology| -> f64 {
            let n = t.len();
            let mut total = 0u64;
            for a in 0..n {
                for b in 0..n {
                    total += t.base_latency(a, b).as_nanos();
                }
            }
            total as f64 / (n * n) as f64
        };
        let one = avg(&Topology::global(16, 1));
        let two = avg(&Topology::global(16, 2));
        let four = avg(&Topology::global(16, 4));
        assert!(one < two && two < four, "{one} {two} {four}");
    }

    #[test]
    fn partitions_block_cross_group_only_during_window() {
        let mut t = Topology::lan(4);
        t.partition_off(&[3], SimTime(100), SimTime(200));
        assert!(!t.blocked(0, 3, SimTime(50)));
        assert!(t.blocked(0, 3, SimTime(150)));
        assert!(t.blocked(3, 0, SimTime(150)));
        assert!(!t.blocked(0, 1, SimTime(150)));
        assert!(!t.blocked(0, 3, SimTime(200)));
    }
}
