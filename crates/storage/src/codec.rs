//! A small, explicit binary codec for on-disk records.
//!
//! The log and snapshot formats are hand-rolled rather than piped through
//! a serde backend so that (a) the byte layout is pinned — a durable
//! format must not drift with a dependency upgrade — and (b) decoding is
//! fail-closed: every read is length-checked and every error names the
//! field that was being read, which turns fuzzed/corrupted input into a
//! diagnosable [`CodecError`] instead of a panic or a silently wrong
//! value.
//!
//! All integers are little-endian. Variable-length data is prefixed with
//! a `u32` length. There is no implicit versioning here — the containers
//! ([`crate::segment`], [`crate::snapshot`]) version their headers.

use spotless_ledger::{Block, CommitProof};
use spotless_types::{
    BatchId, CertPhase, Digest, InstanceId, ReplicaId, Signature, View, SIGNATURE_LEN,
};
use std::fmt;

/// Decoding failure: what was being read, and why it could not be.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CodecError {
    /// The field under decode when the failure occurred.
    pub field: &'static str,
    /// What went wrong.
    pub kind: CodecErrorKind,
}

/// The ways a decode can fail.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CodecErrorKind {
    /// Fewer bytes remained than the field requires.
    UnexpectedEof {
        /// Bytes the field needed.
        needed: usize,
        /// Bytes that remained.
        remaining: usize,
    },
    /// A length prefix exceeded the sanity bound for its field.
    LengthOutOfRange {
        /// The decoded length.
        got: u64,
        /// The maximum the field admits.
        max: u64,
    },
    /// Trailing bytes remained after the value was fully decoded.
    TrailingBytes {
        /// How many bytes were left over.
        count: usize,
    },
    /// A discriminant byte held a value outside the field's enum.
    InvalidDiscriminant {
        /// The byte found.
        got: u8,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            CodecErrorKind::UnexpectedEof { needed, remaining } => write!(
                f,
                "decoding {}: needed {needed} bytes, {remaining} remain",
                self.field
            ),
            CodecErrorKind::LengthOutOfRange { got, max } => write!(
                f,
                "decoding {}: length {got} exceeds bound {max}",
                self.field
            ),
            CodecErrorKind::TrailingBytes { count } => {
                write!(f, "decoding {}: {count} trailing bytes", self.field)
            }
            CodecErrorKind::InvalidDiscriminant { got } => {
                write!(f, "decoding {}: invalid discriminant {got}", self.field)
            }
        }
    }
}

impl std::error::Error for CodecError {}

/// Sanity bound on signer-list length: no cluster in this workspace
/// exceeds a few hundred replicas, so a larger prefix is corruption,
/// not data — reject it before allocating.
const MAX_SIGNERS: u64 = 4096;

/// Append-only byte writer with field helpers.
#[derive(Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// A writer with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> Writer {
        Writer {
            buf: Vec::with_capacity(cap),
        }
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends a `u8`.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a 32-byte digest.
    pub fn digest(&mut self, d: &Digest) {
        self.buf.extend_from_slice(&d.0);
    }

    /// Appends raw bytes with a `u32` length prefix.
    pub fn bytes(&mut self, data: &[u8]) {
        self.u32(u32::try_from(data.len()).expect("record payloads fit in u32"));
        self.buf.extend_from_slice(data);
    }
}

/// Cursor-based reader over an encoded byte slice.
pub struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over `data`.
    pub fn new(data: &'a [u8]) -> Reader<'a> {
        Reader { data, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn take(&mut self, n: usize, field: &'static str) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError {
                field,
                kind: CodecErrorKind::UnexpectedEof {
                    needed: n,
                    remaining: self.remaining(),
                },
            });
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads a `u8`.
    pub fn u8(&mut self, field: &'static str) -> Result<u8, CodecError> {
        Ok(self.take(1, field)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self, field: &'static str) -> Result<u32, CodecError> {
        let s = self.take(4, field)?;
        Ok(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self, field: &'static str) -> Result<u64, CodecError> {
        let s = self.take(8, field)?;
        Ok(u64::from_le_bytes([
            s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7],
        ]))
    }

    /// Reads a 32-byte digest.
    pub fn digest(&mut self, field: &'static str) -> Result<Digest, CodecError> {
        let s = self.take(32, field)?;
        let mut d = [0u8; 32];
        d.copy_from_slice(s);
        Ok(Digest(d))
    }

    /// Reads a `u32`-length-prefixed byte string.
    pub fn bytes(&mut self, field: &'static str) -> Result<&'a [u8], CodecError> {
        let len = self.u32(field)? as usize;
        self.take(len, field)
    }

    /// Asserts the value consumed the whole input.
    pub fn finish(self, field: &'static str) -> Result<(), CodecError> {
        if self.remaining() != 0 {
            return Err(CodecError {
                field,
                kind: CodecErrorKind::TrailingBytes {
                    count: self.remaining(),
                },
            });
        }
        Ok(())
    }
}

/// Encodes a ledger block **plus its batch payload** as a log record.
/// The log persists payloads so a restarted replica can re-execute its
/// chain tail (and serve it to peers) without depending on anyone
/// else's memory; the payload is *not* part of the block's hash — the
/// block already binds it through `batch_digest`.
pub fn encode_block_with_payload(b: &Block, payload: &[u8]) -> Vec<u8> {
    let mut out = encode_block(b);
    out.extend_from_slice(
        &u32::try_from(payload.len())
            .expect("payload fits u32")
            .to_le_bytes(),
    );
    out.extend_from_slice(payload);
    out
}

/// Decodes a log record back into a block and its batch payload.
pub fn decode_block_with_payload(data: &[u8]) -> Result<(Block, Vec<u8>), CodecError> {
    let mut r = Reader::new(data);
    let block = decode_block_fields(&mut r)?;
    let payload = r.bytes("block.payload")?.to_vec();
    r.finish("block")?;
    Ok((block, payload))
}

/// Encodes a ledger block as a log-record payload (header v4: the
/// post-execution `state_root` sits between `txns` and the proof, and
/// the proof carries the voted digest, slot, and one 64-byte Ed25519
/// signature per signer — the signer count prefixes both parallel
/// lists, so an unparallel pair cannot even be represented on disk).
pub fn encode_block(b: &Block) -> Vec<u8> {
    let mut w = Writer::with_capacity(200 + 68 * b.proof.signers.len());
    w.u64(b.height);
    w.digest(&b.parent);
    w.digest(&b.batch_digest);
    w.u64(b.batch_id.0);
    w.u32(b.txns);
    w.digest(&b.state_root);
    w.u32(b.proof.instance.0);
    w.u64(b.proof.view.0);
    w.u8(match b.proof.phase {
        CertPhase::Strong => 0,
        CertPhase::Weak => 1,
    });
    w.digest(&b.proof.voted);
    w.u64(b.proof.slot);
    w.u32(b.proof.signers.len() as u32);
    for s in &b.proof.signers {
        w.u32(s.0);
    }
    for sig in &b.proof.sigs {
        w.buf.extend_from_slice(&sig.0);
    }
    w.digest(&b.hash);
    w.into_bytes()
}

/// Decodes a payload-less block record (the snapshot head-block form).
///
/// This checks structure only; chain linkage and hash correctness are
/// verified by the recovery path re-running [`spotless_ledger::Ledger`]
/// verification over the decoded blocks.
pub fn decode_block(data: &[u8]) -> Result<Block, CodecError> {
    let mut r = Reader::new(data);
    let block = decode_block_fields(&mut r)?;
    r.finish("block")?;
    Ok(block)
}

fn decode_block_fields(r: &mut Reader<'_>) -> Result<Block, CodecError> {
    let height = r.u64("block.height")?;
    let parent = r.digest("block.parent")?;
    let batch_digest = r.digest("block.batch_digest")?;
    let batch_id = BatchId(r.u64("block.batch_id")?);
    let txns = r.u32("block.txns")?;
    let state_root = r.digest("block.state_root")?;
    let instance = InstanceId(r.u32("block.proof.instance")?);
    let view = View(r.u64("block.proof.view")?);
    let phase = match r.u8("block.proof.phase")? {
        0 => CertPhase::Strong,
        1 => CertPhase::Weak,
        got => {
            return Err(CodecError {
                field: "block.proof.phase",
                kind: CodecErrorKind::InvalidDiscriminant { got },
            })
        }
    };
    let voted = r.digest("block.proof.voted")?;
    let slot = r.u64("block.proof.slot")?;
    let n_signers = u64::from(r.u32("block.proof.signers.len")?);
    if n_signers > MAX_SIGNERS {
        return Err(CodecError {
            field: "block.proof.signers.len",
            kind: CodecErrorKind::LengthOutOfRange {
                got: n_signers,
                max: MAX_SIGNERS,
            },
        });
    }
    let mut signers = Vec::with_capacity(n_signers as usize);
    for _ in 0..n_signers {
        signers.push(ReplicaId(r.u32("block.proof.signers[]")?));
    }
    // One signature per signer, by construction of the format (a single
    // count prefixes both lists).
    let mut sigs = Vec::with_capacity(n_signers as usize);
    for _ in 0..n_signers {
        let raw = r.take(SIGNATURE_LEN, "block.proof.sigs[]")?;
        let mut sig = [0u8; SIGNATURE_LEN];
        sig.copy_from_slice(raw);
        sigs.push(Signature(sig));
    }
    let hash = r.digest("block.hash")?;
    Ok(Block {
        height,
        parent,
        batch_digest,
        batch_id,
        txns,
        state_root,
        proof: CommitProof {
            instance,
            view,
            phase,
            voted,
            slot,
            signers,
            sigs,
        },
        hash,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_block(height: u64, signers: usize) -> Block {
        Block {
            height,
            parent: Digest::from_u64(height.wrapping_sub(1)),
            batch_digest: Digest::from_u64(height * 7),
            batch_id: BatchId(height * 3),
            txns: 100,
            state_root: Digest::from_u64(height * 17 + 1),
            proof: CommitProof {
                instance: InstanceId(2),
                view: View(height + 5),
                phase: CertPhase::Strong,
                voted: Digest::from_u64(height * 23 + 2),
                slot: height * 13,
                signers: (0..signers as u32).map(ReplicaId).collect(),
                sigs: (0..signers)
                    .map(|i| Signature([i as u8; SIGNATURE_LEN]))
                    .collect(),
            },
            hash: Digest::from_u64(height * 11),
        }
    }

    #[test]
    fn block_roundtrips() {
        for signers in [0, 1, 3, 128] {
            let b = sample_block(42, signers);
            let enc = encode_block(&b);
            assert_eq!(decode_block(&enc).unwrap(), b);
        }
    }

    #[test]
    fn every_truncation_is_a_clean_error() {
        let enc = encode_block(&sample_block(7, 3));
        for len in 0..enc.len() {
            let err = decode_block(&enc[..len]).expect_err("truncated input must fail");
            assert!(
                matches!(err.kind, CodecErrorKind::UnexpectedEof { .. }),
                "len {len}: {err}"
            );
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut enc = encode_block(&sample_block(7, 3));
        enc.push(0);
        let err = decode_block(&enc).expect_err("trailing byte");
        assert_eq!(err.field, "block");
        assert!(matches!(
            err.kind,
            CodecErrorKind::TrailingBytes { count: 1 }
        ));
    }

    #[test]
    fn absurd_signer_count_is_rejected_before_allocation() {
        let b = sample_block(7, 0);
        let mut enc = encode_block(&b);
        // The signer count sits right before the trailing 32-byte hash.
        let count_at = enc.len() - 32 - 4;
        enc[count_at..count_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        let err = decode_block(&enc).expect_err("bogus count");
        assert!(matches!(err.kind, CodecErrorKind::LengthOutOfRange { .. }));
    }

    #[test]
    fn block_with_payload_roundtrips() {
        let b = sample_block(11, 3);
        for payload in [&b"tx-bytes-go-here"[..], &[]] {
            let enc = encode_block_with_payload(&b, payload);
            let (got, got_payload) = decode_block_with_payload(&enc).unwrap();
            assert_eq!(got, b);
            assert_eq!(got_payload, payload);
        }
        // Truncations fail closed like every other record.
        let enc = encode_block_with_payload(&b, b"abc");
        for len in 0..enc.len() {
            assert!(decode_block_with_payload(&enc[..len]).is_err(), "len {len}");
        }
        let mut trailing = enc;
        trailing.push(0);
        assert!(decode_block_with_payload(&trailing).is_err());
    }

    #[test]
    fn weak_phase_roundtrips_and_bad_phase_is_rejected() {
        let mut b = sample_block(9, 2);
        b.proof.phase = CertPhase::Weak;
        let enc = encode_block(&b);
        assert_eq!(decode_block(&enc).unwrap(), b);
        // The phase byte sits before voted(32) ‖ slot(8) ‖ count(4) ‖
        // 2 signer ids ‖ 2 signatures ‖ the trailing 32-byte hash.
        let mut bad = enc.clone();
        let phase_at = bad.len() - 32 - 2 * SIGNATURE_LEN - 2 * 4 - 4 - 8 - 32 - 1;
        assert_eq!(bad[phase_at], 1, "locating the phase byte");
        bad[phase_at] = 7;
        let err = decode_block(&bad).expect_err("unknown phase");
        assert!(matches!(
            err.kind,
            CodecErrorKind::InvalidDiscriminant { got: 7 }
        ));
    }

    #[test]
    fn reader_bytes_is_length_checked() {
        let mut w = Writer::default();
        w.bytes(b"abc");
        let enc = w.into_bytes();
        let mut r = Reader::new(&enc);
        assert_eq!(r.bytes("s").unwrap(), b"abc");
        // A length prefix pointing past the end must error, not panic.
        let bogus = 1000u32.to_le_bytes();
        let mut r = Reader::new(&bogus);
        assert!(r.bytes("s").is_err());
    }

    #[test]
    fn error_display_names_the_field() {
        let e = CodecError {
            field: "block.height",
            kind: CodecErrorKind::UnexpectedEof {
                needed: 8,
                remaining: 3,
            },
        };
        let msg = e.to_string();
        assert!(msg.contains("block.height") && msg.contains('8') && msg.contains('3'));
    }
}
