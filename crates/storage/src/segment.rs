//! The on-disk segment format of the block log.
//!
//! A segment is one append-only file holding a header followed by framed
//! records:
//!
//! ```text
//! header   := magic[8] version:u32 seq:u64 base_height:u64 crc:u32   (32 B)
//! record   := len:u32 crc:u32 payload[len]
//! ```
//!
//! `crc` is CRC-32C over the payload (for the header: over the preceding
//! 28 bytes). A crash can leave a partially written record at the end of
//! the newest segment; the scan reports it as a [`TailDefect`] with the
//! byte offset of the last intact record so recovery can truncate the
//! torn tail and resume appending — the same contract as the LevelDB /
//! RocksDB log readers. Anything after the first defect is unreachable
//! (frame boundaries are lost), so the scan stops there.

use crate::crc32::crc32c;
use crate::StorageError;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};

/// Magic bytes opening every segment file.
pub const MAGIC: [u8; 8] = *b"SPLSSEG1";
/// Current format version. Version 2 changed the record payload: block
/// records gained the commit certificate's phase byte and the embedded
/// batch payload (see `codec::encode_block_with_payload`). Version 3
/// added the block's `state_root` digest (ledger header v3 — execution
/// state anchored in the chain). Version 4 extended the commit proof
/// with its vote statement (voted digest + slot) and one Ed25519
/// signature per signer, making persisted certificates re-checkable by
/// third parties. Version 5 made the sealed `state_root` the root of a
/// two-level tree (per-shard sub-trees under a top tree, enabling
/// deterministic parallel execution) — the byte layout is unchanged but
/// every root differs from version 4's single-level tree, so replaying
/// an old log would fail its seal checks. There is no in-place upgrade:
/// a store written by an older version fails with a clean
/// [`StorageError::UnsupportedVersion`](crate::StorageError) rather
/// than a misleading corruption diagnosis, and the operator recovers
/// the replica via state transfer from its peers.
pub const VERSION: u32 = 5;
/// Size of the fixed segment header.
pub const HEADER_LEN: u64 = 32;
/// Per-record framing overhead (length + CRC).
pub const RECORD_OVERHEAD: u64 = 8;
/// Upper bound on a single record payload. Larger prefixes are treated
/// as corruption: the biggest legitimate record (a block with thousands
/// of signers) is far below this.
pub const MAX_RECORD_LEN: u32 = 16 * 1024 * 1024;

/// Identifying metadata of a segment, parsed from its header.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SegmentHeader {
    /// Monotonic sequence number of the segment within the log.
    pub seq: u64,
    /// Height of the first block recorded in this segment.
    pub base_height: u64,
}

impl SegmentHeader {
    fn encode(&self) -> [u8; 32] {
        let mut h = [0u8; 32];
        h[..8].copy_from_slice(&MAGIC);
        h[8..12].copy_from_slice(&VERSION.to_le_bytes());
        h[12..20].copy_from_slice(&self.seq.to_le_bytes());
        h[20..28].copy_from_slice(&self.base_height.to_le_bytes());
        let crc = crc32c(&h[..28]);
        h[28..32].copy_from_slice(&crc.to_le_bytes());
        h
    }

    fn decode(h: &[u8; 32], path: &Path) -> Result<SegmentHeader, StorageError> {
        if h[..8] != MAGIC {
            return Err(StorageError::corrupt(path, 0, "bad segment magic"));
        }
        let version = u32::from_le_bytes([h[8], h[9], h[10], h[11]]);
        if version != VERSION {
            return Err(StorageError::UnsupportedVersion {
                path: path.to_path_buf(),
                version,
            });
        }
        let crc = u32::from_le_bytes([h[28], h[29], h[30], h[31]]);
        if crc != crc32c(&h[..28]) {
            return Err(StorageError::corrupt(
                path,
                28,
                "segment header CRC mismatch",
            ));
        }
        Ok(SegmentHeader {
            seq: u64::from_le_bytes([h[12], h[13], h[14], h[15], h[16], h[17], h[18], h[19]]),
            base_height: u64::from_le_bytes([
                h[20], h[21], h[22], h[23], h[24], h[25], h[26], h[27],
            ]),
        })
    }
}

/// File name for segment `seq` (fixed-width hex so lexicographic order
/// is numeric order).
pub fn segment_file_name(seq: u64) -> String {
    format!("seg-{seq:016x}.log")
}

/// Parses a segment sequence number back out of a file name.
pub fn parse_segment_file_name(name: &str) -> Option<u64> {
    let hex = name.strip_prefix("seg-")?.strip_suffix(".log")?;
    if hex.len() != 16 {
        return None;
    }
    u64::from_str_radix(hex, 16).ok()
}

/// An open segment being appended to.
#[derive(Debug)]
pub struct SegmentWriter {
    path: PathBuf,
    file: BufWriter<File>,
    /// Bytes of intact data (header + complete records) written so far.
    len: u64,
    header: SegmentHeader,
    records: u64,
}

impl SegmentWriter {
    /// Creates a fresh segment file at `path` and writes its header.
    pub fn create(path: PathBuf, header: SegmentHeader) -> Result<SegmentWriter, StorageError> {
        let file = OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(&path)
            .map_err(|e| StorageError::io(&path, "create segment", e))?;
        let mut w = SegmentWriter {
            file: BufWriter::new(file),
            path,
            len: 0,
            header,
            records: 0,
        };
        w.write_all(&header.encode())?;
        w.len = HEADER_LEN;
        Ok(w)
    }

    /// Reopens an existing segment for appending after recovery decided
    /// `valid_len` bytes are intact. The file is truncated to that length
    /// first, discarding any torn tail.
    pub fn reopen(
        path: PathBuf,
        header: SegmentHeader,
        valid_len: u64,
        records: u64,
    ) -> Result<SegmentWriter, StorageError> {
        let file = OpenOptions::new()
            .write(true)
            .read(true)
            .open(&path)
            .map_err(|e| StorageError::io(&path, "reopen segment", e))?;
        file.set_len(valid_len)
            .map_err(|e| StorageError::io(&path, "truncate torn tail", e))?;
        use std::io::Seek;
        let mut file = file;
        file.seek(std::io::SeekFrom::End(0))
            .map_err(|e| StorageError::io(&path, "seek to end", e))?;
        Ok(SegmentWriter {
            file: BufWriter::new(file),
            path,
            len: valid_len,
            header,
            records,
        })
    }

    fn write_all(&mut self, data: &[u8]) -> Result<(), StorageError> {
        self.file
            .write_all(data)
            .map_err(|e| StorageError::io(&self.path, "append", e))
    }

    /// Appends one framed record. The data is buffered; call [`sync`]
    /// (or rely on the log's sync policy) to make it durable.
    ///
    /// [`sync`]: SegmentWriter::sync
    pub fn append(&mut self, payload: &[u8]) -> Result<(), StorageError> {
        debug_assert!(payload.len() as u64 <= u64::from(MAX_RECORD_LEN));
        let len = payload.len() as u32;
        let crc = crc32c(payload);
        self.write_all(&len.to_le_bytes())?;
        self.write_all(&crc.to_le_bytes())?;
        self.write_all(payload)?;
        self.len += RECORD_OVERHEAD + u64::from(len);
        self.records += 1;
        Ok(())
    }

    /// Flushes buffers and fsyncs the file.
    pub fn sync(&mut self) -> Result<(), StorageError> {
        self.file
            .flush()
            .map_err(|e| StorageError::io(&self.path, "flush", e))?;
        self.file
            .get_ref()
            .sync_data()
            .map_err(|e| StorageError::io(&self.path, "fsync", e))
    }

    /// Bytes of intact data written (header + complete records).
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when the segment holds no records.
    pub fn is_empty(&self) -> bool {
        self.records == 0
    }

    /// Number of records appended.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// This segment's header metadata.
    pub fn header(&self) -> SegmentHeader {
        self.header
    }

    /// The segment's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Why a scan stopped before the end of the file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TailDefect {
    /// Fewer bytes remained than one record frame requires — the classic
    /// torn write.
    TruncatedRecord {
        /// Bytes that remained past the last intact record.
        trailing: u64,
    },
    /// A complete frame was present but its CRC did not match.
    CrcMismatch,
    /// A length prefix exceeded [`MAX_RECORD_LEN`].
    AbsurdLength {
        /// The decoded length.
        got: u32,
    },
}

/// Result of scanning one segment file.
#[derive(Debug)]
pub struct SegmentScan {
    /// Parsed header.
    pub header: SegmentHeader,
    /// Every intact record payload, in order.
    pub records: Vec<Vec<u8>>,
    /// Bytes of intact data (header + complete records).
    pub valid_len: u64,
    /// Present when the file ends in a defect; recovery truncates to
    /// `valid_len` iff the defect is in the newest segment.
    pub defect: Option<TailDefect>,
}

/// Reads and validates a whole segment file.
pub fn scan_segment(path: &Path) -> Result<SegmentScan, StorageError> {
    let mut file = File::open(path).map_err(|e| StorageError::io(path, "open segment", e))?;
    let mut data = Vec::new();
    file.read_to_end(&mut data)
        .map_err(|e| StorageError::io(path, "read segment", e))?;
    if data.len() < HEADER_LEN as usize {
        return Err(StorageError::corrupt(
            path,
            0,
            "segment shorter than header",
        ));
    }
    let mut header_bytes = [0u8; 32];
    header_bytes.copy_from_slice(&data[..32]);
    let header = SegmentHeader::decode(&header_bytes, path)?;

    let mut records = Vec::new();
    let mut pos = HEADER_LEN as usize;
    let mut defect = None;
    while pos < data.len() {
        let remaining = data.len() - pos;
        if remaining < RECORD_OVERHEAD as usize {
            defect = Some(TailDefect::TruncatedRecord {
                trailing: remaining as u64,
            });
            break;
        }
        let len = u32::from_le_bytes([data[pos], data[pos + 1], data[pos + 2], data[pos + 3]]);
        if len > MAX_RECORD_LEN {
            defect = Some(TailDefect::AbsurdLength { got: len });
            break;
        }
        let crc = u32::from_le_bytes([data[pos + 4], data[pos + 5], data[pos + 6], data[pos + 7]]);
        let body_start = pos + RECORD_OVERHEAD as usize;
        if data.len() - body_start < len as usize {
            defect = Some(TailDefect::TruncatedRecord {
                trailing: remaining as u64,
            });
            break;
        }
        let body = &data[body_start..body_start + len as usize];
        if crc32c(body) != crc {
            defect = Some(TailDefect::CrcMismatch);
            break;
        }
        records.push(body.to_vec());
        pos = body_start + len as usize;
    }
    Ok(SegmentScan {
        header,
        records,
        valid_len: pos as u64,
        defect,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempfile::tempdir;

    fn header(seq: u64) -> SegmentHeader {
        SegmentHeader {
            seq,
            base_height: seq * 100,
        }
    }

    #[test]
    fn file_names_roundtrip_and_sort() {
        assert_eq!(parse_segment_file_name(&segment_file_name(0)), Some(0));
        assert_eq!(
            parse_segment_file_name(&segment_file_name(u64::MAX)),
            Some(u64::MAX)
        );
        assert!(segment_file_name(9) < segment_file_name(10));
        assert!(segment_file_name(255) < segment_file_name(4096));
        assert_eq!(parse_segment_file_name("seg-xyz.log"), None);
        assert_eq!(parse_segment_file_name("snapshot-3.snap"), None);
    }

    #[test]
    fn write_then_scan_roundtrips() {
        let dir = tempdir().unwrap();
        let path = dir.path().join(segment_file_name(3));
        let mut w = SegmentWriter::create(path.clone(), header(3)).unwrap();
        for i in 0..10u8 {
            w.append(&vec![i; 10 + i as usize]).unwrap();
        }
        w.sync().unwrap();
        let scan = scan_segment(&path).unwrap();
        assert_eq!(scan.header, header(3));
        assert_eq!(scan.records.len(), 10);
        assert_eq!(scan.records[4], vec![4u8; 14]);
        assert_eq!(scan.defect, None);
        assert_eq!(scan.valid_len, w.len());
    }

    #[test]
    fn torn_tail_is_reported_with_valid_prefix() {
        let dir = tempdir().unwrap();
        let path = dir.path().join(segment_file_name(0));
        let mut w = SegmentWriter::create(path.clone(), header(0)).unwrap();
        w.append(b"first").unwrap();
        w.append(b"second").unwrap();
        w.sync().unwrap();
        let intact = w.len();
        // Simulate a crash mid-append: write half a record frame.
        {
            use std::io::Write;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&20u32.to_le_bytes()).unwrap();
            f.write_all(&[0xAB; 3]).unwrap();
        }
        let scan = scan_segment(&path).unwrap();
        assert_eq!(scan.records.len(), 2);
        assert_eq!(scan.valid_len, intact);
        assert!(matches!(
            scan.defect,
            Some(TailDefect::TruncatedRecord { trailing: 7 })
        ));
    }

    #[test]
    fn corrupted_record_body_stops_the_scan() {
        let dir = tempdir().unwrap();
        let path = dir.path().join(segment_file_name(0));
        let mut w = SegmentWriter::create(path.clone(), header(0)).unwrap();
        w.append(b"aaaa").unwrap();
        w.append(b"bbbb").unwrap();
        w.sync().unwrap();
        // Flip a byte in the second record's payload.
        let mut data = std::fs::read(&path).unwrap();
        let second_body = data.len() - 1;
        data[second_body] ^= 0x01;
        std::fs::write(&path, &data).unwrap();
        let scan = scan_segment(&path).unwrap();
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.defect, Some(TailDefect::CrcMismatch));
    }

    #[test]
    fn absurd_length_prefix_is_a_defect_not_an_allocation() {
        let dir = tempdir().unwrap();
        let path = dir.path().join(segment_file_name(0));
        let w = SegmentWriter::create(path.clone(), header(0)).unwrap();
        drop(w);
        {
            use std::io::Write;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&u32::MAX.to_le_bytes()).unwrap();
            f.write_all(&0u32.to_le_bytes()).unwrap();
        }
        let scan = scan_segment(&path).unwrap();
        assert!(scan.records.is_empty());
        assert_eq!(
            scan.defect,
            Some(TailDefect::AbsurdLength { got: u32::MAX })
        );
    }

    #[test]
    fn reopen_truncates_and_appends_cleanly() {
        let dir = tempdir().unwrap();
        let path = dir.path().join(segment_file_name(1));
        let mut w = SegmentWriter::create(path.clone(), header(1)).unwrap();
        w.append(b"keep").unwrap();
        w.sync().unwrap();
        let valid = w.len();
        drop(w);
        // Torn garbage at the end.
        {
            use std::io::Write;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&[0xFF; 5]).unwrap();
        }
        let mut w = SegmentWriter::reopen(path.clone(), header(1), valid, 1).unwrap();
        w.append(b"appended-after-recovery").unwrap();
        w.sync().unwrap();
        let scan = scan_segment(&path).unwrap();
        assert_eq!(scan.records.len(), 2);
        assert_eq!(scan.records[1], b"appended-after-recovery");
        assert_eq!(scan.defect, None);
    }

    #[test]
    fn header_tampering_is_detected() {
        let dir = tempdir().unwrap();
        let path = dir.path().join(segment_file_name(0));
        let w = SegmentWriter::create(path.clone(), header(0)).unwrap();
        drop(w);
        let mut data = std::fs::read(&path).unwrap();
        data[14] ^= 0x01; // flip a bit in the seq field
        std::fs::write(&path, &data).unwrap();
        let err = scan_segment(&path).unwrap_err();
        assert!(err.to_string().contains("CRC"), "{err}");
    }

    #[test]
    fn wrong_version_is_a_distinct_error() {
        let dir = tempdir().unwrap();
        let path = dir.path().join(segment_file_name(0));
        let w = SegmentWriter::create(path.clone(), header(0)).unwrap();
        drop(w);
        let mut data = std::fs::read(&path).unwrap();
        data[8..12].copy_from_slice(&99u32.to_le_bytes());
        let crc = crc32c(&data[..28]);
        data[28..32].copy_from_slice(&crc.to_le_bytes());
        std::fs::write(&path, &data).unwrap();
        match scan_segment(&path).unwrap_err() {
            StorageError::UnsupportedVersion { version, .. } => assert_eq!(version, 99),
            e => panic!("expected UnsupportedVersion, got {e}"),
        }
    }
}
