//! Snapshot files: a point-in-time copy of the executed state.
//!
//! A snapshot lets recovery skip replaying the whole block log and lets
//! the log prune segments below the snapshot height (the protocol's GC
//! horizon — DESIGN.md §7.5 deviation 5).
//!
//! Format v3 splits a snapshot into a **manifest** and
//! **content-addressed chunks**:
//!
//! * the manifest (`snap-<height>.snap`) carries the ledger height, the
//!   head hash, the certified head block (whose `state_root` commits to
//!   the application state), the recent-batch-id window, the opaque
//!   application *meta* bytes, and the digest list of the state chunks;
//! * each chunk lives in its own file named by the digest of its
//!   contents (`chunk-<hex>.blob`). Content addressing means a chunk
//!   whose buckets did not change between two snapshots is written
//!   once and shared by both manifests — and a state-transfer receiver
//!   can journal partially fetched chunks under the same names.
//!
//! Write order is crash-safe: chunks first (each fsynced), then the
//! manifest via tmp-write + rename + directory fsync. A crash mid-write
//! leaves either the old snapshot set or the new one — never a manifest
//! naming chunks that do not exist. Invalid snapshots (bad manifest CRC,
//! missing or corrupt chunks) are skipped by [`latest_snapshot`];
//! recovery falls back to the next-best one, so a damaged newest
//! snapshot degrades to a longer log replay instead of an outage.
//! Pruning deletes old manifests and then garbage-collects chunk files
//! no remaining manifest references.

use crate::codec::{decode_block, encode_block, Reader, Writer};
use crate::crc32::crc32c;
use crate::StorageError;
use spotless_ledger::Block;
use spotless_types::{BatchId, Digest};
use std::collections::HashSet;
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

/// Magic bytes opening every snapshot manifest.
pub const MAGIC: [u8; 8] = *b"SPLSSNP1";
/// Current snapshot format version. Version 2 added the certified head
/// block; version 3 replaced the monolithic `app_state` payload with
/// application meta bytes plus content-addressed state chunks, matching
/// the chunked (and chain-verified, via the head block's `state_root`)
/// state-transfer protocol; version 4 extended the head block's commit
/// proof with its vote statement and per-signer Ed25519 signatures;
/// version 5 revved the embedded chunk and meta encodings (chunks
/// gained fragment fields so one oversized bucket can span several
/// chunks, and the head's `state_root` became the root of the
/// two-level sharded state tree). Older stores are rejected with a
/// clean [`StorageError::UnsupportedVersion`] — the migration story is
/// state transfer from peers, not in-place upgrade.
pub const VERSION: u32 = 5;

/// A decoded snapshot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Snapshot {
    /// Number of ledger blocks the snapshot covers (the height at which
    /// log replay resumes).
    pub height: u64,
    /// Ledger head hash after block `height - 1` (zero when `height == 0`).
    pub head_hash: Digest,
    /// The block at `height - 1` — the carrier of the head's commit
    /// certificate and `state_root`, retained even after the log prunes
    /// the block so the snapshot can be served to (and verified by) a
    /// recovering peer. `None` only for the empty snapshot at
    /// `height == 0`.
    pub head_block: Option<Block>,
    /// Ids of the most recently committed batches the snapshot covers
    /// (oldest first, bounded by `spotless_ledger::RECENT_BATCHES_CAP`).
    /// Seeds the re-commit dedup filter after recovery or state
    /// transfer — see `spotless_ledger::RecentBatches`.
    pub recent_ids: Vec<BatchId>,
    /// Opaque application metadata (the KV store's meta-leaf encoding in
    /// the runtime; the storage layer neither parses nor validates it
    /// beyond the manifest checksum).
    pub app_meta: Vec<u8>,
    /// Opaque application-state chunks, in order. Each is stored
    /// content-addressed; the manifest pins their digests.
    pub app_chunks: Vec<Vec<u8>>,
}

/// File name for a snapshot manifest covering `height` blocks.
pub fn snapshot_file_name(height: u64) -> String {
    format!("snap-{height:016x}.snap")
}

/// Parses the covered height back out of a manifest file name.
pub fn parse_snapshot_file_name(name: &str) -> Option<u64> {
    let hex = name.strip_prefix("snap-")?.strip_suffix(".snap")?;
    if hex.len() != 16 {
        return None;
    }
    u64::from_str_radix(hex, 16).ok()
}

fn digest_hex(d: &Digest) -> String {
    let mut s = String::with_capacity(64);
    for b in d.0 {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

/// File name of the content-addressed blob holding a chunk whose
/// contents hash to `digest`.
pub fn chunk_file_name(digest: &Digest) -> String {
    format!("chunk-{}.blob", digest_hex(digest))
}

/// True iff `name` is a chunk blob file name.
fn is_chunk_file_name(name: &str) -> bool {
    name.strip_prefix("chunk-")
        .and_then(|rest| rest.strip_suffix(".blob"))
        .is_some_and(|hex| hex.len() == 64 && hex.bytes().all(|b| b.is_ascii_hexdigit()))
}

/// The one crash-safe file-write protocol every durable artifact in
/// this crate uses: bytes to `<name>.tmp` (fsynced), rename over the
/// final name, optionally fsync the directory inode (required for the
/// rename itself to be durable on POSIX; chunk blobs skip it because
/// the subsequent manifest write syncs the same directory). A crash at
/// any point leaves either the old file or the new one under the final
/// name — never a torn write.
pub(crate) fn write_atomic(
    dir: &Path,
    name: &str,
    bytes: &[u8],
    fsync_dir: bool,
) -> Result<(), StorageError> {
    let final_path = dir.join(name);
    let tmp_path = dir.join(format!("{name}.tmp"));
    {
        let mut f = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp_path)
            .map_err(|e| StorageError::io(&tmp_path, "create tmp", e))?;
        f.write_all(bytes)
            .map_err(|e| StorageError::io(&tmp_path, "write", e))?;
        f.sync_data()
            .map_err(|e| StorageError::io(&tmp_path, "fsync", e))?;
    }
    fs::rename(&tmp_path, &final_path).map_err(|e| StorageError::io(&final_path, "rename", e))?;
    if fsync_dir {
        sync_dir(dir)?;
    }
    Ok(())
}

/// Writes `bytes` as the content-addressed chunk blob for `digest` in
/// `dir`, fsynced. Skips the write when a blob of that name already
/// exists (content addressing: same name ⇒ same bytes).
pub fn write_chunk_blob(dir: &Path, digest: &Digest, bytes: &[u8]) -> Result<(), StorageError> {
    debug_assert_eq!(spotless_crypto::digest_bytes(bytes), *digest);
    if dir.join(chunk_file_name(digest)).exists() {
        return Ok(());
    }
    write_atomic(dir, &chunk_file_name(digest), bytes, false)
}

/// Reads the content-addressed chunk blob for `digest`, verifying its
/// contents actually hash to its name.
pub fn read_chunk_blob(dir: &Path, digest: &Digest) -> Result<Vec<u8>, StorageError> {
    let path = dir.join(chunk_file_name(digest));
    let mut f = File::open(&path).map_err(|e| StorageError::io(&path, "open chunk", e))?;
    let mut data = Vec::new();
    f.read_to_end(&mut data)
        .map_err(|e| StorageError::io(&path, "read chunk", e))?;
    if spotless_crypto::digest_bytes(&data) != *digest {
        return Err(StorageError::corrupt(
            &path,
            0,
            "chunk contents do not hash to the file's content address",
        ));
    }
    Ok(data)
}

/// Sanity bound on a snapshot's recent-id list (see
/// `spotless_ledger::RECENT_BATCHES_CAP`; a larger prefix is
/// corruption, not data).
const MAX_RECENT_IDS: u32 = 1 << 16;
/// Sanity bound on a manifest's chunk count (a state would need to be
/// absurdly large to exceed it; a larger prefix is corruption).
const MAX_CHUNKS: u32 = 1 << 20;

fn encode_manifest(snap: &Snapshot, chunk_digests: &[Digest]) -> Vec<u8> {
    let block_bytes = snap.head_block.as_ref().map(encode_block);
    let mut w = Writer::with_capacity(128 + snap.app_meta.len() + chunk_digests.len() * 32);
    w.u64(snap.height);
    w.digest(&snap.head_hash);
    w.bytes(block_bytes.as_deref().unwrap_or(&[]));
    w.u32(snap.recent_ids.len() as u32);
    for id in &snap.recent_ids {
        w.u64(id.0);
    }
    w.bytes(&snap.app_meta);
    w.u32(chunk_digests.len() as u32);
    for d in chunk_digests {
        w.digest(d);
    }
    let body = w.into_bytes();
    let mut buf = Vec::with_capacity(16 + body.len());
    buf.extend_from_slice(&MAGIC);
    buf.extend_from_slice(&VERSION.to_le_bytes());
    buf.extend_from_slice(&body);
    let crc = crc32c(&buf);
    buf.extend_from_slice(&crc.to_le_bytes());
    buf
}

/// The manifest half of a snapshot: everything except the chunk bytes.
struct Manifest {
    height: u64,
    head_hash: Digest,
    head_block: Option<Block>,
    recent_ids: Vec<BatchId>,
    app_meta: Vec<u8>,
    chunk_digests: Vec<Digest>,
}

fn decode_manifest(data: &[u8], path: &Path) -> Result<Manifest, StorageError> {
    // magic(8) version(4) [codec-framed body] crc(4); the body reuses
    // the length-checked `codec::Reader` helpers so every field failure
    // names the field instead of re-deriving offset arithmetic here.
    const FRAMING: usize = 8 + 4 + 4;
    if data.len() < FRAMING {
        return Err(StorageError::corrupt(
            path,
            0,
            "snapshot shorter than header",
        ));
    }
    if data[..8] != MAGIC {
        return Err(StorageError::corrupt(path, 0, "bad snapshot magic"));
    }
    let version = u32::from_le_bytes([data[8], data[9], data[10], data[11]]);
    if version != VERSION {
        return Err(StorageError::UnsupportedVersion {
            path: path.to_path_buf(),
            version,
        });
    }
    let body_len = data.len() - 4;
    let stored_crc = u32::from_le_bytes([
        data[body_len],
        data[body_len + 1],
        data[body_len + 2],
        data[body_len + 3],
    ]);
    if crc32c(&data[..body_len]) != stored_crc {
        return Err(StorageError::corrupt(
            path,
            body_len as u64,
            "snapshot CRC mismatch",
        ));
    }
    let codec_err = |source| StorageError::Codec {
        path: path.to_path_buf(),
        source,
    };
    let mut r = Reader::new(&data[12..body_len]);
    let height = r.u64("snapshot.height").map_err(codec_err)?;
    let head_hash = r.digest("snapshot.head_hash").map_err(codec_err)?;
    let block_bytes = r.bytes("snapshot.head_block").map_err(codec_err)?;
    let head_block = if block_bytes.is_empty() {
        None
    } else {
        Some(decode_block(block_bytes).map_err(codec_err)?)
    };
    let ids_len = r.u32("snapshot.recent_ids.len").map_err(codec_err)?;
    if ids_len > MAX_RECENT_IDS {
        return Err(StorageError::corrupt(
            path,
            12,
            "snapshot recent-id list exceeds the sanity bound",
        ));
    }
    let mut recent_ids = Vec::with_capacity(ids_len as usize);
    for _ in 0..ids_len {
        recent_ids.push(BatchId(r.u64("snapshot.recent_ids[]").map_err(codec_err)?));
    }
    let app_meta = r.bytes("snapshot.app_meta").map_err(codec_err)?.to_vec();
    let chunks_len = r.u32("snapshot.chunks.len").map_err(codec_err)?;
    if chunks_len > MAX_CHUNKS {
        return Err(StorageError::corrupt(
            path,
            12,
            "snapshot chunk list exceeds the sanity bound",
        ));
    }
    let mut chunk_digests = Vec::with_capacity(chunks_len as usize);
    for _ in 0..chunks_len {
        chunk_digests.push(r.digest("snapshot.chunks[]").map_err(codec_err)?);
    }
    r.finish("snapshot").map_err(codec_err)?;
    Ok(Manifest {
        height,
        head_hash,
        head_block,
        recent_ids,
        app_meta,
        chunk_digests,
    })
}

pub(crate) fn sync_dir(dir: &Path) -> Result<(), StorageError> {
    // Durability of the rename itself requires fsyncing the directory
    // inode on POSIX systems.
    let d = File::open(dir).map_err(|e| StorageError::io(dir, "open dir", e))?;
    d.sync_all()
        .map_err(|e| StorageError::io(dir, "fsync dir", e))
}

/// Atomically writes `snap` into `dir` (chunks first, then the
/// manifest), returning the manifest path. Chunks already present under
/// their content address are not rewritten.
pub fn write_snapshot(dir: &Path, snap: &Snapshot) -> Result<PathBuf, StorageError> {
    let chunk_digests: Vec<Digest> = snap
        .app_chunks
        .iter()
        .map(|c| spotless_crypto::digest_bytes(c))
        .collect();
    for (bytes, digest) in snap.app_chunks.iter().zip(&chunk_digests) {
        write_chunk_blob(dir, digest, bytes)?;
    }
    let name = snapshot_file_name(snap.height);
    let bytes = encode_manifest(snap, &chunk_digests);
    write_atomic(dir, &name, &bytes, true)?;
    Ok(dir.join(name))
}

/// Reads and validates one snapshot: the manifest plus every chunk it
/// references (each verified against its content address).
pub fn read_snapshot(path: &Path) -> Result<Snapshot, StorageError> {
    let mut f = File::open(path).map_err(|e| StorageError::io(path, "open snapshot", e))?;
    let mut data = Vec::new();
    f.read_to_end(&mut data)
        .map_err(|e| StorageError::io(path, "read snapshot", e))?;
    let m = decode_manifest(&data, path)?;
    let dir = path.parent().unwrap_or(Path::new("."));
    let mut app_chunks = Vec::with_capacity(m.chunk_digests.len());
    for d in &m.chunk_digests {
        app_chunks.push(read_chunk_blob(dir, d)?);
    }
    Ok(Snapshot {
        height: m.height,
        head_hash: m.head_hash,
        head_block: m.head_block,
        recent_ids: m.recent_ids,
        app_meta: m.app_meta,
        app_chunks,
    })
}

/// Finds the newest *valid* snapshot in `dir`, if any. Manifests with
/// bad checksums, unreadable contents, or missing/corrupt chunks are
/// skipped; leftover `.tmp` files are ignored entirely (they are by
/// definition incomplete).
pub fn latest_snapshot(dir: &Path) -> Result<Option<(PathBuf, Snapshot)>, StorageError> {
    let mut heights: Vec<(u64, PathBuf)> = Vec::new();
    let entries = fs::read_dir(dir).map_err(|e| StorageError::io(dir, "list dir", e))?;
    for entry in entries {
        let entry = entry.map_err(|e| StorageError::io(dir, "list dir", e))?;
        let name = entry.file_name();
        if let Some(h) = name.to_str().and_then(parse_snapshot_file_name) {
            heights.push((h, entry.path()));
        }
    }
    heights.sort_unstable_by_key(|(h, _)| std::cmp::Reverse(*h));
    for (_, path) in heights {
        match read_snapshot(&path) {
            Ok(snap) => return Ok(Some((path, snap))),
            Err(StorageError::Io { .. }) | Err(StorageError::Corrupt { .. }) => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(None)
}

/// Deletes snapshot manifests strictly below `keep_height` except the
/// newest of them (one older snapshot is kept as a fallback should the
/// newest turn out unreadable on the next recovery), then
/// garbage-collects chunk blobs no surviving manifest references.
pub fn prune_snapshots(dir: &Path, keep_height: u64) -> Result<usize, StorageError> {
    let mut old: Vec<(u64, PathBuf)> = Vec::new();
    let entries = fs::read_dir(dir).map_err(|e| StorageError::io(dir, "list dir", e))?;
    for entry in entries {
        let entry = entry.map_err(|e| StorageError::io(dir, "list dir", e))?;
        if let Some(h) = entry
            .file_name()
            .to_str()
            .and_then(parse_snapshot_file_name)
        {
            if h < keep_height {
                old.push((h, entry.path()));
            }
        }
    }
    old.sort_unstable_by_key(|(h, _)| *h);
    old.pop(); // retain the newest of the old ones as a fallback
    let mut removed = 0;
    for (_, path) in old {
        fs::remove_file(&path).map_err(|e| StorageError::io(&path, "remove snapshot", e))?;
        removed += 1;
    }
    gc_chunks(dir)?;
    Ok(removed)
}

/// Deletes chunk blobs not referenced by any manifest in `dir`. A
/// manifest that still decodes pins its chunks even if some are
/// missing; a manifest too corrupt to decode pins nothing (it cannot be
/// recovered from anyway).
fn gc_chunks(dir: &Path) -> Result<usize, StorageError> {
    let mut referenced: HashSet<String> = HashSet::new();
    let mut blobs: Vec<PathBuf> = Vec::new();
    let entries = fs::read_dir(dir).map_err(|e| StorageError::io(dir, "list dir", e))?;
    for entry in entries {
        let entry = entry.map_err(|e| StorageError::io(dir, "list dir", e))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if parse_snapshot_file_name(name).is_some() {
            if let Ok(data) = fs::read(entry.path()) {
                if let Ok(m) = decode_manifest(&data, &entry.path()) {
                    for d in &m.chunk_digests {
                        referenced.insert(chunk_file_name(d));
                    }
                }
            }
        } else if is_chunk_file_name(name) {
            blobs.push(entry.path());
        } else if name.ends_with(".tmp")
            && (name.starts_with("chunk-") || name.starts_with("snap-"))
        {
            // A crash between tmp-write and rename orphans the tmp file
            // forever (it never matches a final name), so pruning is
            // the natural place to sweep them — repeated crash cycles
            // must not accumulate dead bytes.
            let path = entry.path();
            fs::remove_file(&path).map_err(|e| StorageError::io(&path, "remove tmp", e))?;
        }
    }
    let mut removed = 0;
    for blob in blobs {
        let name = blob
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default()
            .to_string();
        if !referenced.contains(&name) {
            fs::remove_file(&blob).map_err(|e| StorageError::io(&blob, "remove chunk", e))?;
            removed += 1;
        }
    }
    Ok(removed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempfile::tempdir;

    fn snap(height: u64, chunks: &[&[u8]]) -> Snapshot {
        Snapshot {
            height,
            head_hash: Digest::from_u64(height * 31),
            head_block: None,
            recent_ids: vec![BatchId(height), BatchId(height + 1)],
            app_meta: format!("meta-{height}").into_bytes(),
            app_chunks: chunks.iter().map(|c| c.to_vec()).collect(),
        }
    }

    #[test]
    fn write_read_roundtrip() {
        let dir = tempdir().unwrap();
        let s = snap(17, &[b"chunk-a", b"chunk-b", b"chunk-c"]);
        let path = write_snapshot(dir.path(), &s).unwrap();
        assert_eq!(read_snapshot(&path).unwrap(), s);
    }

    #[test]
    fn head_block_roundtrips() {
        let mut ledger = spotless_ledger::Ledger::new();
        for i in 0..3u64 {
            ledger.append(
                spotless_types::BatchId(i),
                Digest::from_u64(i),
                10,
                Digest::from_u64(i * 5 + 3),
                spotless_ledger::CommitProof {
                    instance: spotless_types::InstanceId(0),
                    view: spotless_types::View(i),
                    phase: spotless_types::CertPhase::Strong,
                    voted: Digest::from_u64(i),
                    slot: 0,
                    signers: vec![
                        spotless_types::ReplicaId(0),
                        spotless_types::ReplicaId(1),
                        spotless_types::ReplicaId(2),
                    ],
                    sigs: vec![spotless_types::Signature::ZERO; 3],
                },
            );
        }
        let dir = tempdir().unwrap();
        let s = Snapshot {
            height: 3,
            head_hash: ledger.head_hash(),
            head_block: Some(ledger.block(2).unwrap().clone()),
            recent_ids: vec![BatchId(0), BatchId(1), BatchId(2)],
            app_meta: b"meta".to_vec(),
            app_chunks: vec![b"state".to_vec()],
        };
        let path = write_snapshot(dir.path(), &s).unwrap();
        let back = read_snapshot(&path).unwrap();
        assert_eq!(back, s);
        let head = back.head_block.unwrap();
        assert!(head.verify_hash());
        assert_eq!(head.state_root, Digest::from_u64(2 * 5 + 3));
    }

    #[test]
    fn empty_chunk_list_roundtrips() {
        let dir = tempdir().unwrap();
        let s = snap(0, &[]);
        let path = write_snapshot(dir.path(), &s).unwrap();
        assert_eq!(read_snapshot(&path).unwrap(), s);
    }

    #[test]
    fn latest_picks_the_highest_valid() {
        let dir = tempdir().unwrap();
        write_snapshot(dir.path(), &snap(5, &[b"old"])).unwrap();
        write_snapshot(dir.path(), &snap(12, &[b"new"])).unwrap();
        let (_, got) = latest_snapshot(dir.path()).unwrap().unwrap();
        assert_eq!(got.height, 12);
    }

    #[test]
    fn corrupted_newest_manifest_falls_back_to_older() {
        let dir = tempdir().unwrap();
        write_snapshot(dir.path(), &snap(5, &[b"old"])).unwrap();
        let newest = write_snapshot(dir.path(), &snap(12, &[b"new"])).unwrap();
        let mut data = fs::read(&newest).unwrap();
        let last = data.len() - 10;
        data[last] ^= 0xFF;
        fs::write(&newest, &data).unwrap();
        let (_, got) = latest_snapshot(dir.path()).unwrap().unwrap();
        assert_eq!(got.height, 5);
        assert_eq!(got.app_chunks, vec![b"old".to_vec()]);
    }

    #[test]
    fn missing_or_corrupt_chunk_falls_back_to_older() {
        let dir = tempdir().unwrap();
        write_snapshot(dir.path(), &snap(5, &[b"old"])).unwrap();
        write_snapshot(dir.path(), &snap(12, &[b"unique-new-chunk"])).unwrap();
        let victim = dir
            .path()
            .join(chunk_file_name(&spotless_crypto::digest_bytes(
                b"unique-new-chunk",
            )));
        // Corrupt the chunk contents: the content address no longer
        // matches, so the newest snapshot must be skipped.
        fs::write(&victim, b"tampered").unwrap();
        let (_, got) = latest_snapshot(dir.path()).unwrap().unwrap();
        assert_eq!(got.height, 5);
        // Delete it outright: same fallback.
        fs::remove_file(&victim).unwrap();
        let (_, got) = latest_snapshot(dir.path()).unwrap().unwrap();
        assert_eq!(got.height, 5);
    }

    #[test]
    fn content_addressing_dedups_unchanged_chunks() {
        let dir = tempdir().unwrap();
        // Two snapshots sharing one chunk: only three blobs on disk.
        write_snapshot(dir.path(), &snap(5, &[b"shared", b"only-5"])).unwrap();
        write_snapshot(dir.path(), &snap(9, &[b"shared", b"only-9"])).unwrap();
        let blobs = fs::read_dir(dir.path())
            .unwrap()
            .filter(|e| {
                is_chunk_file_name(e.as_ref().unwrap().file_name().to_str().unwrap_or_default())
            })
            .count();
        assert_eq!(blobs, 3, "the shared chunk must be stored once");
    }

    #[test]
    fn leftover_tmp_files_are_ignored() {
        let dir = tempdir().unwrap();
        write_snapshot(dir.path(), &snap(5, &[b"good"])).unwrap();
        fs::write(
            dir.path().join(format!("{}.tmp", snapshot_file_name(99))),
            b"half-written garbage",
        )
        .unwrap();
        let (_, got) = latest_snapshot(dir.path()).unwrap().unwrap();
        assert_eq!(got.height, 5);
    }

    #[test]
    fn empty_dir_has_no_snapshot() {
        let dir = tempdir().unwrap();
        assert!(latest_snapshot(dir.path()).unwrap().is_none());
    }

    #[test]
    fn prune_keeps_one_fallback_and_gcs_chunks() {
        let dir = tempdir().unwrap();
        for h in [3u64, 7, 11, 15] {
            write_snapshot(dir.path(), &snap(h, &[format!("state-{h}").as_bytes()])).unwrap();
        }
        let removed = prune_snapshots(dir.path(), 15).unwrap();
        // 3, 7, 11 are below 15; 11 is kept as fallback.
        assert_eq!(removed, 2);
        assert!(read_snapshot(&dir.path().join(snapshot_file_name(11))).is_ok());
        assert!(read_snapshot(&dir.path().join(snapshot_file_name(15))).is_ok());
        assert!(!dir.path().join(snapshot_file_name(3)).exists());
        assert!(!dir.path().join(snapshot_file_name(7)).exists());
        // The pruned snapshots' chunks were garbage-collected; the
        // survivors' chunks remain readable.
        for h in [3u64, 7] {
            let d = spotless_crypto::digest_bytes(format!("state-{h}").as_bytes());
            assert!(!dir.path().join(chunk_file_name(&d)).exists());
        }
        for h in [11u64, 15] {
            let d = spotless_crypto::digest_bytes(format!("state-{h}").as_bytes());
            assert!(dir.path().join(chunk_file_name(&d)).exists());
        }
    }

    #[test]
    fn truncated_manifest_is_corrupt() {
        let dir = tempdir().unwrap();
        let path = write_snapshot(dir.path(), &snap(4, &[b"state"])).unwrap();
        let data = fs::read(&path).unwrap();
        fs::write(&path, &data[..data.len() - 3]).unwrap();
        assert!(matches!(
            read_snapshot(&path).unwrap_err(),
            StorageError::Corrupt { .. }
        ));
    }

    #[test]
    fn version_bump_is_reported() {
        let dir = tempdir().unwrap();
        let path = write_snapshot(dir.path(), &snap(4, &[b"state"])).unwrap();
        let mut data = fs::read(&path).unwrap();
        data[8..12].copy_from_slice(&99u32.to_le_bytes());
        // Recompute the CRC so only the version differs.
        let body = data.len() - 4;
        let crc = crc32c(&data[..body]);
        data[body..].copy_from_slice(&crc.to_le_bytes());
        fs::write(&path, &data).unwrap();
        assert!(matches!(
            read_snapshot(&path).unwrap_err(),
            StorageError::UnsupportedVersion { version: 99, .. }
        ));
    }
}
