//! Snapshot files: a point-in-time copy of the executed state.
//!
//! A snapshot lets recovery skip replaying the whole block log and lets
//! the log prune segments below the snapshot height (the protocol's GC
//! horizon — DESIGN.md §7.5 deviation 5). The file carries an opaque
//! application-state payload (the key-value store serialization in the
//! examples), the ledger height it covers, and the ledger head hash at
//! that height so recovery can verify the remaining log tail chains onto
//! it.
//!
//! Snapshots are written atomically: payload to `<name>.tmp`, fsync,
//! rename over the final name, fsync the directory. A crash mid-write
//! leaves either the old snapshot set or the new one — never a
//! half-written file under the final name. Invalid snapshot files are
//! skipped (not trusted, not deleted) by [`latest_snapshot`]; recovery
//! falls back to the next-best one, so a corrupted newest snapshot
//! degrades to a longer log replay instead of an outage.

use crate::codec::{decode_block, encode_block, Reader, Writer};
use crate::crc32::crc32c;
use crate::StorageError;
use spotless_ledger::Block;
use spotless_types::{BatchId, Digest};
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

/// Magic bytes opening every snapshot file.
pub const MAGIC: [u8; 8] = *b"SPLSSNP1";
/// Current snapshot format version. Version 2 added the certified head
/// block, which makes a snapshot a self-contained, verifiable state
/// transfer artifact (the receiver checks the head block's hash and
/// commit certificate instead of trusting the sender's word).
pub const VERSION: u32 = 2;

/// A decoded snapshot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Snapshot {
    /// Number of ledger blocks the snapshot covers (the height at which
    /// log replay resumes).
    pub height: u64,
    /// Ledger head hash after block `height - 1` (zero when `height == 0`).
    pub head_hash: Digest,
    /// The block at `height - 1` — the carrier of the head's commit
    /// certificate, retained even after the log prunes the block so the
    /// snapshot can be served to (and verified by) a recovering peer.
    /// `None` only for the empty snapshot at `height == 0`.
    pub head_block: Option<Block>,
    /// Ids of the most recently committed batches the snapshot covers
    /// (oldest first, bounded by `spotless_ledger::RECENT_BATCHES_CAP`).
    /// Seeds the re-commit dedup filter after recovery or state
    /// transfer — see `spotless_ledger::RecentBatches`.
    pub recent_ids: Vec<BatchId>,
    /// Opaque application state (owned by the caller; the storage layer
    /// neither parses nor validates it beyond the checksum).
    pub app_state: Vec<u8>,
}

/// File name for a snapshot covering `height` blocks.
pub fn snapshot_file_name(height: u64) -> String {
    format!("snap-{height:016x}.snap")
}

/// Parses the covered height back out of a snapshot file name.
pub fn parse_snapshot_file_name(name: &str) -> Option<u64> {
    let hex = name.strip_prefix("snap-")?.strip_suffix(".snap")?;
    if hex.len() != 16 {
        return None;
    }
    u64::from_str_radix(hex, 16).ok()
}

/// Sanity bound on a snapshot's recent-id list (see
/// `spotless_ledger::RECENT_BATCHES_CAP`; a larger prefix is
/// corruption, not data).
const MAX_RECENT_IDS: u32 = 1 << 16;

fn encode(snap: &Snapshot) -> Vec<u8> {
    let block_bytes = snap.head_block.as_ref().map(encode_block);
    let mut w = Writer::with_capacity(96 + snap.app_state.len());
    w.u64(snap.height);
    w.digest(&snap.head_hash);
    w.bytes(block_bytes.as_deref().unwrap_or(&[]));
    w.u32(snap.recent_ids.len() as u32);
    for id in &snap.recent_ids {
        w.u64(id.0);
    }
    w.bytes(&snap.app_state);
    let body = w.into_bytes();
    let mut buf = Vec::with_capacity(16 + body.len());
    buf.extend_from_slice(&MAGIC);
    buf.extend_from_slice(&VERSION.to_le_bytes());
    buf.extend_from_slice(&body);
    let crc = crc32c(&buf);
    buf.extend_from_slice(&crc.to_le_bytes());
    buf
}

fn decode(data: &[u8], path: &Path) -> Result<Snapshot, StorageError> {
    // magic(8) version(4) [codec-framed body] crc(4); the body reuses
    // the length-checked `codec::Reader` helpers so every field failure
    // names the field instead of re-deriving offset arithmetic here.
    const FRAMING: usize = 8 + 4 + 4;
    if data.len() < FRAMING {
        return Err(StorageError::corrupt(
            path,
            0,
            "snapshot shorter than header",
        ));
    }
    if data[..8] != MAGIC {
        return Err(StorageError::corrupt(path, 0, "bad snapshot magic"));
    }
    let version = u32::from_le_bytes([data[8], data[9], data[10], data[11]]);
    if version != VERSION {
        return Err(StorageError::UnsupportedVersion {
            path: path.to_path_buf(),
            version,
        });
    }
    let body_len = data.len() - 4;
    let stored_crc = u32::from_le_bytes([
        data[body_len],
        data[body_len + 1],
        data[body_len + 2],
        data[body_len + 3],
    ]);
    if crc32c(&data[..body_len]) != stored_crc {
        return Err(StorageError::corrupt(
            path,
            body_len as u64,
            "snapshot CRC mismatch",
        ));
    }
    let codec_err = |source| StorageError::Codec {
        path: path.to_path_buf(),
        source,
    };
    let mut r = Reader::new(&data[12..body_len]);
    let height = r.u64("snapshot.height").map_err(codec_err)?;
    let head_hash = r.digest("snapshot.head_hash").map_err(codec_err)?;
    let block_bytes = r.bytes("snapshot.head_block").map_err(codec_err)?;
    let head_block = if block_bytes.is_empty() {
        None
    } else {
        Some(decode_block(block_bytes).map_err(codec_err)?)
    };
    let ids_len = r.u32("snapshot.recent_ids.len").map_err(codec_err)?;
    if ids_len > MAX_RECENT_IDS {
        return Err(StorageError::corrupt(
            path,
            12,
            "snapshot recent-id list exceeds the sanity bound",
        ));
    }
    let mut recent_ids = Vec::with_capacity(ids_len as usize);
    for _ in 0..ids_len {
        recent_ids.push(BatchId(r.u64("snapshot.recent_ids[]").map_err(codec_err)?));
    }
    let app_state = r.bytes("snapshot.app_state").map_err(codec_err)?.to_vec();
    r.finish("snapshot").map_err(codec_err)?;
    Ok(Snapshot {
        height,
        head_hash,
        head_block,
        recent_ids,
        app_state,
    })
}

fn sync_dir(dir: &Path) -> Result<(), StorageError> {
    // Durability of the rename itself requires fsyncing the directory
    // inode on POSIX systems.
    let d = File::open(dir).map_err(|e| StorageError::io(dir, "open dir", e))?;
    d.sync_all()
        .map_err(|e| StorageError::io(dir, "fsync dir", e))
}

/// Atomically writes `snap` into `dir`, returning the final path.
pub fn write_snapshot(dir: &Path, snap: &Snapshot) -> Result<PathBuf, StorageError> {
    let final_path = dir.join(snapshot_file_name(snap.height));
    let tmp_path = dir.join(format!("{}.tmp", snapshot_file_name(snap.height)));
    let bytes = encode(snap);
    {
        let mut f = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp_path)
            .map_err(|e| StorageError::io(&tmp_path, "create snapshot tmp", e))?;
        f.write_all(&bytes)
            .map_err(|e| StorageError::io(&tmp_path, "write snapshot", e))?;
        f.sync_data()
            .map_err(|e| StorageError::io(&tmp_path, "fsync snapshot", e))?;
    }
    fs::rename(&tmp_path, &final_path)
        .map_err(|e| StorageError::io(&final_path, "rename snapshot", e))?;
    sync_dir(dir)?;
    Ok(final_path)
}

/// Reads and validates one snapshot file.
pub fn read_snapshot(path: &Path) -> Result<Snapshot, StorageError> {
    let mut f = File::open(path).map_err(|e| StorageError::io(path, "open snapshot", e))?;
    let mut data = Vec::new();
    f.read_to_end(&mut data)
        .map_err(|e| StorageError::io(path, "read snapshot", e))?;
    decode(&data, path)
}

/// Finds the newest *valid* snapshot in `dir`, if any. Files with bad
/// checksums or unreadable contents are skipped; leftover `.tmp` files
/// are ignored entirely (they are by definition incomplete).
pub fn latest_snapshot(dir: &Path) -> Result<Option<(PathBuf, Snapshot)>, StorageError> {
    let mut heights: Vec<(u64, PathBuf)> = Vec::new();
    let entries = fs::read_dir(dir).map_err(|e| StorageError::io(dir, "list dir", e))?;
    for entry in entries {
        let entry = entry.map_err(|e| StorageError::io(dir, "list dir", e))?;
        let name = entry.file_name();
        if let Some(h) = name.to_str().and_then(parse_snapshot_file_name) {
            heights.push((h, entry.path()));
        }
    }
    heights.sort_unstable_by_key(|(h, _)| std::cmp::Reverse(*h));
    for (_, path) in heights {
        match read_snapshot(&path) {
            Ok(snap) => return Ok(Some((path, snap))),
            Err(StorageError::Io { .. }) | Err(StorageError::Corrupt { .. }) => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(None)
}

/// Deletes snapshot files strictly below `keep_height` except the newest
/// of them (one older snapshot is kept as a fallback should the newest
/// turn out unreadable on the next recovery).
pub fn prune_snapshots(dir: &Path, keep_height: u64) -> Result<usize, StorageError> {
    let mut old: Vec<(u64, PathBuf)> = Vec::new();
    let entries = fs::read_dir(dir).map_err(|e| StorageError::io(dir, "list dir", e))?;
    for entry in entries {
        let entry = entry.map_err(|e| StorageError::io(dir, "list dir", e))?;
        if let Some(h) = entry
            .file_name()
            .to_str()
            .and_then(parse_snapshot_file_name)
        {
            if h < keep_height {
                old.push((h, entry.path()));
            }
        }
    }
    old.sort_unstable_by_key(|(h, _)| *h);
    old.pop(); // retain the newest of the old ones as a fallback
    let mut removed = 0;
    for (_, path) in old {
        fs::remove_file(&path).map_err(|e| StorageError::io(&path, "remove snapshot", e))?;
        removed += 1;
    }
    Ok(removed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempfile::tempdir;

    fn snap(height: u64, state: &[u8]) -> Snapshot {
        Snapshot {
            height,
            head_hash: Digest::from_u64(height * 31),
            head_block: None,
            recent_ids: vec![BatchId(height), BatchId(height + 1)],
            app_state: state.to_vec(),
        }
    }

    #[test]
    fn write_read_roundtrip() {
        let dir = tempdir().unwrap();
        let s = snap(17, b"kv-state-bytes");
        let path = write_snapshot(dir.path(), &s).unwrap();
        assert_eq!(read_snapshot(&path).unwrap(), s);
    }

    #[test]
    fn head_block_roundtrips() {
        let mut ledger = spotless_ledger::Ledger::new();
        for i in 0..3u64 {
            ledger.append(
                spotless_types::BatchId(i),
                Digest::from_u64(i),
                10,
                spotless_ledger::CommitProof {
                    instance: spotless_types::InstanceId(0),
                    view: spotless_types::View(i),
                    phase: spotless_types::CertPhase::Strong,
                    signers: vec![
                        spotless_types::ReplicaId(0),
                        spotless_types::ReplicaId(1),
                        spotless_types::ReplicaId(2),
                    ],
                },
            );
        }
        let dir = tempdir().unwrap();
        let s = Snapshot {
            height: 3,
            head_hash: ledger.head_hash(),
            head_block: Some(ledger.block(2).unwrap().clone()),
            recent_ids: vec![BatchId(0), BatchId(1), BatchId(2)],
            app_state: b"state".to_vec(),
        };
        let path = write_snapshot(dir.path(), &s).unwrap();
        let back = read_snapshot(&path).unwrap();
        assert_eq!(back, s);
        assert!(back.head_block.unwrap().verify_hash());
    }

    #[test]
    fn empty_app_state_roundtrips() {
        let dir = tempdir().unwrap();
        let s = snap(0, b"");
        let path = write_snapshot(dir.path(), &s).unwrap();
        assert_eq!(read_snapshot(&path).unwrap(), s);
    }

    #[test]
    fn latest_picks_the_highest_valid() {
        let dir = tempdir().unwrap();
        write_snapshot(dir.path(), &snap(5, b"old")).unwrap();
        write_snapshot(dir.path(), &snap(12, b"new")).unwrap();
        let (_, got) = latest_snapshot(dir.path()).unwrap().unwrap();
        assert_eq!(got.height, 12);
    }

    #[test]
    fn corrupted_newest_falls_back_to_older() {
        let dir = tempdir().unwrap();
        write_snapshot(dir.path(), &snap(5, b"old")).unwrap();
        let newest = write_snapshot(dir.path(), &snap(12, b"new")).unwrap();
        let mut data = fs::read(&newest).unwrap();
        let last = data.len() - 10;
        data[last] ^= 0xFF;
        fs::write(&newest, &data).unwrap();
        let (_, got) = latest_snapshot(dir.path()).unwrap().unwrap();
        assert_eq!(got.height, 5);
        assert_eq!(got.app_state, b"old");
    }

    #[test]
    fn leftover_tmp_files_are_ignored() {
        let dir = tempdir().unwrap();
        write_snapshot(dir.path(), &snap(5, b"good")).unwrap();
        fs::write(
            dir.path().join(format!("{}.tmp", snapshot_file_name(99))),
            b"half-written garbage",
        )
        .unwrap();
        let (_, got) = latest_snapshot(dir.path()).unwrap().unwrap();
        assert_eq!(got.height, 5);
    }

    #[test]
    fn empty_dir_has_no_snapshot() {
        let dir = tempdir().unwrap();
        assert!(latest_snapshot(dir.path()).unwrap().is_none());
    }

    #[test]
    fn prune_keeps_one_fallback() {
        let dir = tempdir().unwrap();
        for h in [3, 7, 11, 15] {
            write_snapshot(dir.path(), &snap(h, b"s")).unwrap();
        }
        let removed = prune_snapshots(dir.path(), 15).unwrap();
        // 3, 7, 11 are below 15; 11 is kept as fallback.
        assert_eq!(removed, 2);
        assert!(read_snapshot(&dir.path().join(snapshot_file_name(11))).is_ok());
        assert!(read_snapshot(&dir.path().join(snapshot_file_name(15))).is_ok());
        assert!(!dir.path().join(snapshot_file_name(3)).exists());
        assert!(!dir.path().join(snapshot_file_name(7)).exists());
    }

    #[test]
    fn truncated_snapshot_is_corrupt() {
        let dir = tempdir().unwrap();
        let path = write_snapshot(dir.path(), &snap(4, b"state")).unwrap();
        let data = fs::read(&path).unwrap();
        fs::write(&path, &data[..data.len() - 3]).unwrap();
        assert!(matches!(
            read_snapshot(&path).unwrap_err(),
            StorageError::Corrupt { .. }
        ));
    }

    #[test]
    fn version_bump_is_reported() {
        let dir = tempdir().unwrap();
        let path = write_snapshot(dir.path(), &snap(4, b"state")).unwrap();
        let mut data = fs::read(&path).unwrap();
        data[8..12].copy_from_slice(&99u32.to_le_bytes());
        // Recompute the CRC so only the version differs.
        let body = data.len() - 4;
        let crc = crc32c(&data[..body]);
        data[body..].copy_from_slice(&crc.to_le_bytes());
        fs::write(&path, &data).unwrap();
        assert!(matches!(
            read_snapshot(&path).unwrap_err(),
            StorageError::UnsupportedVersion { version: 99, .. }
        ));
    }
}
