//! Durable storage for the SpotLess ledger.
//!
//! Apache ResilientDB (the paper's testbed, §6.1) keeps "an immutable
//! blockchain ledger that holds an ordered copy of all executed
//! transactions". `spotless-ledger` provides that chain in memory; this
//! crate makes it survive restarts:
//!
//! * [`crc32`] — CRC-32C, implemented from scratch, framing every byte
//!   written;
//! * [`codec`] — a pinned, fail-closed binary format for block records;
//! * [`segment`] — append-only segment files with torn-tail detection;
//! * [`log`] — the segmented block log with rotation and pruning;
//! * [`snapshot`] — atomic state snapshots (manifest + content-addressed
//!   chunks, format v3) bounding replay and enabling pruning;
//! * [`transfer`] — the crash-safe partial-install journal a chunked
//!   state transfer resumes from after an interruption;
//! * [`DurableLedger`] — the assembled store: an in-memory
//!   [`spotless_ledger::Ledger`] whose appends are persisted
//!   before they are acknowledged, with crash recovery on open.
//!
//! The design follows the write-ahead-log discipline of LSM stores
//! (LevelDB/RocksDB): framed records behind checksums, truncate-on-torn-
//! tail, snapshot-then-prune. Recovery is exercised heavily in tests,
//! including randomized crash injection (see `tests/crash_recovery.rs`).
//!
//! ```
//! use spotless_storage::{DurableLedger, DurableLedgerOptions};
//! use spotless_ledger::CommitProof;
//! use spotless_types::{BatchId, CertPhase, Digest, InstanceId, ReplicaId, Signature, View};
//!
//! let dir = tempfile::tempdir().unwrap();
//! let proof = CommitProof {
//!     instance: InstanceId(0),
//!     view: View(1),
//!     phase: CertPhase::Strong,
//!     voted: Digest::from_u64(7),
//!     slot: 0,
//!     signers: vec![ReplicaId(0), ReplicaId(1), ReplicaId(2)],
//!     sigs: vec![Signature::ZERO; 3],
//! };
//! // First run: append a block (sealing the post-execution state
//! // root), then "crash" (drop).
//! {
//!     let (mut led, _) =
//!         DurableLedger::open(dir.path(), DurableLedgerOptions::default()).unwrap();
//!     led.append_batch(BatchId(1), Digest::from_u64(1), 100, Digest::from_u64(7), proof, b"txns")
//!         .unwrap();
//! }
//! // Second run: the block is still there and the chain verifies.
//! let (led, report) =
//!     DurableLedger::open(dir.path(), DurableLedgerOptions::default()).unwrap();
//! assert_eq!(led.ledger().height(), 1);
//! assert_eq!(report.replayed_blocks, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod crc32;
pub mod log;
pub mod segment;
pub mod snapshot;
pub mod transfer;

use crate::log::{BlockLog, LogOptions};
use crate::snapshot::{latest_snapshot, prune_snapshots, write_snapshot, Snapshot};
use spotless_ledger::{Block, CommitProof, Ledger, LedgerError, RecentBatches};
use spotless_types::{BatchId, Digest};
use std::fmt;
use std::path::{Path, PathBuf};

/// Everything that can go wrong in the storage layer.
#[derive(Debug)]
pub enum StorageError {
    /// An operating-system I/O failure.
    Io {
        /// File or directory involved.
        path: PathBuf,
        /// What was being attempted.
        op: &'static str,
        /// The underlying error.
        source: std::io::Error,
    },
    /// On-disk bytes that cannot be data written by this crate.
    Corrupt {
        /// The offending file.
        path: PathBuf,
        /// Approximate byte offset of the problem.
        offset: u64,
        /// Human-readable diagnosis.
        detail: &'static str,
    },
    /// A file written by a newer (or unknown) format version.
    UnsupportedVersion {
        /// The offending file.
        path: PathBuf,
        /// The version found.
        version: u32,
    },
    /// A record frame was intact but its payload did not decode.
    Codec {
        /// The offending file.
        path: PathBuf,
        /// The decode failure.
        source: codec::CodecError,
    },
    /// A block was appended out of height order.
    HeightGap {
        /// The block's height.
        got: u64,
        /// The height the log expected.
        expected: u64,
    },
    /// Replayed blocks failed chain verification.
    Ledger {
        /// The underlying chain error.
        source: LedgerError,
    },
}

impl StorageError {
    pub(crate) fn io(path: &Path, op: &'static str, source: std::io::Error) -> StorageError {
        StorageError::Io {
            path: path.to_path_buf(),
            op,
            source,
        }
    }

    pub(crate) fn corrupt(path: &Path, offset: u64, detail: &'static str) -> StorageError {
        StorageError::Corrupt {
            path: path.to_path_buf(),
            offset,
            detail,
        }
    }
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io { path, op, source } => {
                write!(f, "{op} on {}: {source}", path.display())
            }
            StorageError::Corrupt {
                path,
                offset,
                detail,
            } => write!(
                f,
                "{} is corrupt near byte {offset}: {detail}",
                path.display()
            ),
            StorageError::UnsupportedVersion { path, version } => write!(
                f,
                "{} uses unsupported format version {version}",
                path.display()
            ),
            StorageError::Codec { path, source } => {
                write!(
                    f,
                    "{} holds an undecodable record: {source}",
                    path.display()
                )
            }
            StorageError::HeightGap { got, expected } => {
                write!(
                    f,
                    "append out of order: block {got}, log expects {expected}"
                )
            }
            StorageError::Ledger { source } => {
                write!(f, "replayed chain failed verification: {source}")
            }
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io { source, .. } => Some(source),
            StorageError::Codec { source, .. } => Some(source),
            StorageError::Ledger { source } => Some(source),
            _ => None,
        }
    }
}

impl From<LedgerError> for StorageError {
    fn from(source: LedgerError) -> StorageError {
        StorageError::Ledger { source }
    }
}

/// Tuning knobs for [`DurableLedger`].
#[derive(Clone, Copy, Debug)]
pub struct DurableLedgerOptions {
    /// Block-log options (segment size, sync policy).
    pub log: LogOptions,
    /// Write a snapshot (and prune) every this many blocks. `0`
    /// disables automatic snapshots.
    pub snapshot_every: u64,
}

impl Default for DurableLedgerOptions {
    fn default() -> DurableLedgerOptions {
        DurableLedgerOptions {
            log: LogOptions::default(),
            snapshot_every: 1024,
        }
    }
}

/// What [`DurableLedger::open`] reconstructed.
#[derive(Debug)]
pub struct RecoveryReport {
    /// Height covered by the snapshot recovery started from (0 = none).
    pub snapshot_height: u64,
    /// Application meta bytes carried by that snapshot (empty when none).
    pub app_meta: Vec<u8>,
    /// Application state chunks carried by that snapshot, in order
    /// (empty when none).
    pub app_chunks: Vec<Vec<u8>>,
    /// Blocks replayed from the log above the snapshot.
    pub replayed_blocks: u64,
    /// Batch payloads of the replayed blocks, in height order starting
    /// at `snapshot_height` — the log persists them precisely so the
    /// runtime can re-execute the tail above the snapshot (and serve it
    /// to peers) without asking anyone.
    pub replayed_payloads: Vec<Vec<u8>>,
    /// Whether a torn tail was truncated from the newest segment.
    pub truncated_tail: bool,
}

/// A crash-safe ledger: every append is persisted to the segmented log
/// before it is visible, and periodic snapshots bound both recovery
/// time and disk usage.
pub struct DurableLedger {
    dir: PathBuf,
    log: BlockLog,
    ledger: Ledger,
    opts: DurableLedgerOptions,
    last_snapshot: u64,
    /// The block just below the ledger's base (the newest snapshot's
    /// head block). Retained so the snapshot — head certificate
    /// included — can be served to a recovering peer even after the log
    /// pruned everything the snapshot covers.
    base_block: Option<Block>,
    /// Bounded window of recently committed batch ids, persisted with
    /// every snapshot: the dedup filter that stops a rejoining protocol
    /// instance from re-executing batches a snapshot already covers
    /// (the ledger's own index forgets everything below its base).
    recent: RecentBatches,
}

impl DurableLedger {
    /// Opens the store in `dir`, recovering from whatever a previous
    /// process (or crash) left behind.
    pub fn open(
        dir: &Path,
        opts: DurableLedgerOptions,
    ) -> Result<(DurableLedger, RecoveryReport), StorageError> {
        std::fs::create_dir_all(dir).map_err(|e| StorageError::io(dir, "create dir", e))?;
        let snap = latest_snapshot(dir)?;
        let (resume_height, base_hash, app_meta, app_chunks, base_block, recent_ids) = match snap {
            Some((_, s)) => (
                s.height,
                s.head_hash,
                s.app_meta,
                s.app_chunks,
                s.head_block,
                s.recent_ids,
            ),
            None => (0, Digest::ZERO, Vec::new(), Vec::new(), None, Vec::new()),
        };
        let (mut log, recovery) = BlockLog::open(dir, opts.log, resume_height)?;
        if log.next_height() < resume_height {
            // The whole log predates the snapshot: a crash interrupted a
            // snapshot install after the snapshot became durable but
            // before the log reset finished. The snapshot wins — finish
            // the reset now.
            log.reset(resume_height)?;
        }
        let mut ledger = Ledger::with_base(resume_height, base_hash);
        let mut recent = RecentBatches::new();
        for id in &recent_ids {
            recent.push(*id);
        }
        let mut replayed = 0u64;
        let mut replayed_payloads = Vec::new();
        for (block, payload) in recovery.blocks {
            if block.height < resume_height {
                continue; // older than the snapshot: not yet pruned, skip
            }
            recent.push(block.batch_id);
            ledger.append_existing(block)?;
            replayed_payloads.push(payload);
            replayed += 1;
        }
        let report = RecoveryReport {
            snapshot_height: resume_height,
            app_meta,
            app_chunks,
            replayed_blocks: replayed,
            replayed_payloads,
            truncated_tail: recovery.truncated_tail,
        };
        Ok((
            DurableLedger {
                dir: dir.to_path_buf(),
                log,
                ledger,
                opts,
                last_snapshot: resume_height,
                base_block,
                recent,
            },
            report,
        ))
    }

    /// The in-memory chain view.
    pub fn ledger(&self) -> &Ledger {
        &self.ledger
    }

    /// The block just below the ledger's base (the newest snapshot's
    /// head block), if the store has ever snapshotted past genesis.
    pub fn base_block(&self) -> Option<&Block> {
        self.base_block.as_ref()
    }

    /// The bounded window of recently committed batch ids (everything
    /// appended plus whatever the newest snapshot carried).
    pub fn recent_batches(&self) -> &RecentBatches {
        &self.recent
    }

    /// Appends an executed batch: the block — and the batch payload it
    /// commits, which the log persists for self-contained recovery — is
    /// written to the log (honouring the sync policy) before it becomes
    /// visible in [`ledger`](DurableLedger::ledger). `state_root` is the
    /// application state's Merkle commitment *after* executing the
    /// batch (execute-then-seal — header v3).
    #[allow(clippy::too_many_arguments)]
    pub fn append_batch(
        &mut self,
        batch_id: BatchId,
        batch_digest: Digest,
        txns: u32,
        state_root: Digest,
        proof: CommitProof,
        payload: &[u8],
    ) -> Result<Block, StorageError> {
        let block = self
            .ledger
            .append(batch_id, batch_digest, txns, state_root, proof)
            .clone();
        self.recent.push(batch_id);
        match self.log.append(&block, payload) {
            Ok(()) => Ok(block),
            Err(e) => {
                // The write failed: the in-memory chain must not expose
                // a block that is not durable. There is no pop API on
                // Ledger by design (it is append-only), so fail closed:
                // the caller must drop this DurableLedger and re-open.
                Err(e)
            }
        }
    }

    /// Appends a block that was built elsewhere — decoded from a peer's
    /// catch-up response or replayed from another log — validating (via
    /// [`Ledger::append_existing`]) that it extends the current head
    /// before it is persisted. The write honours the sync policy exactly
    /// like [`append_batch`](DurableLedger::append_batch).
    pub fn append_block(&mut self, block: Block, payload: &[u8]) -> Result<(), StorageError> {
        self.ledger.append_existing(block.clone())?;
        self.recent.push(block.batch_id);
        // Same fail-closed contract as append_batch: a failed write
        // poisons this handle (drop and re-open).
        self.log.append(&block, payload)
    }

    /// True iff enough blocks have accumulated since the last snapshot
    /// that [`maybe_snapshot`](DurableLedger::maybe_snapshot) would write
    /// one. Callers with an expensive-to-serialize application state can
    /// check this before materializing the state bytes.
    pub fn snapshot_due(&self) -> bool {
        self.opts.snapshot_every != 0
            && self.ledger.height() >= self.last_snapshot + self.opts.snapshot_every
    }

    /// Writes a snapshot of the application state (meta bytes + state
    /// chunks) at the current height if one is due under
    /// `snapshot_every`, pruning old segments and snapshots. Returns
    /// the snapshot height if one was written.
    ///
    /// Call this after executing blocks, passing the serialized
    /// application state that reflects every block up to
    /// `ledger().height()`. Chunks are stored content-addressed, so
    /// chunks unchanged since the previous snapshot are not rewritten.
    pub fn maybe_snapshot(
        &mut self,
        app_meta: &[u8],
        app_chunks: &[Vec<u8>],
    ) -> Result<Option<u64>, StorageError> {
        if !self.snapshot_due() {
            return Ok(None);
        }
        self.force_snapshot(app_meta, app_chunks).map(Some)
    }

    /// Unconditionally snapshots the application state at the current
    /// height and prunes. See
    /// [`maybe_snapshot`](DurableLedger::maybe_snapshot).
    pub fn force_snapshot(
        &mut self,
        app_meta: &[u8],
        app_chunks: &[Vec<u8>],
    ) -> Result<u64, StorageError> {
        let height = self.ledger.height();
        let head_block = match height.checked_sub(1) {
            Some(h) => self.ledger.block(h).cloned().or_else(|| {
                // No block above the base since the last snapshot: the
                // previous snapshot's head block is still the head.
                self.base_block.clone()
            }),
            None => None,
        };
        // Order matters for crash safety: (1) the log must be durable up
        // to `height`, (2) the snapshot must be durable, (3) only then
        // may pruning delete the data the snapshot replaces.
        self.log.sync()?;
        write_snapshot(
            &self.dir,
            &Snapshot {
                height,
                head_hash: self.ledger.head_hash(),
                head_block: head_block.clone(),
                recent_ids: self.recent.iter().collect(),
                app_meta: app_meta.to_vec(),
                app_chunks: app_chunks.to_vec(),
            },
        )?;
        self.log.prune_below(height)?;
        prune_snapshots(&self.dir, height)?;
        self.last_snapshot = height;
        self.base_block = head_block;
        Ok(height)
    }

    /// Installs a state-transfer snapshot received from a peer,
    /// replacing this store's chain and state wholesale: the snapshot
    /// is made durable, the block log is reset to resume at
    /// `snap.height`, and the in-memory ledger restarts from the
    /// snapshot's head. The caller is responsible for having verified
    /// the snapshot (head-block hash + commit certificate) — the store
    /// only enforces structural consistency between the fields.
    ///
    /// Used by the runtime's snapshot state transfer when every peer
    /// has pruned the history this replica is missing; the local blocks
    /// (a verified prefix of what the snapshot covers) are discarded in
    /// favour of the certified snapshot head.
    pub fn install_snapshot(&mut self, snap: &Snapshot) -> Result<(), StorageError> {
        let Some(head) = &snap.head_block else {
            return Err(StorageError::corrupt(
                &self.dir,
                0,
                "state-transfer snapshot carries no head block",
            ));
        };
        if head.height + 1 != snap.height || head.hash != snap.head_hash {
            return Err(StorageError::corrupt(
                &self.dir,
                0,
                "state-transfer snapshot head block disagrees with its height/hash",
            ));
        }
        if snap.height < self.ledger.height() {
            return Err(StorageError::corrupt(
                &self.dir,
                0,
                "state-transfer snapshot is older than the local chain",
            ));
        }
        // Durability order: snapshot first, then the log reset — a crash
        // in between recovers from the new snapshot and ignores the
        // stale log tail below it (blocks under the snapshot height are
        // skipped on replay exactly like pruned history).
        write_snapshot(&self.dir, snap)?;
        self.log.reset(snap.height)?;
        prune_snapshots(&self.dir, snap.height)?;
        self.ledger = Ledger::with_base(snap.height, snap.head_hash);
        self.last_snapshot = snap.height;
        self.base_block = snap.head_block.clone();
        for id in &snap.recent_ids {
            self.recent.push(*id);
        }
        Ok(())
    }

    /// Flushes and fsyncs the log (for [`log::SyncPolicy::Manual`]).
    pub fn sync(&mut self) -> Result<(), StorageError> {
        self.log.sync()
    }

    /// Diagnostic: number of segment files currently on disk.
    pub fn segment_count(&self) -> usize {
        self.log.segment_count()
    }

    /// The directory this store lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spotless_types::{InstanceId, ReplicaId, View};

    fn proof(view: u64) -> CommitProof {
        CommitProof {
            instance: InstanceId(0),
            view: View(view),
            phase: spotless_types::CertPhase::Strong,
            voted: Digest::from_u64(view * 7 + 1),
            slot: 0,
            signers: vec![ReplicaId(0), ReplicaId(1), ReplicaId(2)],
            sigs: vec![spotless_types::Signature::ZERO; 3],
        }
    }

    #[test]
    fn append_block_persists_foreign_blocks() {
        let src_dir = tempfile::tempdir().unwrap();
        let dst_dir = tempfile::tempdir().unwrap();
        let opts = DurableLedgerOptions::default();
        let (mut src, _) = DurableLedger::open(src_dir.path(), opts).unwrap();
        for i in 0..5 {
            src.append_batch(
                BatchId(i),
                Digest::from_u64(i),
                10,
                Digest::from_u64(i + 500),
                proof(i),
                b"payload",
            )
            .unwrap();
        }
        {
            let (mut dst, _) = DurableLedger::open(dst_dir.path(), opts).unwrap();
            for b in src.ledger().iter() {
                dst.append_block(b.clone(), b"payload").unwrap();
            }
        }
        // The replica crashes; reopening replays the foreign blocks.
        let (dst, report) = DurableLedger::open(dst_dir.path(), opts).unwrap();
        assert_eq!(report.replayed_blocks, 5);
        assert_eq!(dst.ledger().head_hash(), src.ledger().head_hash());
    }

    #[test]
    fn append_block_rejects_blocks_that_do_not_extend_the_head() {
        let dir = tempfile::tempdir().unwrap();
        let (mut led, _) =
            DurableLedger::open(dir.path(), DurableLedgerOptions::default()).unwrap();
        let good = led
            .append_batch(
                BatchId(0),
                Digest::from_u64(0),
                10,
                Digest::from_u64(500),
                proof(0),
                b"payload",
            )
            .unwrap();
        // Height 0 again: wrong height for the current head.
        assert!(matches!(
            led.append_block(good, b"payload"),
            Err(StorageError::Ledger { .. })
        ));
        assert_eq!(led.ledger().height(), 1);
    }

    #[test]
    fn install_snapshot_replaces_chain_and_survives_reopen() {
        // A "peer" builds a chain and snapshots it.
        let peer_dir = tempfile::tempdir().unwrap();
        let (mut peer, _) =
            DurableLedger::open(peer_dir.path(), DurableLedgerOptions::default()).unwrap();
        for i in 0..8 {
            peer.append_batch(
                BatchId(i),
                Digest::from_u64(i),
                10,
                Digest::from_u64(i + 500),
                proof(i),
                b"payload",
            )
            .unwrap();
        }
        let transferred = Snapshot {
            height: 8,
            head_hash: peer.ledger().head_hash(),
            head_block: Some(peer.ledger().block(7).unwrap().clone()),
            recent_ids: (0..8).map(BatchId).collect(),
            app_meta: b"kv-meta".to_vec(),
            app_chunks: vec![b"kv-bytes".to_vec()],
        };

        // A laggard holding an older prefix installs the snapshot.
        let dir = tempfile::tempdir().unwrap();
        let (mut led, _) =
            DurableLedger::open(dir.path(), DurableLedgerOptions::default()).unwrap();
        for i in 0..3 {
            led.append_batch(
                BatchId(i),
                Digest::from_u64(i),
                10,
                Digest::from_u64(i + 500),
                proof(i),
                b"payload",
            )
            .unwrap();
        }
        led.install_snapshot(&transferred).unwrap();
        assert_eq!(led.ledger().height(), 8);
        assert_eq!(led.ledger().base_height(), 8);
        assert_eq!(led.ledger().head_hash(), peer.ledger().head_hash());
        assert_eq!(led.base_block().unwrap().height, 7);

        // New appends chain over the installed head and survive reopen.
        led.append_batch(
            BatchId(100),
            Digest::from_u64(100),
            10,
            Digest::from_u64(600),
            proof(100),
            b"payload",
        )
        .unwrap();
        led.sync().unwrap();
        drop(led);
        let (led, report) =
            DurableLedger::open(dir.path(), DurableLedgerOptions::default()).unwrap();
        assert_eq!(report.snapshot_height, 8);
        assert_eq!(report.app_meta, b"kv-meta");
        assert_eq!(report.app_chunks, vec![b"kv-bytes".to_vec()]);
        assert_eq!(led.ledger().height(), 9);
        assert_eq!(led.base_block().unwrap().height, 7);
        led.ledger().verify().unwrap();
    }

    #[test]
    fn install_snapshot_rejects_inconsistent_artifacts() {
        let dir = tempfile::tempdir().unwrap();
        let (mut led, _) =
            DurableLedger::open(dir.path(), DurableLedgerOptions::default()).unwrap();
        let headless = Snapshot {
            height: 5,
            head_hash: Digest::from_u64(5),
            head_block: None,
            recent_ids: Vec::new(),
            app_meta: Vec::new(),
            app_chunks: Vec::new(),
        };
        assert!(matches!(
            led.install_snapshot(&headless),
            Err(StorageError::Corrupt { .. })
        ));
        // Head block at the wrong height.
        let other = {
            let d = tempfile::tempdir().unwrap();
            let (mut l, _) =
                DurableLedger::open(d.path(), DurableLedgerOptions::default()).unwrap();
            l.append_batch(
                BatchId(0),
                Digest::from_u64(0),
                10,
                Digest::from_u64(500),
                proof(0),
                b"payload",
            )
            .unwrap();
            l.ledger().block(0).unwrap().clone()
        };
        let mismatched = Snapshot {
            height: 5,
            head_hash: other.hash,
            head_block: Some(other),
            recent_ids: Vec::new(),
            app_meta: Vec::new(),
            app_chunks: Vec::new(),
        };
        assert!(matches!(
            led.install_snapshot(&mismatched),
            Err(StorageError::Corrupt { .. })
        ));
        assert_eq!(led.ledger().height(), 0, "failed installs change nothing");
    }

    #[test]
    fn force_snapshot_retains_its_head_block_across_pruning() {
        let dir = tempfile::tempdir().unwrap();
        let opts = DurableLedgerOptions {
            log: LogOptions {
                max_segment_bytes: 256,
                sync: crate::log::SyncPolicy::Always,
            },
            snapshot_every: 4,
        };
        let (mut led, _) = DurableLedger::open(dir.path(), opts).unwrap();
        for i in 0..4 {
            led.append_batch(
                BatchId(i),
                Digest::from_u64(i),
                10,
                Digest::from_u64(i + 500),
                proof(i),
                b"payload",
            )
            .unwrap();
        }
        led.maybe_snapshot(b"meta", &[b"state".to_vec()]).unwrap();
        let head = led.base_block().expect("snapshot kept its head block");
        assert_eq!(head.height, 3);
        assert_eq!(head.hash, led.ledger().head_hash());
        // The head block survives reopen even though the log pruned it.
        drop(led);
        let (led, _) = DurableLedger::open(dir.path(), opts).unwrap();
        assert_eq!(led.base_block().unwrap().height, 3);
        assert!(led.ledger().block(3).is_none(), "chain tail was pruned");
    }

    #[test]
    fn snapshot_due_tracks_the_cadence() {
        let dir = tempfile::tempdir().unwrap();
        let opts = DurableLedgerOptions {
            log: LogOptions::default(),
            snapshot_every: 3,
        };
        let (mut led, _) = DurableLedger::open(dir.path(), opts).unwrap();
        for i in 0..3 {
            assert!(!led.snapshot_due(), "not due before block {i}");
            led.append_batch(
                BatchId(i),
                Digest::from_u64(i),
                10,
                Digest::from_u64(i + 500),
                proof(i),
                b"payload",
            )
            .unwrap();
        }
        assert!(led.snapshot_due());
        led.maybe_snapshot(b"meta", &[b"state".to_vec()]).unwrap();
        assert!(!led.snapshot_due());
        // Disabled cadence is never due.
        let dir2 = tempfile::tempdir().unwrap();
        let opts2 = DurableLedgerOptions {
            log: LogOptions::default(),
            snapshot_every: 0,
        };
        let (mut led2, _) = DurableLedger::open(dir2.path(), opts2).unwrap();
        led2.append_batch(
            BatchId(0),
            Digest::from_u64(0),
            10,
            Digest::from_u64(500),
            proof(0),
            b"payload",
        )
        .unwrap();
        assert!(!led2.snapshot_due());
    }
}
