//! The segmented block log: a directory of [`segment`](crate::segment)
//! files holding the ledger's blocks in height order.
//!
//! The log is the durability backbone of [`DurableLedger`](crate::DurableLedger)
//! (crate root): every committed block is appended (and optionally
//! fsynced) before the commit is acknowledged upward. Segments rotate at
//! a size threshold so pruning can reclaim space in whole-file units —
//! deleting a segment never rewrites live data.
//!
//! Recovery contract (checked by [`BlockLog::open`]):
//!
//! * segment sequence numbers are contiguous — a missing middle segment
//!   is unrecoverable corruption (blocks would be silently skipped);
//! * only the **newest** segment may end in a torn tail; a defect in an
//!   older segment is corruption (fsync ordering guarantees older
//!   segments were complete before newer ones were created);
//! * block heights decode contiguously; each segment's header
//!   `base_height` must match the first block it holds.

use crate::codec::{decode_block_with_payload, encode_block_with_payload};
use crate::segment::{
    parse_segment_file_name, scan_segment, segment_file_name, SegmentHeader, SegmentWriter,
};
use crate::StorageError;
use spotless_ledger::Block;
use std::fs;
use std::path::{Path, PathBuf};

/// When appends are fsynced.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum SyncPolicy {
    /// fsync after every append — maximum durability, the default.
    #[default]
    Always,
    /// fsync once per `n` appends (and on rotation/close). A crash can
    /// lose up to `n − 1` acknowledged blocks; appropriate when the
    /// consensus layer can re-fetch them from peers.
    EveryN(u32),
    /// Never fsync automatically; the caller invokes
    /// [`BlockLog::sync`] at its own checkpoints.
    Manual,
}

/// Tuning knobs for the block log.
#[derive(Clone, Copy, Debug)]
pub struct LogOptions {
    /// Rotate to a new segment once the active one reaches this size.
    pub max_segment_bytes: u64,
    /// Append durability policy.
    pub sync: SyncPolicy,
}

impl Default for LogOptions {
    fn default() -> LogOptions {
        LogOptions {
            max_segment_bytes: 4 * 1024 * 1024,
            sync: SyncPolicy::Always,
        }
    }
}

/// Metadata for one closed (non-active) segment.
#[derive(Clone, Debug)]
struct ClosedSegment {
    path: PathBuf,
    seq: u64,
    /// Height of the first block in the segment.
    base_height: u64,
    /// Height one past the last block in the segment.
    end_height: u64,
}

/// What [`BlockLog::open`] found on disk.
#[derive(Debug)]
pub struct LogRecovery {
    /// Every intact block in the log, in height order, paired with its
    /// batch payload (the log persists payloads so recovery can
    /// re-execute — and re-serve — the chain tail without peers).
    pub blocks: Vec<(Block, Vec<u8>)>,
    /// Whether a torn tail was truncated from the newest segment.
    pub truncated_tail: bool,
}

/// A directory of block segments with one active writer.
#[derive(Debug)]
pub struct BlockLog {
    dir: PathBuf,
    opts: LogOptions,
    closed: Vec<ClosedSegment>,
    active: SegmentWriter,
    /// Height the next appended block must have.
    next_height: u64,
    /// Appends since the last fsync (for [`SyncPolicy::EveryN`]).
    unsynced: u32,
}

impl BlockLog {
    /// Opens (or initializes) the log in `dir`, scanning all segments
    /// and returning every intact block for replay.
    ///
    /// `resume_height` is the height replay starts at (the snapshot
    /// height, or 0): blocks below it may already be pruned, so the
    /// first segment is allowed to start at or below `resume_height`
    /// but not above it.
    pub fn open(
        dir: &Path,
        opts: LogOptions,
        resume_height: u64,
    ) -> Result<(BlockLog, LogRecovery), StorageError> {
        fs::create_dir_all(dir).map_err(|e| StorageError::io(dir, "create log dir", e))?;
        let mut seqs: Vec<(u64, PathBuf)> = Vec::new();
        let entries = fs::read_dir(dir).map_err(|e| StorageError::io(dir, "list log dir", e))?;
        for entry in entries {
            let entry = entry.map_err(|e| StorageError::io(dir, "list log dir", e))?;
            if let Some(seq) = entry.file_name().to_str().and_then(parse_segment_file_name) {
                seqs.push((seq, entry.path()));
            }
        }
        seqs.sort_unstable_by_key(|(s, _)| *s);

        if seqs.is_empty() {
            // Fresh log: create segment 0 rooted at the resume height.
            let header = SegmentHeader {
                seq: 0,
                base_height: resume_height,
            };
            let active = SegmentWriter::create(dir.join(segment_file_name(0)), header)?;
            let log = BlockLog {
                dir: dir.to_path_buf(),
                opts,
                closed: Vec::new(),
                active,
                next_height: resume_height,
                unsynced: 0,
            };
            return Ok((
                log,
                LogRecovery {
                    blocks: Vec::new(),
                    truncated_tail: false,
                },
            ));
        }

        for pair in seqs.windows(2) {
            if pair[1].0 != pair[0].0 + 1 {
                return Err(StorageError::corrupt(
                    &pair[1].1,
                    0,
                    "segment sequence gap: an intermediate segment file is missing",
                ));
            }
        }

        let mut blocks: Vec<(Block, Vec<u8>)> = Vec::new();
        let mut closed = Vec::new();
        let mut truncated_tail = false;
        let mut expected_height: Option<u64> = None;
        let last_idx = seqs.len() - 1;
        let mut active: Option<SegmentWriter> = None;

        for (idx, (seq, path)) in seqs.iter().enumerate() {
            let scan = scan_segment(path)?;
            if scan.header.seq != *seq {
                return Err(StorageError::corrupt(
                    path,
                    12,
                    "segment header seq disagrees with file name",
                ));
            }
            if let Some(defect) = &scan.defect {
                if idx != last_idx {
                    return Err(StorageError::corrupt(
                        path,
                        scan.valid_len,
                        "defect in a non-final segment — log is corrupt, not torn",
                    ));
                }
                // Torn tail in the newest segment: recoverable.
                let _ = defect;
                truncated_tail = true;
            }
            let base = scan.header.base_height;
            if let Some(expected) = expected_height {
                if base != expected {
                    return Err(StorageError::corrupt(
                        path,
                        20,
                        "segment base height does not continue the previous segment",
                    ));
                }
            } else if base > resume_height {
                return Err(StorageError::corrupt(
                    path,
                    20,
                    "oldest segment starts above the snapshot height — blocks are missing",
                ));
            }
            let mut h = base;
            let record_count = scan.records.len() as u64;
            for record in &scan.records {
                let (block, payload) =
                    decode_block_with_payload(record).map_err(|e| StorageError::Codec {
                        path: path.clone(),
                        source: e,
                    })?;
                if block.height != h {
                    return Err(StorageError::corrupt(
                        path,
                        0,
                        "block height out of sequence inside segment",
                    ));
                }
                h += 1;
                blocks.push((block, payload));
            }
            expected_height = Some(h);
            if idx == last_idx {
                active = Some(SegmentWriter::reopen(
                    path.clone(),
                    scan.header,
                    scan.valid_len,
                    record_count,
                )?);
            } else {
                closed.push(ClosedSegment {
                    path: path.clone(),
                    seq: *seq,
                    base_height: base,
                    end_height: h,
                });
            }
        }

        let next_height = expected_height.expect("at least one segment scanned");
        let log = BlockLog {
            dir: dir.to_path_buf(),
            opts,
            closed,
            active: active.expect("last segment reopened"),
            next_height,
            unsynced: 0,
        };
        Ok((
            log,
            LogRecovery {
                blocks,
                truncated_tail,
            },
        ))
    }

    /// Height the next appended block must carry.
    pub fn next_height(&self) -> u64 {
        self.next_height
    }

    /// Number of segment files (closed + active).
    pub fn segment_count(&self) -> usize {
        self.closed.len() + 1
    }

    /// Appends `block` and its batch payload (the block must sit exactly
    /// at [`next_height`]) and applies the sync policy. On success the
    /// record is in the OS page cache at minimum; with
    /// [`SyncPolicy::Always`] it is on disk.
    ///
    /// [`next_height`]: BlockLog::next_height
    pub fn append(&mut self, block: &Block, payload: &[u8]) -> Result<(), StorageError> {
        if block.height != self.next_height {
            return Err(StorageError::HeightGap {
                got: block.height,
                expected: self.next_height,
            });
        }
        if self.active.len() >= self.opts.max_segment_bytes && !self.active.is_empty() {
            self.rotate()?;
        }
        self.active
            .append(&encode_block_with_payload(block, payload))?;
        self.next_height += 1;
        match self.opts.sync {
            SyncPolicy::Always => self.active.sync()?,
            SyncPolicy::EveryN(n) => {
                self.unsynced += 1;
                if self.unsynced >= n {
                    self.active.sync()?;
                    self.unsynced = 0;
                }
            }
            SyncPolicy::Manual => {}
        }
        Ok(())
    }

    /// Flushes and fsyncs the active segment.
    pub fn sync(&mut self) -> Result<(), StorageError> {
        self.unsynced = 0;
        self.active.sync()
    }

    fn rotate(&mut self) -> Result<(), StorageError> {
        // The outgoing segment must be durable before the new one
        // exists, or recovery's "defects only in the newest segment"
        // invariant would not hold after a crash between the two steps.
        self.active.sync()?;
        self.unsynced = 0;
        let old_header = self.active.header();
        let new_header = SegmentHeader {
            seq: old_header.seq + 1,
            base_height: self.next_height,
        };
        let new_path = self.dir.join(segment_file_name(new_header.seq));
        let new_writer = SegmentWriter::create(new_path, new_header)?;
        let old = std::mem::replace(&mut self.active, new_writer);
        self.closed.push(ClosedSegment {
            path: old.path().to_path_buf(),
            seq: old_header.seq,
            base_height: old_header.base_height,
            end_height: self.next_height,
        });
        Ok(())
    }

    /// Discards **every** block in the log and restarts it at
    /// `resume_height` (snapshot state transfer: a received snapshot
    /// replaces the whole local chain).
    ///
    /// Crash safety: old segments are deleted newest-first, so whatever
    /// survives a crash is always a contiguous prefix of the old log —
    /// never a sequence gap — and the fresh segment is only created
    /// after every old file is gone. A caller that made the
    /// durable snapshot covering `resume_height` *before* calling this
    /// (see `DurableLedger::install_snapshot`) recovers from any
    /// intermediate state: the reopened log is then older than the
    /// snapshot and gets reset again on open.
    pub fn reset(&mut self, resume_height: u64) -> Result<(), StorageError> {
        // Newest first: the active segment, then closed ones in
        // descending sequence order. Deleting the active file while the
        // writer still holds it open is fine on POSIX (the inode lives
        // until the handle drops; we never write to it again).
        let active_path = self.active.path().to_path_buf();
        fs::remove_file(&active_path)
            .map_err(|e| StorageError::io(&active_path, "remove reset segment", e))?;
        self.closed
            .sort_unstable_by_key(|s| std::cmp::Reverse(s.seq));
        for seg in self.closed.drain(..) {
            fs::remove_file(&seg.path)
                .map_err(|e| StorageError::io(&seg.path, "remove reset segment", e))?;
        }
        let header = SegmentHeader {
            seq: 0,
            base_height: resume_height,
        };
        let new_writer = SegmentWriter::create(self.dir.join(segment_file_name(0)), header)?;
        self.active = new_writer;
        self.next_height = resume_height;
        self.unsynced = 0;
        Ok(())
    }

    /// Deletes closed segments whose blocks all sit below `height`
    /// (after a snapshot covering `height` is durable). Returns the
    /// number of segments removed. The active segment is never removed.
    pub fn prune_below(&mut self, height: u64) -> Result<usize, StorageError> {
        let mut removed = 0;
        let mut keep = Vec::with_capacity(self.closed.len());
        for seg in self.closed.drain(..) {
            if seg.end_height <= height {
                fs::remove_file(&seg.path)
                    .map_err(|e| StorageError::io(&seg.path, "remove pruned segment", e))?;
                removed += 1;
            } else {
                keep.push(seg);
            }
        }
        self.closed = keep;
        Ok(removed)
    }

    /// Oldest block height still materialized in the log.
    pub fn oldest_height(&self) -> u64 {
        self.closed
            .first()
            .map(|s| s.base_height)
            .unwrap_or_else(|| self.active.header().base_height)
    }

    /// The directory this log lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Diagnostic snapshot of segment layout: `(seq, base_height)` per
    /// closed segment, then the active one.
    pub fn layout(&self) -> Vec<(u64, u64)> {
        let mut v: Vec<(u64, u64)> = self.closed.iter().map(|s| (s.seq, s.base_height)).collect();
        let h = self.active.header();
        v.push((h.seq, h.base_height));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spotless_ledger::Ledger;
    use spotless_types::{BatchId, Digest, InstanceId, ReplicaId, View};
    use tempfile::tempdir;

    fn build_blocks(count: u64) -> Vec<Block> {
        let mut ledger = Ledger::new();
        for i in 0..count {
            ledger.append(
                BatchId(i),
                Digest::from_u64(i),
                100,
                Digest::from_u64(i * 3 + 2),
                spotless_ledger::CommitProof {
                    phase: spotless_types::CertPhase::Strong,
                    instance: InstanceId((i % 4) as u32),
                    view: View(i),
                    voted: Digest::from_u64(i),
                    slot: i,
                    signers: vec![ReplicaId(0), ReplicaId(1), ReplicaId(2)],
                    sigs: vec![spotless_types::Signature::ZERO; 3],
                },
            );
        }
        ledger.iter().cloned().collect()
    }

    fn tiny_opts() -> LogOptions {
        LogOptions {
            max_segment_bytes: 256, // force frequent rotation in tests
            sync: SyncPolicy::Always,
        }
    }

    #[test]
    fn fresh_log_starts_empty() {
        let dir = tempdir().unwrap();
        let (log, rec) = BlockLog::open(dir.path(), LogOptions::default(), 0).unwrap();
        assert!(rec.blocks.is_empty());
        assert!(!rec.truncated_tail);
        assert_eq!(log.next_height(), 0);
        assert_eq!(log.segment_count(), 1);
    }

    #[test]
    fn append_reopen_replays_everything() {
        let dir = tempdir().unwrap();
        let blocks = build_blocks(20);
        {
            let (mut log, _) = BlockLog::open(dir.path(), tiny_opts(), 0).unwrap();
            for b in &blocks {
                log.append(b, b"payload").unwrap();
            }
            assert!(log.segment_count() > 1, "rotation must have happened");
        }
        let (log, rec) = BlockLog::open(dir.path(), tiny_opts(), 0).unwrap();
        let got: Vec<Block> = rec.blocks.iter().map(|(b, _)| b.clone()).collect();
        assert_eq!(got, blocks);
        assert!(rec.blocks.iter().all(|(_, p)| p == b"payload"));
        assert!(!rec.truncated_tail);
        assert_eq!(log.next_height(), 20);
    }

    #[test]
    fn height_gap_is_rejected() {
        let dir = tempdir().unwrap();
        let blocks = build_blocks(3);
        let (mut log, _) = BlockLog::open(dir.path(), LogOptions::default(), 0).unwrap();
        log.append(&blocks[0], b"payload").unwrap();
        let err = log.append(&blocks[2], b"payload").unwrap_err();
        assert!(matches!(
            err,
            StorageError::HeightGap {
                got: 2,
                expected: 1
            }
        ));
    }

    #[test]
    fn torn_tail_in_newest_segment_is_truncated() {
        let dir = tempdir().unwrap();
        let blocks = build_blocks(5);
        {
            let (mut log, _) = BlockLog::open(dir.path(), LogOptions::default(), 0).unwrap();
            for b in &blocks {
                log.append(b, b"payload").unwrap();
            }
        }
        // Simulate a crash mid-append on the newest segment.
        let newest = dir.path().join(segment_file_name(0));
        {
            use std::io::Write;
            let mut f = fs::OpenOptions::new().append(true).open(&newest).unwrap();
            f.write_all(&[0x13, 0x37, 0x00]).unwrap();
        }
        let (mut log, rec) = BlockLog::open(dir.path(), LogOptions::default(), 0).unwrap();
        let got: Vec<Block> = rec.blocks.iter().map(|(b, _)| b.clone()).collect();
        assert_eq!(got, blocks);
        assert!(rec.blocks.iter().all(|(_, p)| p == b"payload"));
        assert!(rec.truncated_tail);
        // And the log keeps working after truncation.
        let more = {
            let mut ledger = Ledger::with_base(5, blocks.last().unwrap().hash);
            ledger
                .append(
                    BatchId(100),
                    Digest::from_u64(100),
                    10,
                    Digest::from_u64(1000),
                    spotless_ledger::CommitProof {
                        phase: spotless_types::CertPhase::Strong,
                        instance: InstanceId(0),
                        view: View(50),
                        voted: Digest::from_u64(50),
                        slot: 0,
                        signers: vec![ReplicaId(1)],
                        sigs: vec![spotless_types::Signature::ZERO; 1],
                    },
                )
                .clone()
        };
        log.append(&more, b"payload").unwrap();
        let (_, rec) = BlockLog::open(dir.path(), LogOptions::default(), 0).unwrap();
        assert_eq!(rec.blocks.len(), 6);
    }

    #[test]
    fn defect_in_old_segment_is_corruption() {
        let dir = tempdir().unwrap();
        let blocks = build_blocks(20);
        {
            let (mut log, _) = BlockLog::open(dir.path(), tiny_opts(), 0).unwrap();
            for b in &blocks {
                log.append(b, b"payload").unwrap();
            }
            assert!(log.segment_count() >= 3);
        }
        // Flip a payload byte in the middle of segment 1 (not the newest).
        let victim = dir.path().join(segment_file_name(1));
        let mut data = fs::read(&victim).unwrap();
        let mid = data.len() / 2;
        data[mid] ^= 0x80;
        fs::write(&victim, &data).unwrap();
        let err = BlockLog::open(dir.path(), tiny_opts(), 0).unwrap_err();
        assert!(matches!(err, StorageError::Corrupt { .. }), "{err}");
    }

    #[test]
    fn missing_middle_segment_is_corruption() {
        let dir = tempdir().unwrap();
        {
            let (mut log, _) = BlockLog::open(dir.path(), tiny_opts(), 0).unwrap();
            for b in &build_blocks(20) {
                log.append(b, b"payload").unwrap();
            }
            assert!(log.segment_count() >= 3);
        }
        fs::remove_file(dir.path().join(segment_file_name(1))).unwrap();
        let err = BlockLog::open(dir.path(), tiny_opts(), 0).unwrap_err();
        assert!(err.to_string().contains("sequence gap"), "{err}");
    }

    #[test]
    fn prune_removes_only_fully_covered_segments() {
        let dir = tempdir().unwrap();
        let blocks = build_blocks(20);
        let (mut log, _) = BlockLog::open(dir.path(), tiny_opts(), 0).unwrap();
        for b in &blocks {
            log.append(b, b"payload").unwrap();
        }
        let before = log.segment_count();
        assert!(before >= 3);
        let removed = log.prune_below(10).unwrap();
        assert!(removed >= 1);
        assert!(log.oldest_height() <= 10);
        // Everything at or above height 10 must still replay; reopening
        // with resume_height = oldest is fine.
        let oldest = log.oldest_height();
        drop(log);
        let (_, rec) = BlockLog::open(dir.path(), tiny_opts(), oldest).unwrap();
        let replayed_from = rec.blocks.first().unwrap().0.height;
        assert!(replayed_from <= 10);
        assert_eq!(rec.blocks.last().unwrap().0.height, 19);
    }

    #[test]
    fn reopen_after_prune_respects_resume_height() {
        let dir = tempdir().unwrap();
        let blocks = build_blocks(20);
        let (mut log, _) = BlockLog::open(dir.path(), tiny_opts(), 0).unwrap();
        for b in &blocks {
            log.append(b, b"payload").unwrap();
        }
        log.prune_below(10).unwrap();
        let oldest = log.oldest_height();
        drop(log);
        // Opening with a resume height *below* what survives must fail
        // loudly — blocks the caller expects to replay are gone.
        if oldest > 0 {
            let err = BlockLog::open(dir.path(), tiny_opts(), oldest - 1).unwrap_err();
            assert!(err.to_string().contains("missing"), "{err}");
        }
    }

    #[test]
    fn every_n_sync_policy_counts_appends() {
        let dir = tempdir().unwrap();
        let blocks = build_blocks(5);
        let opts = LogOptions {
            max_segment_bytes: 1 << 20,
            sync: SyncPolicy::EveryN(2),
        };
        let (mut log, _) = BlockLog::open(dir.path(), opts, 0).unwrap();
        for b in &blocks {
            log.append(b, b"payload").unwrap();
        }
        log.sync().unwrap();
        let (_, rec) = BlockLog::open(dir.path(), opts, 0).unwrap();
        assert_eq!(rec.blocks.len(), 5);
    }

    #[test]
    fn layout_reports_rotation_points() {
        let dir = tempdir().unwrap();
        let (mut log, _) = BlockLog::open(dir.path(), tiny_opts(), 0).unwrap();
        for b in &build_blocks(20) {
            log.append(b, b"payload").unwrap();
        }
        let layout = log.layout();
        assert_eq!(layout.len(), log.segment_count());
        assert!(layout.windows(2).all(|w| w[0].0 + 1 == w[1].0));
        assert!(layout.windows(2).all(|w| w[0].1 < w[1].1));
    }
}
