//! CRC-32C (Castagnoli) implemented from scratch.
//!
//! The block log frames every record with a CRC-32C of its payload so the
//! recovery scan can distinguish a torn tail (a write interrupted by a
//! crash) from intact data. CRC-32C is the storage-industry choice for
//! this job (ext4, Btrfs, iSCSI, LevelDB/RocksDB logs) because it detects
//! all burst errors up to 32 bits and has hardware support on most CPUs;
//! this portable table-driven implementation keeps the crate free of
//! platform intrinsics, and at one table lookup per byte it is nowhere
//! near the log's bottleneck (the `fsync` is).

/// The CRC-32C (Castagnoli) generator polynomial, reflected form.
const POLY: u32 = 0x82F6_3B78;

/// 8 tables of 256 entries: table\[k\]\[b\] is the CRC of byte `b` followed by
/// `k` zero bytes, enabling slice-by-8 processing (8 bytes per iteration).
static TABLES: [[u32; 256]; 8] = build_tables();

const fn build_tables() -> [[u32; 256]; 8] {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut t = 1;
    while t < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[t - 1][i];
            tables[t][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        t += 1;
    }
    tables
}

/// Incremental CRC-32C state.
///
/// ```
/// use spotless_storage::crc32::Crc32c;
/// let mut crc = Crc32c::new();
/// crc.update(b"hello ");
/// crc.update(b"world");
/// assert_eq!(crc.finish(), spotless_storage::crc32::crc32c(b"hello world"));
/// ```
#[derive(Clone, Copy, Debug)]
pub struct Crc32c {
    state: u32,
}

impl Default for Crc32c {
    fn default() -> Crc32c {
        Crc32c::new()
    }
}

impl Crc32c {
    /// A fresh CRC computation.
    pub fn new() -> Crc32c {
        Crc32c { state: !0 }
    }

    /// Feeds `data` into the CRC.
    pub fn update(&mut self, data: &[u8]) {
        let mut crc = self.state;
        let mut chunks = data.chunks_exact(8);
        for chunk in &mut chunks {
            let lo = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]) ^ crc;
            let hi = u32::from_le_bytes([chunk[4], chunk[5], chunk[6], chunk[7]]);
            crc = TABLES[7][(lo & 0xFF) as usize]
                ^ TABLES[6][((lo >> 8) & 0xFF) as usize]
                ^ TABLES[5][((lo >> 16) & 0xFF) as usize]
                ^ TABLES[4][(lo >> 24) as usize]
                ^ TABLES[3][(hi & 0xFF) as usize]
                ^ TABLES[2][((hi >> 8) & 0xFF) as usize]
                ^ TABLES[1][((hi >> 16) & 0xFF) as usize]
                ^ TABLES[0][(hi >> 24) as usize];
        }
        for &b in chunks.remainder() {
            crc = (crc >> 8) ^ TABLES[0][((crc ^ u32::from(b)) & 0xFF) as usize];
        }
        self.state = crc;
    }

    /// Final CRC value.
    pub fn finish(self) -> u32 {
        !self.state
    }
}

/// One-shot CRC-32C of `data`.
pub fn crc32c(data: &[u8]) -> u32 {
    let mut c = Crc32c::new();
    c.update(data);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    // Reference values from RFC 3720 (iSCSI) appendix B.4 and the
    // published Castagnoli test suite.
    #[test]
    fn known_vectors() {
        assert_eq!(crc32c(b""), 0);
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
        assert_eq!(crc32c(&[0xFFu8; 32]), 0x62A8_AB43);
        let ascending: Vec<u8> = (0u8..32).collect();
        assert_eq!(crc32c(&ascending), 0x46DD_794E);
        let descending: Vec<u8> = (0u8..32).rev().collect();
        assert_eq!(crc32c(&descending), 0x113F_DB5C);
    }

    #[test]
    fn incremental_equals_oneshot_at_every_split() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        let expect = crc32c(&data);
        for split in [0, 1, 7, 8, 9, 63, 500, 999, 1000] {
            let mut c = Crc32c::new();
            c.update(&data[..split]);
            c.update(&data[split..]);
            assert_eq!(c.finish(), expect, "split at {split}");
        }
    }

    #[test]
    fn single_bit_flips_change_the_crc() {
        let data = [0x42u8; 64];
        let base = crc32c(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data;
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32c(&flipped), base, "flip {byte}:{bit} undetected");
            }
        }
    }

    #[test]
    fn slice_by_8_matches_bytewise() {
        // Cross-check the slice-by-8 fast path against a plain
        // one-byte-at-a-time reference on unaligned lengths.
        fn reference(data: &[u8]) -> u32 {
            let mut crc = !0u32;
            for &b in data {
                crc = (crc >> 8) ^ TABLES[0][((crc ^ u32::from(b)) & 0xFF) as usize];
            }
            !crc
        }
        for len in 0..64 {
            let data: Vec<u8> = (0..len as u8).map(|i| i.wrapping_mul(37)).collect();
            assert_eq!(crc32c(&data), reference(&data), "len {len}");
        }
    }
}
