//! The partial-install journal for chunked snapshot state transfer.
//!
//! A replica receiving a chunked snapshot verifies each chunk against
//! the head block's `state_root` as it arrives and records it here —
//! under `<storage dir>/incoming/` for durable deployments — so that a
//! crash mid-transfer **resumes** instead of restarting: on reopen the
//! journal reports which chunks are already present and verified, and
//! the runtime fetches only the rest.
//!
//! Layout: a `manifest.inst` file (CRC-framed, like every other durable
//! artifact in this crate) naming the target height, the certified head
//! block, the recent-id window, the application meta bytes, and the
//! expected chunk digest list; plus one content-addressed blob per
//! received chunk (shared helpers with [`crate::snapshot`]). Chunk
//! blobs are written atomically (tmp + rename, fsynced), so a torn
//! write never masquerades as a verified chunk; on load every blob is
//! re-verified against its content address and silently dropped if it
//! does not match. The journal is only a *progress cache*: the final
//! install re-verifies the assembled state against the chain's
//! committed root, so even a corrupted journal cannot poison the store
//! — it can only cost a re-fetch.

use crate::codec::{decode_block, encode_block, Reader, Writer};
use crate::crc32::crc32c;
use crate::snapshot::{chunk_file_name, read_chunk_blob, write_atomic, write_chunk_blob};
use crate::StorageError;
use spotless_ledger::Block;
use spotless_types::{BatchId, Digest};
use std::fs;
use std::path::{Path, PathBuf};

/// Magic bytes opening the journal manifest.
pub const MAGIC: [u8; 8] = *b"SPLSINC1";
/// Journal manifest format version.
pub const VERSION: u32 = 1;
/// Name of the journal manifest inside the journal directory.
const MANIFEST_FILE: &str = "manifest.inst";
/// Name of the journal directory inside a replica's storage directory.
pub const JOURNAL_DIR: &str = "incoming";

/// Everything a chunked transfer must agree on before chunks flow: the
/// target of the install and the content addresses of its pieces.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InstallManifest {
    /// Ledger height the snapshot covers.
    pub height: u64,
    /// The certified block at `height − 1`; its `state_root` is what
    /// every chunk is verified against.
    pub head_block: Block,
    /// Recent-batch-id window the snapshot carries.
    pub recent_ids: Vec<BatchId>,
    /// Opaque application meta bytes (verified against the state root
    /// by the runtime via the meta-leaf inclusion proof).
    pub app_meta: Vec<u8>,
    /// Content addresses of the chunks, in order.
    pub chunk_digests: Vec<Digest>,
}

impl InstallManifest {
    /// True iff `other` describes the same transfer: same target block
    /// and the same chunking. A journal begun under one manifest resumes
    /// only under an equal one.
    pub fn same_transfer(&self, other: &InstallManifest) -> bool {
        self.height == other.height
            && self.head_block.hash == other.head_block.hash
            && self.chunk_digests == other.chunk_digests
            && self.app_meta == other.app_meta
    }

    fn encode(&self) -> Vec<u8> {
        let block_bytes = encode_block(&self.head_block);
        let mut w = Writer::with_capacity(64 + block_bytes.len() + self.chunk_digests.len() * 32);
        w.u64(self.height);
        w.bytes(&block_bytes);
        w.u32(self.recent_ids.len() as u32);
        for id in &self.recent_ids {
            w.u64(id.0);
        }
        w.bytes(&self.app_meta);
        w.u32(self.chunk_digests.len() as u32);
        for d in &self.chunk_digests {
            w.digest(d);
        }
        let body = w.into_bytes();
        let mut buf = Vec::with_capacity(16 + body.len());
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&VERSION.to_le_bytes());
        buf.extend_from_slice(&body);
        let crc = crc32c(&buf);
        buf.extend_from_slice(&crc.to_le_bytes());
        buf
    }

    fn decode(data: &[u8], path: &Path) -> Result<InstallManifest, StorageError> {
        const FRAMING: usize = 8 + 4 + 4;
        if data.len() < FRAMING || data[..8] != MAGIC {
            return Err(StorageError::corrupt(path, 0, "bad journal manifest"));
        }
        let version = u32::from_le_bytes([data[8], data[9], data[10], data[11]]);
        if version != VERSION {
            return Err(StorageError::UnsupportedVersion {
                path: path.to_path_buf(),
                version,
            });
        }
        let body_len = data.len() - 4;
        let stored_crc = u32::from_le_bytes([
            data[body_len],
            data[body_len + 1],
            data[body_len + 2],
            data[body_len + 3],
        ]);
        if crc32c(&data[..body_len]) != stored_crc {
            return Err(StorageError::corrupt(
                path,
                body_len as u64,
                "journal manifest CRC mismatch",
            ));
        }
        let codec_err = |source| StorageError::Codec {
            path: path.to_path_buf(),
            source,
        };
        let mut r = Reader::new(&data[12..body_len]);
        let height = r.u64("journal.height").map_err(codec_err)?;
        let head_block =
            decode_block(r.bytes("journal.head_block").map_err(codec_err)?).map_err(codec_err)?;
        let ids_len = r.u32("journal.recent_ids.len").map_err(codec_err)?;
        if ids_len > 1 << 16 {
            return Err(StorageError::corrupt(path, 12, "journal recent-id bound"));
        }
        let mut recent_ids = Vec::with_capacity(ids_len as usize);
        for _ in 0..ids_len {
            recent_ids.push(BatchId(r.u64("journal.recent_ids[]").map_err(codec_err)?));
        }
        let app_meta = r.bytes("journal.app_meta").map_err(codec_err)?.to_vec();
        let chunks_len = r.u32("journal.chunks.len").map_err(codec_err)?;
        if chunks_len > 1 << 20 {
            return Err(StorageError::corrupt(path, 12, "journal chunk bound"));
        }
        let mut chunk_digests = Vec::with_capacity(chunks_len as usize);
        for _ in 0..chunks_len {
            chunk_digests.push(r.digest("journal.chunks[]").map_err(codec_err)?);
        }
        r.finish("journal").map_err(codec_err)?;
        Ok(InstallManifest {
            height,
            head_block,
            recent_ids,
            app_meta,
            chunk_digests,
        })
    }
}

/// The journal itself: an optional on-disk mirror (durable deployments)
/// over an in-memory chunk set. Memory-only deployments run it with
/// `dir = None` — nothing survives their crashes anyway.
pub struct InstallJournal {
    dir: Option<PathBuf>,
    manifest: Option<InstallManifest>,
    /// Received chunk bytes, indexed like `manifest.chunk_digests`.
    chunks: Vec<Option<Vec<u8>>>,
}

impl InstallJournal {
    /// An in-memory journal (no crash durability).
    pub fn in_memory() -> InstallJournal {
        InstallJournal {
            dir: None,
            manifest: None,
            chunks: Vec::new(),
        }
    }

    /// Opens the journal under `storage_dir`, loading whatever a
    /// previous (possibly crashed) transfer left: the manifest, then
    /// every chunk blob that still verifies against its content
    /// address. Blobs that fail verification are dropped (they will be
    /// re-fetched); an unreadable manifest resets the journal entirely.
    pub fn open(storage_dir: &Path) -> InstallJournal {
        let dir = storage_dir.join(JOURNAL_DIR);
        let mut journal = InstallJournal {
            dir: Some(dir.clone()),
            manifest: None,
            chunks: Vec::new(),
        };
        let manifest_path = dir.join(MANIFEST_FILE);
        let Ok(data) = fs::read(&manifest_path) else {
            return journal;
        };
        let Ok(manifest) = InstallManifest::decode(&data, &manifest_path) else {
            return journal; // corrupt: start over on the next transfer
        };
        if !manifest.head_block.verify_hash() {
            return journal;
        }
        let mut chunks = Vec::with_capacity(manifest.chunk_digests.len());
        for d in &manifest.chunk_digests {
            // `read_chunk_blob` re-verifies the content address.
            chunks.push(read_chunk_blob(&dir, d).ok());
        }
        journal.chunks = chunks;
        journal.manifest = Some(manifest);
        journal
    }

    /// The transfer in progress, if any.
    pub fn manifest(&self) -> Option<&InstallManifest> {
        self.manifest.as_ref()
    }

    /// Number of chunks already received and verified.
    pub fn chunks_present(&self) -> u32 {
        self.chunks.iter().filter(|c| c.is_some()).count() as u32
    }

    /// Indexes of the chunks still missing, in order.
    pub fn missing(&self) -> Vec<u32> {
        self.chunks
            .iter()
            .enumerate()
            .filter(|(_, c)| c.is_none())
            .map(|(i, _)| i as u32)
            .collect()
    }

    /// True iff a transfer is in progress and every chunk is present.
    pub fn is_complete(&self) -> bool {
        self.manifest.is_some() && self.chunks.iter().all(|c| c.is_some())
    }

    /// True iff chunk `index` is already present.
    pub fn has_chunk(&self, index: u32) -> bool {
        self.chunks.get(index as usize).is_some_and(|c| c.is_some())
    }

    /// Starts (or resumes) a transfer under `manifest`. If the journal
    /// already tracks the **same** transfer, received chunks are kept —
    /// this is the resume path after a crash or a peer rotation. A
    /// different manifest resets the journal: old chunks are deleted and
    /// the new manifest is persisted before any chunk is accepted.
    pub fn begin(&mut self, manifest: InstallManifest) -> Result<(), StorageError> {
        if self
            .manifest
            .as_ref()
            .is_some_and(|m| m.same_transfer(&manifest))
        {
            return Ok(()); // resuming: keep everything
        }
        self.wipe()?;
        if let Some(dir) = &self.dir {
            fs::create_dir_all(dir).map_err(|e| StorageError::io(dir, "create journal dir", e))?;
            write_atomic(dir, MANIFEST_FILE, &manifest.encode(), true)?;
        }
        self.chunks = vec![None; manifest.chunk_digests.len()];
        self.manifest = Some(manifest);
        Ok(())
    }

    /// Records chunk `index`. The bytes must hash to the manifest's
    /// content address for that index (the caller has additionally
    /// verified them against the chain's state root); a mismatch is
    /// rejected without touching the journal.
    pub fn put_chunk(&mut self, index: u32, bytes: Vec<u8>) -> Result<(), StorageError> {
        let Some(manifest) = &self.manifest else {
            return Ok(()); // no transfer in progress: drop silently
        };
        let Some(expected) = manifest.chunk_digests.get(index as usize).copied() else {
            return Ok(());
        };
        if spotless_crypto::digest_bytes(&bytes) != expected {
            return Ok(()); // not the chunk the manifest names
        }
        if let Some(dir) = &self.dir {
            write_chunk_blob(dir, &expected, &bytes)?;
        }
        self.chunks[index as usize] = Some(bytes);
        Ok(())
    }

    /// The received chunks in manifest order; `None` unless
    /// [`is_complete`](InstallJournal::is_complete).
    pub fn assembled_chunks(&self) -> Option<Vec<Vec<u8>>> {
        if !self.is_complete() {
            return None;
        }
        Some(
            self.chunks
                .iter()
                .map(|c| c.clone().expect("complete"))
                .collect(),
        )
    }

    /// Discards the transfer: forgets the manifest and chunks and
    /// removes the on-disk journal directory. Called after a successful
    /// install (the snapshot now owns the state) or when abandoning a
    /// transfer for a different one.
    pub fn wipe(&mut self) -> Result<(), StorageError> {
        self.manifest = None;
        self.chunks.clear();
        if let Some(dir) = &self.dir {
            if dir.exists() {
                fs::remove_dir_all(dir)
                    .map_err(|e| StorageError::io(dir, "remove journal dir", e))?;
            }
        }
        Ok(())
    }
}

/// Reads one journal chunk blob by content address (diagnostics/tests).
pub fn journal_chunk_path(storage_dir: &Path, digest: &Digest) -> PathBuf {
    storage_dir.join(JOURNAL_DIR).join(chunk_file_name(digest))
}

#[cfg(test)]
mod tests {
    use super::*;
    use spotless_ledger::{CommitProof, Ledger};
    use spotless_types::{CertPhase, InstanceId, ReplicaId, View};
    use tempfile::tempdir;

    fn head_block() -> Block {
        let mut ledger = Ledger::new();
        ledger.append(
            BatchId(1),
            Digest::from_u64(1),
            10,
            Digest::from_u64(99),
            CommitProof {
                instance: InstanceId(0),
                view: View(1),
                phase: CertPhase::Strong,
                voted: Digest::from_u64(9),
                slot: 0,
                signers: vec![ReplicaId(0), ReplicaId(1), ReplicaId(2)],
                sigs: vec![spotless_types::Signature::ZERO; 3],
            },
        );
        ledger.block(0).unwrap().clone()
    }

    fn manifest_for(chunks: &[&[u8]]) -> InstallManifest {
        InstallManifest {
            height: 1,
            head_block: head_block(),
            recent_ids: vec![BatchId(1)],
            app_meta: b"meta".to_vec(),
            chunk_digests: chunks
                .iter()
                .map(|c| spotless_crypto::digest_bytes(c))
                .collect(),
        }
    }

    #[test]
    fn journal_survives_reopen_with_partial_chunks() {
        let dir = tempdir().unwrap();
        let m = manifest_for(&[b"c0", b"c1", b"c2"]);
        {
            let mut j = InstallJournal::open(dir.path());
            assert!(j.manifest().is_none());
            j.begin(m.clone()).unwrap();
            j.put_chunk(0, b"c0".to_vec()).unwrap();
            j.put_chunk(2, b"c2".to_vec()).unwrap();
            assert_eq!(j.chunks_present(), 2);
            assert_eq!(j.missing(), vec![1]);
            assert!(!j.is_complete());
            // Crash: drop without cleanup.
        }
        let mut j = InstallJournal::open(dir.path());
        assert_eq!(j.manifest(), Some(&m));
        assert_eq!(j.chunks_present(), 2, "verified chunks survive the crash");
        assert_eq!(j.missing(), vec![1]);
        // Resuming under the same manifest keeps progress.
        j.begin(m).unwrap();
        assert_eq!(j.chunks_present(), 2);
        j.put_chunk(1, b"c1".to_vec()).unwrap();
        assert!(j.is_complete());
        assert_eq!(
            j.assembled_chunks().unwrap(),
            vec![b"c0".to_vec(), b"c1".to_vec(), b"c2".to_vec()]
        );
    }

    #[test]
    fn wrong_bytes_and_wrong_index_are_rejected() {
        let dir = tempdir().unwrap();
        let mut j = InstallJournal::open(dir.path());
        j.begin(manifest_for(&[b"c0"])).unwrap();
        j.put_chunk(0, b"not-c0".to_vec()).unwrap();
        assert_eq!(j.chunks_present(), 0, "bytes must match the manifest");
        j.put_chunk(7, b"c0".to_vec()).unwrap();
        assert_eq!(j.chunks_present(), 0, "out-of-range index is dropped");
        j.put_chunk(0, b"c0".to_vec()).unwrap();
        assert!(j.is_complete());
    }

    #[test]
    fn different_manifest_resets_progress() {
        let dir = tempdir().unwrap();
        let mut j = InstallJournal::open(dir.path());
        j.begin(manifest_for(&[b"a", b"b"])).unwrap();
        j.put_chunk(0, b"a".to_vec()).unwrap();
        // The cluster moved on: a new transfer target arrives.
        j.begin(manifest_for(&[b"x", b"y", b"z"])).unwrap();
        assert_eq!(j.chunks_present(), 0);
        assert_eq!(j.missing().len(), 3);
        // And the old chunk blob is gone from disk.
        assert!(
            !journal_chunk_path(dir.path(), &spotless_crypto::digest_bytes(b"a")).exists(),
            "reset must not leave stale blobs behind"
        );
    }

    #[test]
    fn corrupted_blob_is_dropped_on_reopen() {
        let dir = tempdir().unwrap();
        let m = manifest_for(&[b"c0", b"c1"]);
        {
            let mut j = InstallJournal::open(dir.path());
            j.begin(m.clone()).unwrap();
            j.put_chunk(0, b"c0".to_vec()).unwrap();
            j.put_chunk(1, b"c1".to_vec()).unwrap();
            assert!(j.is_complete());
        }
        let blob = journal_chunk_path(dir.path(), &spotless_crypto::digest_bytes(b"c1"));
        fs::write(&blob, b"garbage").unwrap();
        let j = InstallJournal::open(dir.path());
        assert_eq!(j.chunks_present(), 1, "corrupt blob must not count");
        assert_eq!(j.missing(), vec![1]);
    }

    #[test]
    fn wipe_clears_disk_state() {
        let dir = tempdir().unwrap();
        let mut j = InstallJournal::open(dir.path());
        j.begin(manifest_for(&[b"c0"])).unwrap();
        j.put_chunk(0, b"c0".to_vec()).unwrap();
        j.wipe().unwrap();
        assert!(j.manifest().is_none());
        assert!(!dir.path().join(JOURNAL_DIR).exists());
        let j = InstallJournal::open(dir.path());
        assert!(j.manifest().is_none());
    }

    #[test]
    fn in_memory_journal_works_without_disk() {
        let mut j = InstallJournal::in_memory();
        j.begin(manifest_for(&[b"c0", b"c1"])).unwrap();
        j.put_chunk(1, b"c1".to_vec()).unwrap();
        assert_eq!(j.missing(), vec![0]);
        j.put_chunk(0, b"c0".to_vec()).unwrap();
        assert!(j.is_complete());
        j.wipe().unwrap();
        assert!(j.manifest().is_none());
    }
}
