//! Randomized crash-recovery tests for the durable ledger.
//!
//! The model under test: a process appends blocks, fsyncs at arbitrary
//! points, and crashes at an arbitrary moment — which on a real disk
//! means the log file retains some prefix of the unsynced suffix, plus
//! possibly a torn final write. Recovery must (a) never lose a block
//! that was acknowledged as synced, (b) never invent or reorder blocks,
//! and (c) leave the store appendable.

use proptest::prelude::*;
use spotless_ledger::{CommitProof, Ledger};
use spotless_storage::log::{BlockLog, LogOptions, SyncPolicy};
use spotless_storage::segment::{parse_segment_file_name, segment_file_name};
use spotless_storage::{DurableLedger, DurableLedgerOptions, StorageError};
use spotless_types::{BatchId, Digest, InstanceId, ReplicaId, View};
use std::fs;
use std::path::Path;

fn proof(view: u64) -> CommitProof {
    CommitProof {
        phase: spotless_types::CertPhase::Strong,
        instance: InstanceId((view % 4) as u32),
        view: View(view),
        voted: Digest::from_u64(view * 3),
        slot: view,
        signers: vec![ReplicaId(0), ReplicaId(1), ReplicaId(2)],
        sigs: vec![spotless_types::Signature::ZERO; 3],
    }
}

fn build_chain(count: u64) -> Vec<spotless_ledger::Block> {
    let mut ledger = Ledger::new();
    for i in 0..count {
        ledger.append(
            BatchId(i),
            Digest::from_u64(i * 13 + 1),
            100,
            Digest::from_u64(i * 5 + 2),
            proof(i),
        );
    }
    ledger.iter().cloned().collect()
}

/// The newest segment file in `dir`.
fn newest_segment(dir: &Path) -> std::path::PathBuf {
    let mut seqs: Vec<u64> = fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| {
            e.unwrap()
                .file_name()
                .to_str()
                .and_then(parse_segment_file_name)
        })
        .collect();
    seqs.sort_unstable();
    dir.join(segment_file_name(*seqs.last().expect("a segment exists")))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Crash after an arbitrary cut into the *unsynced* suffix of the
    /// newest segment: recovery keeps every synced block, keeps blocks
    /// in order, and the store still appends.
    #[test]
    fn crash_recovers_every_synced_block(
        total in 4u64..40,
        sync_at_frac in 0.0f64..1.0,
        cut_frac in 0.0f64..1.0,
    ) {
        let dir = tempfile::tempdir().unwrap();
        let blocks = build_chain(total);
        let sync_at = ((total as f64) * sync_at_frac) as u64; // blocks known durable
        let opts = LogOptions {
            max_segment_bytes: 300, // several rotations per run
            sync: SyncPolicy::Manual,
        };
        let synced_segment;
        let synced_len;
        {
            let (mut log, _) = BlockLog::open(dir.path(), opts, 0).unwrap();
            for b in &blocks[..sync_at as usize] {
                log.append(b, b"payload").unwrap();
            }
            log.sync().unwrap();
            synced_segment = newest_segment(dir.path());
            synced_len = fs::metadata(&synced_segment).unwrap().len();
            for b in &blocks[sync_at as usize..] {
                log.append(b, b"payload").unwrap();
            }
            log.sync().unwrap(); // flush so the file holds all bytes
        }
        // Crash: the newest segment retains an arbitrary prefix of its
        // unsynced suffix. Rotation fsyncs the outgoing segment before
        // creating the next, so everything older than the newest segment
        // is durable; within the newest one, the durable floor is the
        // sync point if it is the same file, else just its header
        // (the file was created entirely after the sync).
        let newest = newest_segment(dir.path());
        let full_len = fs::metadata(&newest).unwrap().len();
        let floor = if newest == synced_segment {
            synced_len
        } else {
            spotless_storage::segment::HEADER_LEN
        };
        let keep = floor + ((full_len - floor) as f64 * cut_frac) as u64;
        let newest = newest_segment(dir.path());
        let f = fs::OpenOptions::new().write(true).open(&newest).unwrap();
        f.set_len(keep).unwrap();
        drop(f);

        let (mut log, rec) = BlockLog::open(dir.path(), opts, 0).unwrap();
        // (a) nothing synced is lost;
        prop_assert!(rec.blocks.len() as u64 >= sync_at,
            "lost synced blocks: {} < {}", rec.blocks.len(), sync_at);
        // (b) what survives is exactly a prefix of what was written;
        prop_assert!(rec.blocks.len() as u64 <= total);
        let recovered: Vec<spotless_ledger::Block> =
            rec.blocks.iter().map(|(b, _)| b.clone()).collect();
        prop_assert_eq!(&recovered[..], &blocks[..recovered.len()]);
        prop_assert!(rec.blocks.iter().all(|(_, p)| p == b"payload"),
            "payloads must survive recovery");
        // (c) the store still appends where it left off.
        let resume = rec.blocks.len() as u64;
        if resume < total {
            log.append(&blocks[resume as usize], b"payload").unwrap();
            prop_assert_eq!(log.next_height(), resume + 1);
        }
    }

    /// A flipped byte anywhere in the newest segment never panics and
    /// never yields out-of-order or altered blocks: recovery returns a
    /// correct prefix or reports the file as corrupt/unreadable.
    #[test]
    fn corruption_in_newest_segment_never_yields_wrong_blocks(
        total in 1u64..24,
        byte_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let dir = tempfile::tempdir().unwrap();
        let blocks = build_chain(total);
        let opts = LogOptions { max_segment_bytes: 1 << 20, sync: SyncPolicy::Always };
        {
            let (mut log, _) = BlockLog::open(dir.path(), opts, 0).unwrap();
            for b in &blocks {
                log.append(b, b"payload").unwrap();
            }
        }
        let newest = newest_segment(dir.path());
        let mut data = fs::read(&newest).unwrap();
        let idx = ((data.len() - 1) as f64 * byte_frac) as usize;
        data[idx] ^= 1 << bit;
        fs::write(&newest, &data).unwrap();

        match BlockLog::open(dir.path(), opts, 0) {
            Ok((_, rec)) => {
                let recovered: Vec<spotless_ledger::Block> =
                    rec.blocks.iter().map(|(b, _)| b.clone()).collect();
                prop_assert_eq!(&recovered[..], &blocks[..recovered.len()]);
            }
            Err(StorageError::Corrupt { .. })
            | Err(StorageError::UnsupportedVersion { .. })
            | Err(StorageError::Codec { .. }) => {}
            Err(e) => return Err(TestCaseError::fail(format!("unexpected error: {e}"))),
        }
    }

    /// End-to-end: append, snapshot at random cadence, crash, recover —
    /// the durable ledger's chain always verifies and covers every
    /// acknowledged block (sync policy Always: acknowledged = durable).
    #[test]
    fn durable_ledger_roundtrip_with_snapshots(
        total in 1u64..60,
        snapshot_every in 1u64..16,
    ) {
        let dir = tempfile::tempdir().unwrap();
        let opts = DurableLedgerOptions {
            log: LogOptions { max_segment_bytes: 512, sync: SyncPolicy::Always },
            snapshot_every,
        };
        let mut head = Digest::ZERO;
        {
            let (mut led, _) = DurableLedger::open(dir.path(), opts).unwrap();
            for i in 0..total {
                led.append_batch(
                    BatchId(i),
                    Digest::from_u64(i * 7 + 3),
                    50,
                    Digest::from_u64(i + 900),
                    proof(i),
                    b"payload",
                ).unwrap();
                let state = format!("executed-through-{i}");
                led.maybe_snapshot(state.as_bytes(), &[b"chunk".to_vec()]).unwrap();
                head = led.ledger().head_hash();
            }
        } // crash
        let (led, report) = DurableLedger::open(dir.path(), opts).unwrap();
        prop_assert_eq!(led.ledger().height(), total);
        prop_assert_eq!(led.ledger().head_hash(), head);
        led.ledger().verify().unwrap();
        // Recovery replayed exactly the blocks above the snapshot.
        prop_assert_eq!(report.snapshot_height + report.replayed_blocks, total);
        // Snapshotted state, when present, names a block that exists.
        if report.snapshot_height > 0 {
            let s = String::from_utf8(report.app_meta.clone()).unwrap();
            prop_assert_eq!(s, format!("executed-through-{}", report.snapshot_height - 1));
        }
    }
}

#[test]
fn repeated_crashes_and_reopens_accumulate_correctly() {
    // Ten sessions; each appends a few blocks and crashes. Heights and
    // hashes must accumulate exactly as a single uninterrupted run.
    let dir = tempfile::tempdir().unwrap();
    let opts = DurableLedgerOptions {
        log: LogOptions {
            max_segment_bytes: 256,
            sync: SyncPolicy::Always,
        },
        snapshot_every: 7,
    };
    let mut reference = Ledger::new();
    let mut next = 0u64;
    for session in 0..10 {
        let (mut led, report) = DurableLedger::open(dir.path(), opts).unwrap();
        assert_eq!(led.ledger().height(), next, "session {session} lost blocks");
        assert_eq!(led.ledger().head_hash(), reference.head_hash());
        let _ = report;
        for _ in 0..3 {
            let b = led
                .append_batch(
                    BatchId(next),
                    Digest::from_u64(next),
                    10,
                    Digest::from_u64(next + 700),
                    proof(next),
                    b"payload",
                )
                .unwrap();
            let r = reference.append(
                BatchId(next),
                Digest::from_u64(next),
                10,
                Digest::from_u64(next + 700),
                proof(next),
            );
            assert_eq!(&b, r, "durable and reference chains diverged");
            next += 1;
            led.maybe_snapshot(format!("s{next}").as_bytes(), &[])
                .unwrap();
        }
    }
    let (led, _) = DurableLedger::open(dir.path(), opts).unwrap();
    assert_eq!(led.ledger().height(), 30);
    assert_eq!(led.ledger().head_hash(), reference.head_hash());
}

#[test]
fn snapshot_prunes_segments_and_bounds_replay() {
    let dir = tempfile::tempdir().unwrap();
    let opts = DurableLedgerOptions {
        log: LogOptions {
            max_segment_bytes: 256,
            sync: SyncPolicy::Always,
        },
        snapshot_every: 0, // manual snapshots only
    };
    let (mut led, _) = DurableLedger::open(dir.path(), opts).unwrap();
    for i in 0..40u64 {
        led.append_batch(
            BatchId(i),
            Digest::from_u64(i),
            10,
            Digest::from_u64(i + 800),
            proof(i),
            b"payload",
        )
        .unwrap();
    }
    let segments_before = led.segment_count();
    assert!(segments_before > 2);
    led.force_snapshot(b"state-at-40", &[b"c0".to_vec(), b"c1".to_vec()])
        .unwrap();
    assert!(
        led.segment_count() < segments_before,
        "snapshot must prune covered segments"
    );
    drop(led);
    let (led, report) = DurableLedger::open(dir.path(), opts).unwrap();
    assert_eq!(report.snapshot_height, 40);
    assert_eq!(report.app_meta, b"state-at-40");
    assert_eq!(report.app_chunks, vec![b"c0".to_vec(), b"c1".to_vec()]);
    // Replay was bounded: only blocks above the snapshot replay (those
    // in the partially-covered active segment do not count).
    assert_eq!(report.replayed_blocks, 0);
    assert_eq!(led.ledger().height(), 40);
    led.ledger().verify().unwrap();
}

#[test]
fn recovery_report_flags_truncated_tail() {
    let dir = tempfile::tempdir().unwrap();
    let opts = DurableLedgerOptions::default();
    {
        let (mut led, _) = DurableLedger::open(dir.path(), opts).unwrap();
        for i in 0..3u64 {
            led.append_batch(
                BatchId(i),
                Digest::from_u64(i),
                10,
                Digest::from_u64(i + 800),
                proof(i),
                b"payload",
            )
            .unwrap();
        }
    }
    // Torn write at the tail.
    let newest = newest_segment(dir.path());
    {
        use std::io::Write;
        let mut f = fs::OpenOptions::new().append(true).open(&newest).unwrap();
        f.write_all(&[0xDE, 0xAD]).unwrap();
    }
    let (led, report) = DurableLedger::open(dir.path(), opts).unwrap();
    assert!(report.truncated_tail);
    assert_eq!(led.ledger().height(), 3);
}
