//! The commit pipeline: ordering → durability → execution → replies,
//! off the consensus thread.
//!
//! Consensus (the protocol state machine in [`crate::ReplicaRuntime`]'s
//! event loop) never touches a file descriptor. Every [`CommitInfo`] it
//! announces is pushed into a **bounded** queue feeding this worker;
//! the bound is the ack-queue depth — if storage or execution fall more
//! than `commit_queue` slots behind, consensus feels backpressure
//! instead of growing an unbounded buffer. The worker drains the queue
//! in groups: all appends of a group hit the segmented log with the
//! sync policy forced to manual, then **one** fsync covers the whole
//! group (group commit), and only then are results executed upward as
//! client informs — nothing is acknowledged before it is durable.
//!
//! Every block that reaches storage carries a **verified commit
//! certificate**: the protocol layer surfaces the certifying signer
//! set through `CommitInfo::cert`, this worker copies it into the
//! block's `CommitProof`, and `spotless_ledger::verify_proof` gates
//! the append — non-empty, duplicate-free, known signers meeting the
//! phase's quorum, on the live path and on every block received
//! through state transfer alike.
//!
//! The worker also owns the runtime-level **state-transfer** exchange,
//! which runs in two modes. A replica that restarts from its durable
//! log knows its chain height and its (snapshot-recovered) execution
//! height, but the cluster has moved on. It asks a peer for executed
//! blocks from its execution height. If the peer still holds that
//! range, it answers with **block replay**: responses are verified
//! four ways — payload bytes must hash to the block's batch digest,
//! each block's commit certificate must pass quorum verification,
//! blocks already on the local chain must agree hash-for-hash, and new
//! blocks must extend the local head through the ledger's hash-chain
//! check — then applied. If
//! the peer has pruned past the requested height (or restarted with a
//! fresh payload cache), it ships a **snapshot** instead: its KV state
//! bytes plus the certified ledger head. The requester verifies the
//! head block's hash, its commit certificate, and the state digest,
//! then replaces its own (older, prefix-consistent) chain and state
//! wholesale and continues pulling blocks above the snapshot.
//!
//! While catching up the replica does not participate in consensus at
//! all — the event loop holds the protocol node un-started until a
//! weak quorum of peers confirms we stand at their heads (see
//! [`crate::ReplicaRuntime`]) — so the live-commit buffer below stays
//! empty in practice and no longer grows with catch-up duration; it
//! remains as a safety net for commits raced in right after sync.

use crate::envelope::{
    encode_catchup_req, encode_catchup_resp, encode_catchup_snap, CatchUpBlock, Envelope,
    SnapshotTransfer,
};
use crate::fabric::Fabric;
use crate::observe::{CommitLog, CommittedEntry, Inform};
use spotless_crypto::KeyStore;
use spotless_ledger::{verify_proof, Block, CommitProof, Ledger, ProofRules, RecentBatches};
use spotless_storage::snapshot::Snapshot;
use spotless_storage::DurableLedger;
use spotless_types::{
    BatchId, ClientBatch, ClientId, ClusterConfig, CommitInfo, Digest, ReplicaId, SimTime,
};
use spotless_workload::{decode_txns, KvStore, Transaction};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use tokio::sync::mpsc;

/// Upper bound on blocks per catch-up response; the requester iterates.
const CATCHUP_MAX_BLOCKS: usize = 256;

/// Upper bound on cumulative *payload* bytes per catch-up response.
/// The TCP fabric rejects frames over 8 MiB, and the JSON byte-array
/// encoding inflates payloads ~4x — so a block-count bound alone would
/// let realistic batches (hundreds of KB each) build unsendable
/// responses and wedge catch-up forever. 1 MiB of raw payload keeps the
/// serialized frame comfortably inside the limit.
const CATCHUP_MAX_BYTES: usize = 1 << 20;

/// Upper bound on payloads retained in memory for serving catch-up.
/// Durable replicas trim the cache on every snapshot; this cap covers
/// memory-only deployments (and `snapshot_every = 0`), whose cache
/// would otherwise grow with every batch ever committed.
const PAYLOAD_CACHE_MAX: usize = 4096;

/// Commands flowing from the event loop into the pipeline.
pub(crate) enum PipelineCmd {
    /// A consensus decision to persist, execute, and acknowledge.
    Commit(CommitInfo),
    /// A peer asked for our executed blocks from `from_height`.
    Serve { to: ReplicaId, from_height: u64 },
    /// A peer answered our catch-up request.
    Apply {
        from: ReplicaId,
        peer_height: u64,
        blocks: Vec<CatchUpBlock>,
    },
    /// A peer answered with a whole-state snapshot (it pruned the
    /// blocks we asked for).
    ApplySnapshot {
        from: ReplicaId,
        snap: SnapshotTransfer,
    },
    /// Periodic nudge while behind: re-issue the catch-up request (to
    /// the next peer, in case the previous one could not serve us).
    CatchUpTick,
}

/// The in-memory chain store's state (see [`Store::Mem`]).
struct MemStore {
    ledger: Ledger,
    /// The head block of an installed snapshot (serves catch-up
    /// requests that need the base's certificate).
    base_block: Option<Block>,
    /// Recently committed batch ids (the durable store tracks its own;
    /// the mem store needs one for the same re-commit dedup after a
    /// snapshot install).
    recent: RecentBatches,
}

/// The chain store: durable when the deployment has a storage dir,
/// purely in-memory otherwise. Both paths share the ledger's hash-chain
/// verification.
enum Store {
    Durable(Box<DurableLedger>),
    Mem(Box<MemStore>),
}

impl Store {
    fn ledger(&self) -> &Ledger {
        match self {
            Store::Durable(d) => d.ledger(),
            Store::Mem(m) => &m.ledger,
        }
    }

    /// True iff `id` is known committed: either a materialized block
    /// holds it, or it sits inside the recent-id window a snapshot
    /// (recovery or state transfer) carried over. The live commit path
    /// consults this so a rejoining protocol instance that re-announces
    /// recent history cannot re-execute it.
    fn knows_batch(&self, id: BatchId) -> bool {
        if self.ledger().find_batch(id).is_some() {
            return true;
        }
        match self {
            Store::Durable(d) => d.recent_batches().contains(id),
            Store::Mem(m) => m.recent.contains(id),
        }
    }

    /// The recent-id window to ship with an outgoing snapshot.
    fn recent_ids(&self) -> Vec<BatchId> {
        match self {
            Store::Durable(d) => d.recent_batches().iter().collect(),
            Store::Mem(m) => m.recent.iter().collect(),
        }
    }

    /// The block at `height`, looking through the pruned base: the
    /// block just below an installed/recovered snapshot is retained for
    /// serving that snapshot's certificate.
    fn block_at(&self, height: u64) -> Option<&Block> {
        if let Some(b) = self.ledger().block(height) {
            return Some(b);
        }
        let base = match self {
            Store::Durable(d) => d.base_block(),
            Store::Mem(m) => m.base_block.as_ref(),
        };
        base.filter(|b| b.height == height)
    }

    fn append_batch(
        &mut self,
        id: BatchId,
        digest: Digest,
        txns: u32,
        proof: CommitProof,
        payload: &[u8],
    ) -> bool {
        match self {
            Store::Durable(d) => d.append_batch(id, digest, txns, proof, payload).is_ok(),
            Store::Mem(m) => {
                m.ledger.append(id, digest, txns, proof);
                m.recent.push(id);
                true
            }
        }
    }

    fn append_foreign(&mut self, block: Block, payload: &[u8]) -> bool {
        match self {
            Store::Durable(d) => d.append_block(block, payload).is_ok(),
            Store::Mem(m) => {
                let id = block.batch_id;
                let ok = m.ledger.append_existing(block).is_ok();
                if ok {
                    m.recent.push(id);
                }
                ok
            }
        }
    }

    /// Replaces the whole chain with a received snapshot's certified
    /// head (the caller has already verified it). Durable stores make
    /// the snapshot durable and reset their log; the in-memory store
    /// just re-bases its ledger.
    fn install_snapshot(
        &mut self,
        height: u64,
        head: Block,
        transferred_ids: &[BatchId],
        app_state: &[u8],
    ) -> bool {
        match self {
            Store::Durable(d) => d
                .install_snapshot(&Snapshot {
                    height,
                    head_hash: head.hash,
                    head_block: Some(head),
                    recent_ids: transferred_ids.to_vec(),
                    app_state: app_state.to_vec(),
                })
                .is_ok(),
            Store::Mem(m) => {
                m.ledger = Ledger::with_base(height, head.hash);
                m.base_block = Some(head);
                for &id in transferred_ids {
                    m.recent.push(id);
                }
                true
            }
        }
    }

    /// Fsyncs the log; `false` means the group is NOT durable and the
    /// caller must not acknowledge it. A failed fsync poisons the store
    /// by contract — subsequent appends fail too, so the replica stops
    /// acknowledging anything until restarted.
    #[must_use]
    fn sync(&mut self) -> bool {
        match self {
            Store::Durable(d) => d.sync().is_ok(),
            Store::Mem(_) => true,
        }
    }

    /// Snapshots if due; returns the snapshot height when one was
    /// written (the caller trims its payload cache to match the disk
    /// pruning the snapshot performed).
    fn maybe_snapshot(&mut self, kv: &KvStore) -> Option<u64> {
        if let Store::Durable(d) = self {
            if d.snapshot_due() {
                return d.force_snapshot(&kv.to_snapshot_bytes()).ok();
            }
        }
        None
    }
}

enum Mode {
    Synced,
    /// Behind the cluster: live commits buffer here until the gap in
    /// the execution order is filled from peers.
    CatchingUp {
        pending: Vec<CommitInfo>,
        /// Peers that confirmed we stand at (or above) their head. One
        /// lagging peer's word is not enough to declare ourselves
        /// caught up — it might be freshly restarted too; a weak quorum
        /// (`f + 1`) of confirmations guarantees at least one honest,
        /// current peer among them.
        confirmed: std::collections::HashSet<ReplicaId>,
    },
}

pub(crate) struct Pipeline<F: Fabric> {
    me: ReplicaId,
    cluster: ClusterConfig,
    /// Quorum rules every `CommitProof` is verified against before any
    /// block — locally decided or transferred — reaches the store.
    rules: ProofRules,
    keystore: KeyStore,
    fabric: F,
    store: Store,
    kv: KvStore,
    /// Height up to which `kv` reflects executed batches (≤ chain height
    /// right after a restart whose snapshot trails the log).
    kv_height: u64,
    /// Batch payloads for heights `payload_base..` (serves catch-up).
    payloads: Vec<Vec<u8>>,
    payload_base: u64,
    commits: CommitLog,
    informs: mpsc::UnboundedSender<Inform>,
    mode: Mode,
    synced: Arc<AtomicBool>,
    /// Peer rotation cursor for catch-up requests.
    catchup_cursor: u32,
    /// Raised when a consensus-decided commit could not be persisted
    /// verifiably (an unverifiable certificate — a protocol-layer bug).
    /// Dropping such a block while continuing would silently fork this
    /// replica's chain, so instead the pipeline stops acknowledging
    /// anything, turning the fault into a loud crash-style stall the
    /// cluster already tolerates.
    poisoned: bool,
}

impl<F: Fabric> Pipeline<F> {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        me: ReplicaId,
        cluster: ClusterConfig,
        keystore: KeyStore,
        fabric: F,
        durable: Option<DurableLedger>,
        mut kv: KvStore,
        mut kv_height: u64,
        recovered_payloads: Vec<Vec<u8>>,
        commits: CommitLog,
        informs: mpsc::UnboundedSender<Inform>,
        synced: Arc<AtomicBool>,
        allow_catchup: bool,
    ) -> Pipeline<F> {
        let is_durable = durable.is_some();
        let store = match durable {
            Some(d) => Store::Durable(Box::new(d)),
            None => Store::Mem(Box::new(MemStore {
                ledger: Ledger::new(),
                base_block: None,
                recent: RecentBatches::new(),
            })),
        };
        let chain_height = store.ledger().height();
        // Self-contained tail replay: the log persists batch payloads,
        // so the blocks logged above the snapshot re-execute locally —
        // a restarted replica reaches its own chain head without asking
        // anyone (peers are only needed for what it *missed*), and its
        // payload cache is re-seeded so it can serve that tail too.
        // These blocks were acknowledged before the crash, so no new
        // commit entries or informs are emitted for them.
        let mut replay_base = chain_height - recovered_payloads.len() as u64;
        let mut payloads = Vec::with_capacity(recovered_payloads.len());
        for (i, payload) in recovered_payloads.into_iter().enumerate() {
            let h = replay_base + i as u64;
            if h >= kv_height {
                match decode_payload(&payload) {
                    Ok(Some(txns)) => {
                        kv.execute_batch(&txns);
                    }
                    Ok(None) => {}
                    // Only executable payloads are ever appended, so a
                    // malformed one cannot occur on an intact log; fail
                    // soft (peer catch-up re-fills the rest) over
                    // panicking the pipeline.
                    Err(()) => break,
                }
                kv_height = h + 1;
            }
            payloads.push(payload);
        }
        if replay_base + payloads.len() as u64 != chain_height {
            // The replay broke mid-tail: a cache that stops short of
            // the chain head would drift out of alignment the moment a
            // live or caught-up commit pushes at its end (`payloads[i]`
            // must always map to height `payload_base + i`). Drop the
            // cache instead — this replica serves nothing until its
            // next snapshot, and peer catch-up refills the
            // un-re-executed suffix.
            payloads.clear();
            replay_base = chain_height;
        }
        // Every durable replica boots in catch-up: a height-0 store
        // cannot prove freshness — the process may have crashed before
        // its first group fsync while the cluster moved on. At a
        // genuinely fresh cluster boot this self-resolves in a couple
        // of round trips (peers confirm height 0 immediately).
        // Memory-only replicas start synced: nothing survives a crash,
        // so "restart" is not a supported operation for them. A silent
        // (crash-faulty) deployment must emit nothing — not even
        // catch-up requests — so it never enters catch-up.
        let behind = allow_catchup && (is_durable || chain_height > 0 || kv_height > 0);
        let mode = if behind {
            Mode::CatchingUp {
                pending: Vec::new(),
                confirmed: std::collections::HashSet::new(),
            }
        } else {
            Mode::Synced
        };
        synced.store(!behind, Ordering::Relaxed);
        Pipeline {
            me,
            rules: ProofRules::for_cluster(&cluster),
            cluster,
            keystore,
            fabric,
            payload_base: replay_base,
            store,
            kv,
            kv_height,
            payloads,
            commits,
            informs,
            mode,
            synced,
            catchup_cursor: 0,
            poisoned: false,
        }
    }

    pub(crate) async fn run(mut self, mut rx: mpsc::Receiver<PipelineCmd>, group_max: usize) {
        if matches!(self.mode, Mode::CatchingUp { .. }) {
            self.send_catchup_req();
        }
        while let Some(first) = rx.recv().await {
            // Drain opportunistically up to the group bound: everything
            // taken here shares one fsync.
            let mut cmds = vec![first];
            while cmds.len() < group_max {
                match rx.try_recv() {
                    Some(cmd) => cmds.push(cmd),
                    None => break,
                }
            }
            let mut group: Vec<CommitInfo> = Vec::new();
            for cmd in cmds {
                match cmd {
                    PipelineCmd::Commit(info) => group.push(info),
                    other => {
                        self.flush(std::mem::take(&mut group));
                        self.handle(other);
                    }
                }
            }
            self.flush(group);
        }
    }

    fn handle(&mut self, cmd: PipelineCmd) {
        match cmd {
            PipelineCmd::Commit(_) => unreachable!("commits are grouped by the caller"),
            PipelineCmd::Serve { to, from_height } => self.serve_catchup(to, from_height),
            PipelineCmd::Apply {
                from,
                peer_height,
                blocks,
            } => self.apply_catchup(from, peer_height, blocks),
            PipelineCmd::ApplySnapshot { from, snap } => self.apply_snapshot(from, snap),
            PipelineCmd::CatchUpTick => {
                if matches!(self.mode, Mode::CatchingUp { .. }) {
                    self.catchup_cursor += 1; // previous peer did not get us there
                    self.send_catchup_req();
                }
            }
        }
    }

    /// Applies a group of live commits: append all, fsync once, then
    /// execute and acknowledge. While catching up, commits are buffered
    /// instead — they sit after the gap in the execution order.
    fn flush(&mut self, group: Vec<CommitInfo>) {
        if group.is_empty() || self.poisoned {
            return;
        }
        if let Mode::CatchingUp { pending, .. } = &mut self.mode {
            pending.extend(group);
            return;
        }
        let mut executed: Vec<(CommitInfo, Digest)> = Vec::new();
        for info in group {
            if let Some(result) = self.apply_one(&info) {
                executed.push((info, result));
            }
        }
        // Group commit: one fsync covers every append above. If it
        // fails, nothing in the group may be acknowledged — the client
        // would count an ack for state a crash can still lose.
        if !self.store.sync() {
            return;
        }
        self.snapshot_and_trim();
        // Acknowledge only after durability.
        for (info, result) in executed {
            let batch = info.batch.id;
            self.commits.push(CommittedEntry {
                replica: self.me,
                info,
                state_digest: result,
            });
            let _ = self.informs.send(Inform {
                from: self.me,
                batch,
                result,
            });
        }
    }

    /// Appends and executes one live commit (no fsync — the group owns
    /// that). Returns the post-execution state digest, or `None` when
    /// the commit produces no acknowledgement (no-op, duplicate, or
    /// malformed payload).
    fn apply_one(&mut self, info: &CommitInfo) -> Option<Digest> {
        if info.batch.is_noop() {
            return None;
        }
        if self.store.knows_batch(info.batch.id) {
            // Already applied — via catch-up, or covered by a snapshot
            // whose recent-id window remembers it. A rejoining protocol
            // instance re-announces the chain tail it just learned;
            // re-executing any of it would fork this replica's state.
            return None;
        }
        // Decode *before* appending: the ledger and the payload cache
        // must only ever hold executable blocks, or the cache's
        // height-indexing drifts and catch-up serves wrong payloads.
        let txns = match decode_payload(&info.batch.payload) {
            Ok(txns) => txns,
            Err(()) => return None, // malformed payload: never commit it
        };
        // The protocol's commit certificate becomes the block's durable
        // proof — and the ledger refuses it unless the signer set is
        // non-empty, duplicate-free, within the cluster, and meets the
        // phase's quorum. Every protocol in this workspace certifies
        // its commits with at least a weak quorum of identities, so a
        // rejection here means a protocol-layer bug (or a Byzantine
        // node's forgery): fail closed, never persist an unverifiable
        // block.
        let proof = CommitProof {
            instance: info.instance,
            view: info.view,
            phase: info.cert.phase,
            signers: info.cert.signers.clone(),
        };
        if verify_proof(&proof, &self.rules).is_err() {
            // The batch WAS decided cluster-wide; skipping it while
            // continuing to append later commits would leave a silent
            // hole that forks this replica's chain and state. Poison
            // the pipeline instead (same contract as a failed fsync):
            // nothing further is appended or acknowledged, and the
            // replica presents as crashed until restarted.
            debug_assert!(false, "protocol emitted an unverifiable commit certificate");
            self.poisoned = true;
            return None;
        }
        if !self.store.append_batch(
            info.batch.id,
            info.batch.digest,
            info.batch.txns,
            proof,
            &info.batch.payload,
        ) {
            return None; // storage poisoned; stop acknowledging
        }
        let result = match txns {
            Some(txns) => self.kv.execute_batch(&txns),
            None => self.kv.state_digest(), // empty (simulation-style) payload
        };
        self.kv_height = self.store.ledger().height();
        self.payloads.push(info.batch.payload.clone());
        Some(result)
    }

    /// Snapshots if due and trims the in-memory payload cache: to the
    /// snapshot height (matching the pruning the snapshot performed on
    /// disk), and in any case to [`PAYLOAD_CACHE_MAX`] entries so
    /// memory-only deployments do not retain every payload ever
    /// committed. Serving catch-up starts at the trimmed base; older
    /// history comes from another peer (or not at all — ROADMAP).
    fn snapshot_and_trim(&mut self) {
        let mut trim_to = self.store.maybe_snapshot(&self.kv).unwrap_or(0);
        let height = self.payload_base + self.payloads.len() as u64;
        trim_to = trim_to.max(height.saturating_sub(PAYLOAD_CACHE_MAX as u64));
        if trim_to > self.payload_base {
            let n = (trim_to - self.payload_base) as usize;
            self.payloads.drain(..n.min(self.payloads.len()));
            self.payload_base = trim_to;
        }
    }

    // ── state transfer: serving side ────────────────────────────────

    /// Answers a catch-up request in one of two modes: **block replay**
    /// when the requested range is still in the payload cache, or a
    /// **snapshot** of the whole executed state when the requester
    /// wants history we pruned (or never cached — e.g. we restarted).
    fn serve_catchup(&mut self, to: ReplicaId, from_height: u64) {
        let height = self.store.ledger().height();
        if from_height < self.payload_base {
            if let Some(snap) = self.build_snapshot() {
                let env = Envelope::seal(&self.keystore, encode_catchup_snap(&snap));
                self.fabric.send(to, env);
                return;
            }
            // No snapshot to offer (nothing executed yet): fall through
            // to an empty block response so the requester rotates on.
        }
        let mut blocks = Vec::new();
        if from_height >= self.payload_base {
            let mut h = from_height;
            let mut bytes = 0usize;
            while h < height && blocks.len() < CATCHUP_MAX_BLOCKS && bytes < CATCHUP_MAX_BYTES {
                let Some(block) = self.store.ledger().block(h) else {
                    break;
                };
                // The cache is index-aligned with the chain by
                // construction; fail soft (shorter response) over
                // panicking the pipeline if that ever regresses.
                let Some(payload) = self.payloads.get((h - self.payload_base) as usize) else {
                    break;
                };
                bytes += payload.len() + 160; // block overhead estimate
                blocks.push(CatchUpBlock {
                    block: block.clone(),
                    payload: payload.clone(),
                });
                h += 1;
            }
        }
        let env = Envelope::seal(&self.keystore, encode_catchup_resp(height, &blocks));
        self.fabric.send(to, env);
    }

    /// The snapshot of this replica's executed state: KV bytes at
    /// `kv_height` plus the certified block at `kv_height − 1`. `None`
    /// when nothing has executed yet (a height-0 "snapshot" carries no
    /// certificate and transfers nothing a fresh boot lacks).
    ///
    /// Size note: the whole state travels in one signed frame, so this
    /// works for states comfortably under the fabric's frame limit
    /// (8 MiB over TCP); chunked transfer is future work recorded in
    /// the ROADMAP.
    fn build_snapshot(&self) -> Option<SnapshotTransfer> {
        let height = self.kv_height;
        let head = self.store.block_at(height.checked_sub(1)?)?.clone();
        let app_state = self.kv.to_snapshot_bytes();
        Some(SnapshotTransfer {
            height,
            head,
            recent_ids: self.store.recent_ids(),
            app_digest: spotless_crypto::digest_bytes(&app_state),
            app_state,
            peer_height: self.store.ledger().height(),
        })
    }

    // ── catch-up: requesting side ───────────────────────────────────

    fn send_catchup_req(&mut self) {
        let n = self.cluster.n;
        if n <= 1 {
            self.finish_catchup();
            return;
        }
        // Rotate over peers, skipping ourselves.
        let offset = 1 + self.catchup_cursor % (n - 1);
        let peer = ReplicaId((self.me.0 + offset) % n);
        let env = Envelope::seal(&self.keystore, encode_catchup_req(self.kv_height));
        self.fabric.send(peer, env);
    }

    fn apply_catchup(&mut self, from: ReplicaId, peer_height: u64, blocks: Vec<CatchUpBlock>) {
        if !matches!(self.mode, Mode::CatchingUp { .. }) {
            return; // stale response
        }
        let mut appended = false;
        let mut applied: Vec<(CommitInfo, Digest)> = Vec::new();
        for cb in blocks {
            let h = cb.block.height;
            if h < self.kv_height {
                continue; // already executed
            }
            // Payload bytes must hash to the batch digest the block
            // commits to — unconditionally, or a Byzantine peer could
            // strip payloads and silently diverge our execution state.
            // (Legitimately empty batches hash the empty byte string.)
            if spotless_crypto::digest_bytes(&cb.payload) != cb.block.batch_digest {
                break; // forged or corrupt: keep what validated so far
            }
            let Ok(txns) = decode_payload(&cb.payload) else {
                break; // undecodable payload: same treatment
            };
            // The block's commit certificate must verify before it may
            // touch our chain — a peer cannot launder an uncertified
            // block through state transfer. (For blocks we already hold
            // the equality check below re-asserts the same thing.)
            if verify_proof(&cb.block.proof, &self.rules).is_err() {
                break;
            }
            let chain_height = self.store.ledger().height();
            if h < chain_height {
                // We hold this block already (logged before the crash);
                // the peer is only supplying the payload to re-execute.
                // Hashes bind the canonical content; the certificates
                // may legitimately differ (each replica persists the
                // quorum evidence *it* collected).
                match self.store.ledger().block(h) {
                    Some(mine) if mine.hash == cb.block.hash => {}
                    _ => break, // divergent peer: drop the rest
                }
            } else if h == chain_height {
                // New to us: must extend our head (hash-chain checked).
                if !self.store.append_foreign(cb.block.clone(), &cb.payload) {
                    break;
                }
                self.payloads.push(cb.payload.clone());
                appended = true;
            } else {
                break; // gap: the response is not contiguous with us
            }
            let result = match txns {
                Some(txns) => self.kv.execute_batch(&txns),
                None => self.kv.state_digest(),
            };
            self.kv_height = h + 1;
            // `cb` is consumed here (payload moved, not copied — the
            // cache clone above is the only copy made per block).
            applied.push((commit_info_of(cb), result));
        }
        // Durability before any acknowledgement — a torn response (or a
        // failed fsync) must not lose blocks a client already counted
        // toward its quorum.
        if appended {
            if !self.store.sync() {
                return; // poisoned store: acknowledge nothing, stall
            }
            self.snapshot_and_trim();
        }
        let progressed = !applied.is_empty();
        for (info, result) in applied {
            let batch = info.batch.id;
            self.commits.push(CommittedEntry {
                replica: self.me,
                info,
                state_digest: result,
            });
            let _ = self.informs.send(Inform {
                from: self.me,
                batch,
                result,
            });
        }

        self.note_peer_head(from, peer_height, progressed);
    }

    /// Installs a peer's snapshot state transfer after verifying what
    /// is verifiable: the head block must sit just below the claimed
    /// height, its hash must recompute, its commit certificate must
    /// pass quorum verification, and the state bytes must match their
    /// digest and parse as a KV snapshot. Anything less and the
    /// transfer is ignored (the periodic tick rotates to another
    /// peer). The state bytes themselves are trusted to the serving
    /// peer until blocks carry state roots — see the trust-model note
    /// on [`SnapshotTransfer`].
    ///
    /// A usable snapshot strictly dominates local state: it must cover
    /// more than we have executed and at least as much as we have
    /// logged — our chain is then a verified prefix of what the
    /// certified head summarizes, so replacing it wholesale loses
    /// nothing. (Consensus participation is held off until catch-up
    /// completes, so no live commit can be buffered below the installed
    /// height.)
    fn apply_snapshot(&mut self, from: ReplicaId, snap: SnapshotTransfer) {
        if !matches!(self.mode, Mode::CatchingUp { .. }) {
            return; // stale response
        }
        let chain_height = self.store.ledger().height();
        let usable = snap.height > self.kv_height && snap.height >= chain_height;
        let verified = usable
            && snap.head.height + 1 == snap.height
            && snap.head.verify_hash()
            && verify_proof(&snap.head.proof, &self.rules).is_ok()
            && spotless_crypto::digest_bytes(&snap.app_state) == snap.app_digest;
        let mut progressed = false;
        if verified {
            if let Some(kv) = KvStore::from_snapshot_bytes(&snap.app_state) {
                if self.store.install_snapshot(
                    snap.height,
                    snap.head.clone(),
                    &snap.recent_ids,
                    &snap.app_state,
                ) {
                    self.kv = kv;
                    self.kv_height = snap.height;
                    self.payloads.clear();
                    self.payload_base = snap.height;
                    progressed = true;
                }
            }
        }
        self.note_peer_head(from, snap.peer_height, progressed);
    }

    /// Confirmation bookkeeping shared by both transfer modes.
    ///
    /// "At this peer's head" must also mean our *own* chain is fully
    /// executed: after a restart the log can be ahead of the KV
    /// snapshot, and declaring ourselves synced before re-executing
    /// those logged blocks would hide the gap forever (live-commit
    /// dedup skips blocks already on the chain).
    fn note_peer_head(&mut self, from: ReplicaId, peer_height: u64, progressed: bool) {
        let chain_height = self.store.ledger().height();
        let at_peer_head = self.kv_height >= chain_height && chain_height >= peer_height;
        let weak_quorum = self.cluster.weak_quorum() as usize;
        let quorum_confirmed = {
            let Mode::CatchingUp { confirmed, .. } = &mut self.mode else {
                return;
            };
            if progressed {
                // The cluster head moved under us; earlier
                // confirmations are stale.
                confirmed.clear();
            }
            if !at_peer_head {
                // More to fetch: keep pulling from the same peer.
                None
            } else {
                // This peer has nothing above us. One lagging peer
                // proves nothing (it may be freshly restarted itself);
                // collect a weak quorum of such confirmations before
                // declaring ourselves caught up.
                confirmed.insert(from);
                Some(confirmed.len() >= weak_quorum)
            }
        };
        match quorum_confirmed {
            Some(true) => self.finish_catchup(),
            Some(false) => {
                self.catchup_cursor += 1;
                self.send_catchup_req();
            }
            // Re-request immediately only when this response moved us
            // forward (pulling a long chain in capped slices). A
            // zero-progress response (peer pruned our range, or is
            // behind us) must NOT re-request in a tight loop — the
            // periodic tick retries and rotates peers instead.
            None if progressed => self.send_catchup_req(),
            None => {}
        }
    }

    fn finish_catchup(&mut self) {
        let pending = match std::mem::replace(&mut self.mode, Mode::Synced) {
            Mode::CatchingUp { pending, .. } => pending,
            Mode::Synced => Vec::new(),
        };
        self.synced.store(true, Ordering::Relaxed);
        // Live commits buffered during catch-up: apply what the
        // catch-up did not already cover (dedup by batch id).
        self.flush(pending);
    }
}

/// Decodes a batch payload: `Ok(None)` for the empty (simulation-style)
/// payload, `Ok(Some(txns))` when it parses, `Err(())` when malformed.
fn decode_payload(payload: &[u8]) -> Result<Option<Vec<Transaction>>, ()> {
    if payload.is_empty() {
        return Ok(None);
    }
    decode_txns(payload).map(Some).ok_or(())
}

/// Reconstructs commit metadata for a block applied via catch-up,
/// consuming it (the payload is moved, not copied). The original client
/// batch envelope is gone; what matters downstream is the batch
/// identity, digest, payload, and the (re-verified) commit certificate
/// the block carried.
fn commit_info_of(cb: CatchUpBlock) -> CommitInfo {
    CommitInfo {
        instance: cb.block.proof.instance,
        view: cb.block.proof.view,
        depth: cb.block.height,
        cert: spotless_types::CommitCertificate {
            view: cb.block.proof.view,
            phase: cb.block.proof.phase,
            signers: cb.block.proof.signers,
        },
        batch: ClientBatch {
            id: cb.block.batch_id,
            origin: ClientId(u64::MAX),
            digest: cb.block.batch_digest,
            txns: cb.block.txns,
            txn_size: 0,
            created_at: SimTime::ZERO,
            payload: cb.payload,
        },
    }
}
