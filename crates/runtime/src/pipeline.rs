//! The commit pipeline: ordering → execution → durability → replies,
//! off the consensus thread.
//!
//! Consensus (the protocol state machine in [`crate::ReplicaRuntime`]'s
//! event loop) never touches a file descriptor. Every [`CommitInfo`] it
//! announces is pushed into a **bounded** queue feeding this worker;
//! the bound is the ack-queue depth — if storage or execution fall more
//! than `commit_queue` slots behind, consensus feels backpressure
//! instead of growing an unbounded buffer. The worker drains the queue
//! in groups: each commit is **executed first** against the KV store —
//! the resulting Merkle `state_root` is sealed into the block (header
//! v3, execute-then-seal) — then all appends of a group hit the
//! segmented log with the sync policy forced to manual, **one** fsync
//! covers the whole group (group commit), and only then are results
//! acknowledged upward as client informs — nothing is acknowledged
//! before it is durable. Deterministic execution order is
//! consensus-critical under execute-then-seal (the root a block seals
//! is a function of the exact chain prefix below it); the pipeline
//! asserts the KV state and chain height stay aligned at every seal.
//!
//! Every block that reaches storage carries a **verified commit
//! certificate**: the protocol layer surfaces the certifying votes
//! (signer set plus one Ed25519 signature per signer over the vote
//! statement) through `CommitInfo::cert`, this worker copies them into
//! the block's `CommitProof`, and `spotless_ledger::verify_proof`
//! gates the append — non-empty, duplicate-free, known signers meeting
//! the phase's quorum, **and every signature batch-re-verified against
//! the signer's public key** — on the live path and on every block
//! received through state transfer alike. Live certificates are
//! sanitized first: (signer, signature) pairs that fail verification
//! are dropped and the phase downgraded if the survivors no longer
//! meet the strong quorum, so one forged vote smuggled into an
//! otherwise-valid quorum cannot poison the pipeline.
//!
//! The worker also owns the runtime-level **state-transfer** exchange,
//! which runs in two modes. A replica that restarts from its durable
//! log knows its chain height and its (snapshot-recovered) execution
//! height, but the cluster has moved on. It asks a peer for executed
//! blocks from its execution height. If the peer still holds that
//! range, it answers with **block replay**: responses are verified
//! five ways — payload bytes must hash to the block's batch digest,
//! each block's commit certificate must pass quorum verification,
//! blocks already on the local chain must agree hash-for-hash, new
//! blocks must extend the local head through the hash-chain check, and
//! re-executing each payload must reproduce the block's sealed
//! `state_root` — then applied. If the peer has pruned past the
//! requested height (or restarted with a fresh payload cache), it
//! opens a **chunked snapshot transfer** instead: a manifest first
//! (certified head block + application meta verified against the
//! head's `state_root` by Merkle inclusion proof + the chunk plan),
//! then ranged chunk fetches — each chunk's buckets verified against
//! the same root before a byte is trusted, out-of-order arrival
//! tolerated, missing chunks re-requested on the periodic tick, the
//! serving peer rotated when it stalls. Verified chunks land in the
//! crash-safe install journal (`spotless_storage::transfer`), so an
//! interrupted transfer **resumes** after a restart instead of
//! starting over. Once complete, the assembled state is audited one
//! final time against the chain's root and installed wholesale.
//!
//! While catching up the replica does not participate in consensus at
//! all — the event loop holds the protocol node un-started until a
//! weak quorum of peers confirms we stand at their heads (see
//! [`crate::ReplicaRuntime`]) — so the live-commit buffer below stays
//! empty in practice and no longer grows with catch-up duration; it
//! remains as a safety net for commits raced in right after sync.

use crate::envelope::{
    decode_ref, encode_catchup_manifest, encode_catchup_req, encode_catchup_resp, encode_chunk,
    encode_chunk_req, CatchUpBlock, CatchUpBlockRef, ChunkInfo, ChunkTransfer, ChunkTransferRef,
    Envelope, TransferManifest, TransferManifestRef, WireMsgRef,
};
use crate::executor::{execute_group, ExecutorPool};
use crate::fabric::Fabric;
use crate::observe::{CommitLog, CommittedEntry, Inform, SnapshotStats};
use spotless_crypto::{proof_index, verify_inclusion, KeyStore, ProofStep};
use spotless_ledger::{verify_proof, Block, CommitProof, Ledger, ProofRules, RecentBatches};
use spotless_storage::snapshot::Snapshot;
use spotless_storage::transfer::{InstallJournal, InstallManifest};
use spotless_storage::DurableLedger;
use spotless_types::{
    BatchId, CertPhase, ClientBatch, ClientId, ClusterConfig, CommitInfo, Digest, ReplicaId,
    SimTime,
};
use spotless_workload::{
    decode_txns, shard_of_bucket, verify_bucket, KvStore, StateChunk, Transaction, EXEC_SHARDS,
    META_LEAF, STATE_BUCKETS,
};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use tokio::sync::mpsc;

/// Upper bound on blocks per catch-up response; the requester iterates.
const CATCHUP_MAX_BLOCKS: usize = 256;

/// Upper bound on cumulative *payload* bytes per catch-up response.
/// The fabric rejects frames over `SIMPLE_FRAME_LIMIT` — so a
/// block-count bound alone would let realistic batches (hundreds of KB
/// each) build unsendable responses and wedge catch-up forever. The
/// binary wire codec carries payload bytes 1:1 (the JSON-era hex
/// doubling is gone), so an eighth of the frame limit in raw payload
/// keeps the serialized frame comfortably inside it with generous
/// headroom for block metadata.
const CATCHUP_MAX_BYTES: usize = spotless_types::SNAPSHOT_CHUNK_BYTES;

/// Upper bound on payloads retained in memory for serving catch-up.
/// Durable replicas trim the cache on every snapshot; this cap covers
/// memory-only deployments (and `snapshot_every = 0`), whose cache
/// would otherwise grow with every batch ever committed.
const PAYLOAD_CACHE_MAX: usize = 4096;

/// Chunk fetches kept in flight at once during a snapshot transfer
/// (bounds the memory a slow receiver commits to unprocessed frames).
const MAX_INFLIGHT_CHUNKS: usize = 4;

/// Catch-up ticks a chunked transfer may stall (no chunk accepted)
/// before the receiver abandons the serving peer and rotates. The
/// journal keeps the verified chunks, so a rotation back to the same
/// transfer resumes rather than restarts.
const TRANSFER_STALL_TICKS: u32 = 4;

/// Ticks a frozen outgoing snapshot slot may sit untouched (no manifest
/// or chunk request against it) before the serving side releases it.
/// Each slot pins a full copy of the state plus every proof; a
/// requester that vanished mid-transfer must not leave it pinned until
/// the next serve. Generous relative to [`TRANSFER_STALL_TICKS`]: a
/// live receiver re-requests every one of its ticks, so only a
/// genuinely dead transfer ages this far. At the default 150 ms tick
/// this is ~10 s of silence. Each slot ages independently.
const OUTGOING_SNAPSHOT_IDLE_TICKS: u32 = 64;

/// Outgoing snapshot slots cached at once. Two slots cover the
/// head-of-line case that matters: one peer mid-transfer at a frozen
/// height while a second peer manifests at the (newer) current height —
/// with a single slot the second request used to evict the first
/// transfer, forcing its receiver to re-manifest and ping-pong. More
/// concurrent *distinct heights* than slots degrade gracefully: the
/// idlest slot is evicted and its receiver re-manifests (its journal
/// keeps verified chunks, so the transfer resumes, not restarts).
/// Deliberately small — each slot pins a full state copy plus proofs.
const OUTGOING_SNAPSHOT_SLOTS: usize = 2;

/// Commands flowing from the event loop into the pipeline.
// `Commit` dwarfs the other variants, but it is also the hot variant —
// boxing it would buy queue-slot bytes with an allocation per commit.
#[allow(clippy::large_enum_variant)]
pub(crate) enum PipelineCmd {
    /// A consensus decision to persist, execute, and acknowledge.
    Commit(CommitInfo),
    /// A signature-verified transfer-family envelope (any tag except
    /// `TAG_PROTOCOL`), still encoded. The pipeline decodes it with the
    /// borrowing reader off the event-loop thread and copies bytes only
    /// at its storage boundaries (payload cache, install journal,
    /// accepted manifest) — the event loop ships the refcounted
    /// [`Payload`](crate::envelope::Payload) view it already holds, so
    /// routing a multi-megabyte chunk costs a pointer.
    Transfer {
        from: ReplicaId,
        payload: crate::envelope::Payload,
    },
    /// The runtime's periodic tick. While behind: re-issue the catch-up
    /// request or re-fetch missing chunks (rotating peers when one
    /// stalls). While synced: serving-side maintenance — age out frozen
    /// outgoing snapshot slots whose requesters vanished.
    Tick,
}

/// The in-memory chain store's state (see [`Store::Mem`]).
struct MemStore {
    ledger: Ledger,
    /// The head block of an installed snapshot (serves catch-up
    /// requests that need the base's certificate).
    base_block: Option<Block>,
    /// Recently committed batch ids (the durable store tracks its own;
    /// the mem store needs one for the same re-commit dedup after a
    /// snapshot install).
    recent: RecentBatches,
}

/// The chain store: durable when the deployment has a storage dir,
/// purely in-memory otherwise. Both paths share the ledger's hash-chain
/// verification.
enum Store {
    Durable(Box<DurableLedger>),
    Mem(Box<MemStore>),
}

impl Store {
    fn ledger(&self) -> &Ledger {
        match self {
            Store::Durable(d) => d.ledger(),
            Store::Mem(m) => &m.ledger,
        }
    }

    /// True iff `id` is known committed: either a materialized block
    /// holds it, or it sits inside the recent-id window a snapshot
    /// (recovery or state transfer) carried over. The live commit path
    /// consults this so a rejoining protocol instance that re-announces
    /// recent history cannot re-execute it.
    fn knows_batch(&self, id: BatchId) -> bool {
        if self.ledger().find_batch(id).is_some() {
            return true;
        }
        match self {
            Store::Durable(d) => d.recent_batches().contains(id),
            Store::Mem(m) => m.recent.contains(id),
        }
    }

    /// The recent-id window to ship with an outgoing snapshot.
    fn recent_ids(&self) -> Vec<BatchId> {
        match self {
            Store::Durable(d) => d.recent_batches().iter().collect(),
            Store::Mem(m) => m.recent.iter().collect(),
        }
    }

    /// The block at `height`, looking through the pruned base: the
    /// block just below an installed/recovered snapshot is retained for
    /// serving that snapshot's certificate.
    fn block_at(&self, height: u64) -> Option<&Block> {
        if let Some(b) = self.ledger().block(height) {
            return Some(b);
        }
        let base = match self {
            Store::Durable(d) => d.base_block(),
            Store::Mem(m) => m.base_block.as_ref(),
        };
        base.filter(|b| b.height == height)
    }

    #[allow(clippy::too_many_arguments)]
    fn append_batch(
        &mut self,
        id: BatchId,
        digest: Digest,
        txns: u32,
        state_root: Digest,
        proof: CommitProof,
        payload: &[u8],
    ) -> bool {
        match self {
            Store::Durable(d) => d
                .append_batch(id, digest, txns, state_root, proof, payload)
                .is_ok(),
            Store::Mem(m) => {
                m.ledger.append(id, digest, txns, state_root, proof);
                m.recent.push(id);
                true
            }
        }
    }

    fn append_foreign(&mut self, block: Block, payload: &[u8]) -> bool {
        match self {
            Store::Durable(d) => d.append_block(block, payload).is_ok(),
            Store::Mem(m) => {
                let id = block.batch_id;
                let ok = m.ledger.append_existing(block).is_ok();
                if ok {
                    m.recent.push(id);
                }
                ok
            }
        }
    }

    /// Replaces the whole chain with a received snapshot's certified
    /// head (the caller has already verified the assembled state
    /// against the head's `state_root`). Durable stores make the
    /// snapshot durable and reset their log; the in-memory store just
    /// re-bases its ledger.
    fn install_snapshot(
        &mut self,
        height: u64,
        head: Block,
        transferred_ids: &[BatchId],
        app_meta: &[u8],
        app_chunks: &[Vec<u8>],
    ) -> bool {
        match self {
            Store::Durable(d) => d
                .install_snapshot(&Snapshot {
                    height,
                    head_hash: head.hash,
                    head_block: Some(head),
                    recent_ids: transferred_ids.to_vec(),
                    app_meta: app_meta.to_vec(),
                    app_chunks: app_chunks.to_vec(),
                })
                .is_ok(),
            Store::Mem(m) => {
                m.ledger = Ledger::with_base(height, head.hash);
                m.base_block = Some(head);
                for &id in transferred_ids {
                    m.recent.push(id);
                }
                true
            }
        }
    }

    /// Fsyncs the log; `false` means the group is NOT durable and the
    /// caller must not acknowledge it. A failed fsync poisons the store
    /// by contract — subsequent appends fail too, so the replica stops
    /// acknowledging anything until restarted.
    #[must_use]
    fn sync(&mut self) -> bool {
        match self {
            Store::Durable(d) => d.sync().is_ok(),
            Store::Mem(_) => true,
        }
    }

    /// True iff this is a durable store with a snapshot due.
    fn snapshot_due(&self) -> bool {
        matches!(self, Store::Durable(d) if d.snapshot_due())
    }
}

/// What the previous durable snapshot serialized, kept so the next one
/// can skip shards whose state did not move. A shard's sub-root is a
/// collision-resistant digest of its entire contents, so `sub_roots[s]`
/// unchanged ⇒ every chunk of shard `s` re-encodes to the same bytes —
/// the cached encodings are reused verbatim and the per-key walk is
/// skipped. Invalidated wholesale when the chunk budget could differ
/// (it cannot today: the budget is fixed at construction).
struct SnapshotCache {
    /// Per-shard sub-root at the last snapshot.
    sub_roots: Vec<Digest>,
    /// Per-shard encoded chunk list at the last snapshot, in shard
    /// order (their concatenation is exactly `KvStore::to_chunks`).
    chunks: Vec<Vec<Vec<u8>>>,
}

enum Mode {
    Synced,
    /// Behind the cluster: live commits buffer here until the gap in
    /// the execution order is filled from peers.
    CatchingUp {
        pending: Vec<CommitInfo>,
        /// Peers that confirmed we stand at (or above) their head. One
        /// lagging peer's word is not enough to declare ourselves
        /// caught up — it might be freshly restarted too; a weak quorum
        /// (`f + 1`) of confirmations guarantees at least one honest,
        /// current peer among them.
        confirmed: std::collections::HashSet<ReplicaId>,
    },
}

/// Receiving-side state of a chunked snapshot transfer in progress.
/// The durable half (manifest + verified chunk bytes) lives in the
/// [`InstallJournal`]; this is the per-session bookkeeping around it.
struct IncomingTransfer {
    /// The peer serving the chunks.
    peer: ReplicaId,
    /// The wire manifest (carries the chunk plan the journal's digest
    /// list was derived from).
    manifest: TransferManifest,
    /// Chunk indexes requested but not yet received.
    inflight: std::collections::HashSet<u32>,
    /// Consecutive ticks without an accepted chunk.
    stalled_ticks: u32,
}

/// One serving-side outgoing snapshot slot: chunks and proofs frozen
/// at the height the manifest was built for, so a multi-round transfer
/// stays internally consistent while this replica keeps executing. Up
/// to [`OUTGOING_SNAPSHOT_SLOTS`] distinct heights are cached at once
/// (keyed by height — the chunk protocol carries the height on every
/// message), so a second recovering peer manifesting at a newer height
/// is served from a fresh slot instead of evicting a transfer another
/// peer is mid-fetch on. Each slot ages out independently on the tick.
/// One frozen outgoing chunk: descriptor, canonical encoding,
/// per-bucket shard-level proofs (empty for fragments), and the shared
/// top-tree proof of the owning shard's sub-root.
type FrozenChunk = (ChunkInfo, Vec<u8>, Vec<Vec<ProofStep>>, Vec<ProofStep>);

struct OutgoingSnapshot {
    height: u64,
    head: Block,
    recent_ids: Vec<BatchId>,
    app_meta: Vec<u8>,
    meta_proof: Vec<ProofStep>,
    chunks: Vec<FrozenChunk>,
    /// Consecutive ticks without a manifest or chunk request against
    /// this slot (see [`OUTGOING_SNAPSHOT_IDLE_TICKS`]).
    idle_ticks: u32,
}

pub(crate) struct Pipeline<F: Fabric> {
    me: ReplicaId,
    cluster: ClusterConfig,
    /// Quorum rules every `CommitProof` is verified against before any
    /// block — locally decided or transferred — reaches the store.
    rules: ProofRules,
    keystore: KeyStore,
    fabric: F,
    store: Store,
    kv: KvStore,
    /// Height up to which `kv` reflects executed batches (≤ chain height
    /// right after a restart whose snapshot trails the log).
    kv_height: u64,
    /// Batch payloads for heights `payload_base..` (serves catch-up).
    payloads: Vec<Vec<u8>>,
    payload_base: u64,
    commits: CommitLog,
    informs: mpsc::UnboundedSender<Inform>,
    mode: Mode,
    synced: Arc<AtomicBool>,
    /// Peer rotation cursor for catch-up requests.
    catchup_cursor: u32,
    /// Raw chunk budget for outgoing snapshots (derived from the frame
    /// limit by default; tests shrink it to force many chunks).
    chunk_budget: usize,
    /// Crash-safe record of a chunked install in progress (resumes
    /// after a restart).
    journal: InstallJournal,
    /// Parallel execution workers for committed batches (`None` runs
    /// every group inline — the serial baseline). Scheduling and the
    /// determinism argument live in [`crate::executor`].
    exec: Option<ExecutorPool>,
    /// Dirty-shard snapshot delta: what the previous snapshot encoded,
    /// per shard, so clean shards skip re-serialization entirely.
    snap_cache: Option<SnapshotCache>,
    /// Counters proving the delta works (encoded vs reused shards).
    snap_stats: SnapshotStats,
    /// Live bookkeeping of the transfer the journal describes.
    incoming: Option<IncomingTransfer>,
    /// Frozen outgoing snapshot slots served to recovering peers, at
    /// most [`OUTGOING_SNAPSHOT_SLOTS`], keyed by height.
    outgoing: Vec<OutgoingSnapshot>,
    /// Raised when a consensus-decided commit could not be persisted
    /// verifiably (an unverifiable certificate, a root-divergent
    /// re-execution, or a storage append that failed after execution).
    /// Dropping such a block while continuing would silently fork this
    /// replica's chain, so instead the pipeline stops acknowledging
    /// anything, turning the fault into a loud crash-style stall the
    /// cluster already tolerates.
    poisoned: bool,
}

impl<F: Fabric> Pipeline<F> {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        me: ReplicaId,
        cluster: ClusterConfig,
        keystore: KeyStore,
        fabric: F,
        durable: Option<DurableLedger>,
        mut kv: KvStore,
        mut kv_height: u64,
        recovered_payloads: Vec<Vec<u8>>,
        journal: InstallJournal,
        chunk_budget: usize,
        exec_pool: usize,
        commits: CommitLog,
        informs: mpsc::UnboundedSender<Inform>,
        synced: Arc<AtomicBool>,
        allow_catchup: bool,
        snap_stats: SnapshotStats,
    ) -> Pipeline<F> {
        let is_durable = durable.is_some();
        let store = match durable {
            Some(d) => Store::Durable(Box::new(d)),
            None => Store::Mem(Box::new(MemStore {
                ledger: Ledger::new(),
                base_block: None,
                recent: RecentBatches::new(),
            })),
        };
        let chain_height = store.ledger().height();
        // Self-contained tail replay: the log persists batch payloads,
        // so the blocks logged above the snapshot re-execute locally —
        // a restarted replica reaches its own chain head without asking
        // anyone (peers are only needed for what it *missed*), and its
        // payload cache is re-seeded so it can serve that tail too.
        // These blocks were acknowledged before the crash, so no new
        // commit entries or informs are emitted for them.
        let mut replay_base = chain_height - recovered_payloads.len() as u64;
        let mut payloads = Vec::with_capacity(recovered_payloads.len());
        for (i, payload) in recovered_payloads.into_iter().enumerate() {
            let h = replay_base + i as u64;
            if h >= kv_height {
                match decode_payload(&payload) {
                    Ok(Some(txns)) => {
                        kv.execute_batch(&txns);
                    }
                    Ok(None) => {}
                    // Only executable payloads are ever appended, so a
                    // malformed one cannot occur on an intact log; fail
                    // soft (peer catch-up re-fills the rest) over
                    // panicking the pipeline.
                    Err(()) => break,
                }
                // Replaying our own CRC-protected log must reproduce
                // the root each block sealed — this is the recovery-
                // path form of the deterministic-execution assertion.
                debug_assert_eq!(
                    store.ledger().block(h).map(|b| b.state_root),
                    Some(kv.state_root()),
                    "log replay diverged from the sealed state root at height {h}"
                );
                kv_height = h + 1;
            }
            payloads.push(payload);
        }
        if replay_base + payloads.len() as u64 != chain_height {
            // The replay broke mid-tail: a cache that stops short of
            // the chain head would drift out of alignment the moment a
            // live or caught-up commit pushes at its end (`payloads[i]`
            // must always map to height `payload_base + i`). Drop the
            // cache instead — this replica serves nothing until its
            // next snapshot, and peer catch-up refills the
            // un-re-executed suffix.
            payloads.clear();
            replay_base = chain_height;
        }
        // Every durable replica boots in catch-up: a height-0 store
        // cannot prove freshness — the process may have crashed before
        // its first group fsync while the cluster moved on. At a
        // genuinely fresh cluster boot this self-resolves in a couple
        // of round trips (peers confirm height 0 immediately).
        // Memory-only replicas start synced: nothing survives a crash,
        // so "restart" is not a supported operation for them. A silent
        // (crash-faulty) deployment must emit nothing — not even
        // catch-up requests — so it never enters catch-up.
        let behind = allow_catchup && (is_durable || chain_height > 0 || kv_height > 0);
        let mode = if behind {
            Mode::CatchingUp {
                pending: Vec::new(),
                confirmed: std::collections::HashSet::new(),
            }
        } else {
            Mode::Synced
        };
        synced.store(!behind, Ordering::Relaxed);
        Pipeline {
            me,
            rules: ProofRules::for_cluster(&cluster),
            cluster,
            keystore,
            fabric,
            payload_base: replay_base,
            store,
            kv,
            kv_height,
            payloads,
            commits,
            informs,
            mode,
            synced,
            catchup_cursor: 0,
            chunk_budget: chunk_budget.max(1),
            journal,
            exec: (exec_pool > 0).then(|| ExecutorPool::spawn(exec_pool)),
            snap_cache: None,
            snap_stats,
            incoming: None,
            outgoing: Vec::new(),
            poisoned: false,
        }
    }

    pub(crate) async fn run(mut self, mut rx: mpsc::Receiver<PipelineCmd>, group_max: usize) {
        if matches!(self.mode, Mode::CatchingUp { .. }) {
            self.send_catchup_req();
        }
        while let Some(first) = rx.recv().await {
            // Drain opportunistically up to the group bound: everything
            // taken here shares one fsync.
            let mut cmds = vec![first];
            while cmds.len() < group_max {
                match rx.try_recv() {
                    Some(cmd) => cmds.push(cmd),
                    None => break,
                }
            }
            let mut group: Vec<CommitInfo> = Vec::new();
            for cmd in cmds {
                match cmd {
                    PipelineCmd::Commit(info) => group.push(info),
                    other => {
                        self.flush(std::mem::take(&mut group));
                        self.handle(other);
                    }
                }
            }
            self.flush(group);
        }
    }

    fn handle(&mut self, cmd: PipelineCmd) {
        match cmd {
            PipelineCmd::Commit(_) => unreachable!("commits are grouped by the caller"),
            PipelineCmd::Transfer { from, payload } => self.on_transfer(from, &payload),
            PipelineCmd::Tick => self.on_tick(),
        }
    }

    /// Decodes a transfer-family envelope payload *borrowed* — block
    /// payloads, chunk bytes, and app metadata stay views into the
    /// received buffer — and dispatches it. Owning copies happen only
    /// where bytes cross a storage boundary (payload cache, chunk
    /// journal, accepted manifest). The event loop already routed by
    /// tag and verified the signature; a payload that fails the full
    /// borrowed decode here is simply dropped.
    fn on_transfer(&mut self, from: ReplicaId, payload: &[u8]) {
        match decode_ref(payload) {
            Some(WireMsgRef::CatchUpReq { from_height }) => self.serve_catchup(from, from_height),
            Some(WireMsgRef::CatchUpResp {
                peer_height,
                blocks,
            }) => self.apply_catchup(from, peer_height, &blocks),
            Some(WireMsgRef::Manifest(manifest)) => self.apply_manifest(from, &manifest),
            Some(WireMsgRef::ChunkReq { height, index }) => self.serve_chunk(from, height, index),
            Some(WireMsgRef::Chunk(chunk)) => self.apply_chunk(from, &chunk),
            Some(WireMsgRef::Protocol(_)) | None => {}
        }
    }

    /// Applies a group of live commits in three phases — validate all
    /// in commit order, execute the group (in parallel across disjoint
    /// shard footprints when a worker pool is attached), then seal and
    /// append in commit order — followed by one fsync and the
    /// acknowledgements. While catching up, commits are buffered
    /// instead — they sit after the gap in the execution order.
    fn flush(&mut self, group: Vec<CommitInfo>) {
        if group.is_empty() || self.poisoned {
            return;
        }
        if let Mode::CatchingUp { pending, .. } = &mut self.mode {
            pending.extend(group);
            return;
        }
        // Execute-then-seal. The roots sealed below are a function of
        // the exact chain prefix executed so far, which makes
        // deterministic execution order consensus-critical — assert the
        // alignment before the group runs.
        debug_assert_eq!(
            self.kv_height,
            self.store.ledger().height(),
            "execute-then-seal requires the KV state to track the chain head exactly"
        );
        // Phase 1 — validate in commit order. Skips no-ops, batches the
        // store already holds (via catch-up, or covered by a snapshot
        // whose recent-id window remembers it — a rejoining protocol
        // instance re-announces the chain tail it just learned, and
        // re-executing any of it would fork this replica's state), and
        // duplicates *within* this group (appends now happen after the
        // whole group executes, so `knows_batch` alone cannot see
        // them). Payloads are decoded before anything executes: the
        // ledger and the payload cache must only ever hold executable
        // blocks, or the cache's height-indexing drifts and catch-up
        // serves wrong payloads.
        let mut prepared: Vec<(CommitInfo, Option<Vec<Transaction>>, CommitProof)> = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for info in group {
            if info.batch.is_noop()
                || self.store.knows_batch(info.batch.id)
                || !seen.insert(info.batch.id)
            {
                continue;
            }
            let txns = match decode_payload(&info.batch.payload) {
                Ok(txns) => txns,
                Err(()) => continue, // malformed payload: never commit it
            };
            // The protocol's commit certificate becomes the block's
            // durable proof — and the ledger refuses it unless the
            // signer set is non-empty, duplicate-free, within the
            // cluster, meets the phase's quorum, and every signature
            // verifies against its signer's key. Sanitize first: drop
            // (signer, signature) pairs that fail verification and
            // downgrade the phase when the survivors fall below the
            // strong quorum, so a single forged vote riding an
            // otherwise-valid quorum costs that vote, not the replica.
            // (When every pair verifies — the hot path — the sanitizer
            // is one batch verification and copies nothing out.)
            let (signers, sigs, phase) =
                sanitize_cert(&info.cert, info.instance, &self.keystore, &self.rules);
            let proof = CommitProof {
                instance: info.instance,
                view: info.view,
                phase,
                voted: info.cert.voted,
                slot: info.cert.slot,
                signers,
                sigs,
            };
            if verify_proof(&proof, &self.rules, &self.keystore).is_err() {
                // The batch WAS decided cluster-wide; skipping it while
                // continuing to append later commits would leave a
                // silent hole that forks this replica's chain and
                // state. Poison the pipeline instead (same contract as
                // a failed fsync): the valid prefix gathered so far
                // still commits, then nothing further is appended or
                // acknowledged, and the replica presents as crashed
                // until restarted. Reachable from forged input (a
                // certificate whose surviving votes fall below the
                // weak quorum), so no debug assertion — loud-stalling
                // is the contract, aborting is not.
                self.poisoned = true;
                break;
            }
            prepared.push((info, txns, proof));
        }
        // Phase 2 — execute. The scheduler in [`crate::executor`]
        // partitions the group into shard-footprint conflict
        // components; components run concurrently on the pool while the
        // per-batch seals are folded back in commit order, so the
        // sequence of sealed roots is byte-identical to serial
        // execution. `None` entries (empty simulation-style payloads)
        // seal the untouched state.
        let txn_groups: Vec<Option<Vec<Transaction>>> = prepared
            .iter_mut()
            .map(|(_, txns, _)| txns.take())
            .collect();
        let sealed = execute_group(self.exec.as_mut(), &mut self.kv, txn_groups);
        // Phase 3 — seal + append in commit order (no fsync yet — the
        // group owns that).
        let mut executed: Vec<(CommitInfo, Digest)> = Vec::new();
        for ((info, _, proof), sealed) in prepared.into_iter().zip(sealed) {
            if !self.store.append_batch(
                info.batch.id,
                info.batch.digest,
                info.batch.txns,
                sealed.state_root,
                proof,
                &info.batch.payload,
            ) {
                // The KV state advanced but the chain did not:
                // continuing would fork this replica. Same loud-stall
                // contract as an unverifiable certificate.
                self.poisoned = true;
                break;
            }
            self.kv_height = self.store.ledger().height();
            self.payloads.push(info.batch.payload.clone());
            executed.push((info, sealed.state_digest));
        }
        // Group commit: one fsync covers every append above. If it
        // fails, nothing in the group may be acknowledged — the client
        // would count an ack for state a crash can still lose.
        if !self.store.sync() {
            return;
        }
        self.snapshot_and_trim();
        // Acknowledge only after durability.
        for (info, result) in executed {
            let batch = info.batch.id;
            self.commits.push(CommittedEntry {
                replica: self.me,
                info,
                state_digest: result,
            });
            let _ = self.informs.send(Inform {
                from: self.me,
                batch,
                result,
            });
        }
    }

    /// Snapshots if due and trims the in-memory payload cache: to the
    /// snapshot height (matching the pruning the snapshot performed on
    /// disk), and in any case to [`PAYLOAD_CACHE_MAX`] entries so
    /// memory-only deployments do not retain every payload ever
    /// committed. Serving catch-up starts at the trimmed base; older
    /// history is served via the chunked snapshot transfer.
    fn snapshot_and_trim(&mut self) {
        let mut trim_to = self.maybe_snapshot().unwrap_or(0);
        let height = self.payload_base + self.payloads.len() as u64;
        trim_to = trim_to.max(height.saturating_sub(PAYLOAD_CACHE_MAX as u64));
        if trim_to > self.payload_base {
            let n = (trim_to - self.payload_base) as usize;
            self.payloads.drain(..n.min(self.payloads.len()));
            self.payload_base = trim_to;
        }
    }

    /// Writes a durable snapshot if one is due, serializing **only the
    /// shards whose sub-root moved** since the previous snapshot; clean
    /// shards reuse their cached encodings byte-for-byte (the sub-root
    /// pins the shard's entire contents, so equal root ⇒ equal
    /// encoding). Returns the snapshot height when one was written.
    /// Chunks are additionally content-addressed on disk, so even a
    /// re-encoded-but-identical chunk is not rewritten — the delta here
    /// removes the CPU cost of producing the bytes at all.
    fn maybe_snapshot(&mut self) -> Option<u64> {
        if !self.store.snapshot_due() {
            return None;
        }
        let roots = self.kv.shard_sub_roots();
        let mut per_shard: Vec<Vec<Vec<u8>>> = Vec::with_capacity(EXEC_SHARDS);
        let mut encoded = 0u64;
        for (s, root) in roots.iter().enumerate() {
            let clean = self
                .snap_cache
                .as_ref()
                .is_some_and(|c| c.sub_roots[s] == *root);
            if clean {
                per_shard.push(
                    self.snap_cache
                        .as_ref()
                        .expect("clean implies cache")
                        .chunks[s]
                        .clone(),
                );
            } else {
                encoded += 1;
                per_shard.push(
                    self.kv
                        .shard_to_chunks(s, self.chunk_budget)
                        .iter()
                        .map(|c| c.encode())
                        .collect(),
                );
            }
        }
        let flat: Vec<Vec<u8>> = per_shard.iter().flatten().cloned().collect();
        let Store::Durable(d) = &mut self.store else {
            return None; // snapshot_due already said durable
        };
        let height = d.force_snapshot(&self.kv.transfer_meta(), &flat).ok()?;
        self.snap_stats
            .record_snapshot(encoded, EXEC_SHARDS as u64 - encoded);
        self.snap_cache = Some(SnapshotCache {
            sub_roots: roots,
            chunks: per_shard,
        });
        Some(height)
    }

    // ── state transfer: serving side ────────────────────────────────

    /// Answers a catch-up request in one of two modes: **block replay**
    /// when the requested range is still in the payload cache, or the
    /// **manifest of a chunked snapshot transfer** when the requester
    /// wants history we pruned (or never cached — e.g. we restarted).
    fn serve_catchup(&mut self, to: ReplicaId, from_height: u64) {
        let height = self.store.ledger().height();
        if from_height < self.payload_base {
            if let Some(manifest) = self.build_manifest() {
                let env = Envelope::seal(&self.keystore, encode_catchup_manifest(&manifest));
                self.fabric.send(to, env);
                return;
            }
            // No snapshot to offer (nothing executed yet): fall through
            // to an empty block response so the requester rotates on.
        }
        // Note what does NOT happen here: a requester that has
        // installed (or replayed past) a frozen snapshot does not
        // eagerly release its slot. Two recovering peers are routinely
        // served from the *same* frozen height, and the first finisher
        // must not yank the snapshot out from under the second one
        // mid-fetch — that stall-then-re-manifest is exactly the
        // head-of-line blocking the per-height slots remove. The
        // per-slot idle age-out (`on_tick`) bounds how long a slot can
        // pin its full state copy once nobody fetches from it.
        let mut blocks = Vec::new();
        if from_height >= self.payload_base {
            let mut h = from_height;
            let mut bytes = 0usize;
            while h < height && blocks.len() < CATCHUP_MAX_BLOCKS && bytes < CATCHUP_MAX_BYTES {
                let Some(block) = self.store.ledger().block(h) else {
                    break;
                };
                // The cache is index-aligned with the chain by
                // construction; fail soft (shorter response) over
                // panicking the pipeline if that ever regresses.
                let Some(payload) = self.payloads.get((h - self.payload_base) as usize) else {
                    break;
                };
                bytes += payload.len() + 160; // block overhead estimate
                blocks.push(CatchUpBlock {
                    block: block.clone(),
                    payload: payload.clone(),
                });
                h += 1;
            }
        }
        let env = Envelope::seal(&self.keystore, encode_catchup_resp(height, &blocks));
        self.fabric.send(to, env);
    }

    /// Builds (or reuses) a frozen outgoing snapshot slot at the
    /// current execution height and returns its manifest. `None` when
    /// nothing has executed yet (a height-0 "snapshot" carries no
    /// certificate and transfers nothing a fresh boot lacks).
    ///
    /// Slots are keyed by height: a second recovering peer arriving
    /// while the chain has advanced gets its *own* frozen snapshot
    /// instead of evicting the one the first peer is mid-fetch on —
    /// concurrent transfers proceed independently. When all
    /// [`OUTGOING_SNAPSHOT_SLOTS`] are taken, the idlest slot (largest
    /// `idle_ticks`) is evicted; its requester re-manifests on its next
    /// tick and resumes from its journal.
    fn build_manifest(&mut self) -> Option<TransferManifest> {
        let height = self.kv_height;
        let peer_height = self.store.ledger().height();
        if !self.outgoing.iter().any(|o| o.height == height) {
            let head = self.store.block_at(height.checked_sub(1)?)?.clone();
            let prover = self.kv.state_prover();
            // The head block sealed the root of exactly this state: the
            // KV store has not executed anything since (kv_height pins
            // it). A mismatch here is an execute-then-seal bug.
            debug_assert_eq!(prover.root(), head.state_root);
            let meta_proof = prover.prove_meta()?;
            let mut chunks = Vec::new();
            for chunk in self.kv.to_chunks(self.chunk_budget) {
                // One top-tree proof per chunk: a chunk never crosses a
                // shard boundary, so every bucket in it shares the same
                // sub-root.
                let top_proof = prover.prove_shard(shard_of_bucket(chunk.first_bucket as usize))?;
                let mut proofs = Vec::new();
                if chunk.parts == 1 {
                    proofs.reserve(chunk.buckets.len());
                    for off in 0..chunk.buckets.len() {
                        let (shard_proof, _) =
                            prover.prove_bucket(chunk.first_bucket as usize + off)?;
                        proofs.push(shard_proof);
                    }
                }
                // Fragments of an oversized bucket carry no per-bucket
                // proofs: the leaf digest covers the *assembled* bucket,
                // so fragments are pinned by content digest here and the
                // assembled state is audited against the certified root
                // at install.
                let encoded = chunk.encode();
                chunks.push((
                    ChunkInfo {
                        first_bucket: chunk.first_bucket,
                        buckets: chunk.buckets.len() as u32,
                        part: chunk.part,
                        parts: chunk.parts,
                        digest: spotless_crypto::digest_bytes(&encoded),
                    },
                    encoded,
                    proofs,
                    top_proof,
                ));
            }
            if self.outgoing.len() >= OUTGOING_SNAPSHOT_SLOTS {
                // Evict the slot idle longest: it belongs to the
                // transfer most likely already abandoned, and its
                // requester recovers by re-manifesting (journal keeps
                // its verified chunks).
                if let Some(idlest) = self
                    .outgoing
                    .iter()
                    .enumerate()
                    .max_by_key(|(_, o)| o.idle_ticks)
                    .map(|(i, _)| i)
                {
                    self.outgoing.swap_remove(idlest);
                }
            }
            self.outgoing.push(OutgoingSnapshot {
                height,
                head,
                recent_ids: self.store.recent_ids(),
                app_meta: self.kv.transfer_meta(),
                meta_proof,
                chunks,
                idle_ticks: 0,
            });
        }
        let o = self.outgoing.iter_mut().find(|o| o.height == height)?;
        // Serving (or re-serving) the manifest counts as activity on
        // the frozen snapshot — the age-out clock restarts.
        o.idle_ticks = 0;
        Some(TransferManifest {
            height: o.height,
            peer_height,
            head: o.head.clone(),
            recent_ids: o.recent_ids.clone(),
            app_meta: o.app_meta.clone(),
            meta_proof: o.meta_proof.clone(),
            chunks: o.chunks.iter().map(|(info, _, _, _)| *info).collect(),
        })
    }

    /// Serves one chunk of a frozen outgoing snapshot slot. Requests
    /// for a height we are not serving are dropped — the requester's
    /// tick re-requests the manifest and re-synchronizes on whatever
    /// height we can serve next.
    fn serve_chunk(&mut self, to: ReplicaId, height: u64, index: u32) {
        // Not (or no longer) serving that height → drop. If we could
        // serve a fresh snapshot, rebuilding eagerly here would evict a
        // transfer another peer may be mid-fetch on; let the requester
        // re-manifest instead.
        let Some(o) = self.outgoing.iter_mut().find(|o| o.height == height) else {
            return;
        };
        // A fetch against a served height is the liveness signal that
        // slot's age-out watches for.
        o.idle_ticks = 0;
        let Some((_, encoded, proofs, top_proof)) = o.chunks.get(index as usize) else {
            return;
        };
        let transfer = ChunkTransfer {
            height,
            index,
            chunk: encoded.clone(),
            proofs: proofs.clone(),
            top_proof: top_proof.clone(),
        };
        let env = Envelope::seal(&self.keystore, encode_chunk(&transfer));
        self.fabric.send(to, env);
    }

    // ── catch-up: requesting side ───────────────────────────────────

    fn send_catchup_req(&mut self) {
        let n = self.cluster.n;
        if n <= 1 {
            self.finish_catchup();
            return;
        }
        // Rotate over peers, skipping ourselves.
        let offset = 1 + self.catchup_cursor % (n - 1);
        let peer = ReplicaId((self.me.0 + offset) % n);
        let env = Envelope::seal(&self.keystore, encode_catchup_req(self.kv_height));
        self.fabric.send(peer, env);
    }

    /// Applies a block-replay response. Block payloads arrive as
    /// borrowed views into the received frame; the only copies made per
    /// block are the payload-cache entry and the `CommitInfo` the
    /// commit log records — both storage boundaries.
    fn apply_catchup(&mut self, from: ReplicaId, peer_height: u64, blocks: &[CatchUpBlockRef<'_>]) {
        if !matches!(self.mode, Mode::CatchingUp { .. }) || self.poisoned {
            return; // stale response
        }
        let mut appended = false;
        let mut applied: Vec<(CommitInfo, Digest)> = Vec::new();
        for cb in blocks {
            let h = cb.block.height;
            if h < self.kv_height {
                continue; // already executed
            }
            // Payload bytes must hash to the batch digest the block
            // commits to — unconditionally, or a Byzantine peer could
            // strip payloads and silently diverge our execution state.
            // (Legitimately empty batches hash the empty byte string.)
            if spotless_crypto::digest_bytes(cb.payload) != cb.block.batch_digest {
                break; // forged or corrupt: keep what validated so far
            }
            let Ok(txns) = decode_payload(cb.payload) else {
                break; // undecodable payload: same treatment
            };
            // The block's commit certificate must verify before it may
            // touch our chain — a peer cannot launder an uncertified
            // block through state transfer. (For blocks we already hold
            // the equality check below re-asserts the same thing.)
            if verify_proof(&cb.block.proof, &self.rules, &self.keystore).is_err() {
                break;
            }
            let chain_height = self.store.ledger().height();
            let is_new = if h < chain_height {
                // We hold this block already (logged before the crash);
                // the peer is only supplying the payload to re-execute.
                // Hashes bind the canonical content — state root
                // included — so equality covers everything; the
                // certificates may legitimately differ (each replica
                // persists the quorum evidence *it* collected).
                match self.store.ledger().block(h) {
                    Some(mine) if mine.hash == cb.block.hash => false,
                    _ => break, // divergent peer: drop the rest
                }
            } else if h == chain_height {
                // New to us: all structural checks BEFORE any state
                // mutation — once we execute, a reject can no longer be
                // clean.
                if cb.block.parent != self.store.ledger().head_hash() || !cb.block.verify_hash() {
                    break;
                }
                true
            } else {
                break; // gap: the response is not contiguous with us
            };
            if h != self.kv_height {
                // The response skips ahead of our execution height
                // (genuine blocks we hold but have not re-executed yet,
                // or a gapped reply): executing out of order would seal
                // the wrong state under later roots. Hard check, not an
                // assertion — this is remote input.
                break;
            }
            let result = match txns {
                Some(txns) => self.kv.execute_batch(&txns),
                None => self.kv.state_digest(),
            };
            // The chain anchors execution state: re-executing the
            // committed payload must reproduce the root the block
            // sealed. A mismatch means nondeterministic local execution
            // — forging a chain extension now requires forging Ed25519
            // signatures over the vote statement, which the
            // `verify_proof` gate above rejects — so this is a
            // last-line consistency check, not the primary defense.
            // Either way the KV state is now off
            // the chain and nothing further may be executed or
            // acknowledged on top of it: poison (the loud crash-style
            // stall the cluster already tolerates). A restart heals the
            // pollution — recovery rebuilds the KV state from the
            // snapshot and log, and the catch-up peer rotation means
            // the same peer is not necessarily consulted again. No
            // debug assertion here: this path is reachable from remote
            // input, and aborting a test process is not an acceptable
            // failure mode for a byzantine frame.
            if self.kv.state_root() != cb.block.state_root {
                self.poisoned = true;
                return; // acknowledge nothing
            }
            if is_new {
                if !self.store.append_foreign(cb.block.clone(), cb.payload) {
                    self.poisoned = true;
                    return;
                }
                // Storage boundary: the payload cache outlives the
                // received frame, so this is where the bytes are owned.
                self.payloads.push(cb.payload.to_vec());
                appended = true;
            }
            self.kv_height = h + 1;
            applied.push((commit_info_of(cb), result));
        }
        // Durability before any acknowledgement — a torn response (or a
        // failed fsync) must not lose blocks a client already counted
        // toward its quorum.
        if appended {
            if !self.store.sync() {
                return; // poisoned store: acknowledge nothing, stall
            }
            self.snapshot_and_trim();
        }
        let progressed = !applied.is_empty();
        for (info, result) in applied {
            let batch = info.batch.id;
            self.commits.push(CommittedEntry {
                replica: self.me,
                info,
                state_digest: result,
            });
            let _ = self.informs.send(Inform {
                from: self.me,
                batch,
                result,
            });
        }

        self.note_peer_head(from, peer_height, progressed);
    }

    // ── chunked snapshot transfer: receiving side ───────────────────

    /// Validates a transfer manifest and begins (or resumes) fetching
    /// its chunks. Everything checkable before chunks flow is checked
    /// here: the head block must sit just below the claimed height, its
    /// hash must recompute, its commit certificate must pass quorum
    /// verification, the application meta must prove against the head's
    /// `state_root` at the meta leaf, and the chunk plan must partition
    /// the bucket space. Anything less and the manifest is ignored (the
    /// periodic tick rotates to another peer).
    ///
    /// A usable snapshot strictly dominates local state: it must cover
    /// more than we have executed and at least as much as we have
    /// logged — our chain is then a verified prefix of what the
    /// certified head summarizes, so replacing it wholesale loses
    /// nothing. (Consensus participation is held off until catch-up
    /// completes, so no live commit can be buffered below the installed
    /// height.)
    fn apply_manifest(&mut self, from: ReplicaId, manifest: &TransferManifestRef<'_>) {
        if !matches!(self.mode, Mode::CatchingUp { .. }) || self.poisoned {
            return; // stale
        }
        let chain_height = self.store.ledger().height();
        let usable = manifest.height > self.kv_height && manifest.height >= chain_height;
        if !usable {
            self.note_peer_head(from, manifest.peer_height, false);
            return;
        }
        let head_ok = manifest.head.height + 1 == manifest.height
            && manifest.head.verify_hash()
            && verify_proof(&manifest.head.proof, &self.rules, &self.keystore).is_ok();
        let meta_ok = proof_index(&manifest.meta_proof) == META_LEAF
            && verify_inclusion(
                manifest.app_meta,
                &manifest.meta_proof,
                &manifest.head.state_root,
            );
        let plan_ok = chunk_plan_covers(&manifest.chunks);
        if !head_ok || !meta_ok || !plan_ok {
            return; // Byzantine or corrupt manifest: tick rotates on
        }
        let install = InstallManifest {
            height: manifest.height,
            head_block: manifest.head.clone(),
            recent_ids: manifest.recent_ids.clone(),
            // Storage boundary: the install journal persists the app
            // meta past the received frame, so it is owned here — and
            // only after every check above passed.
            app_meta: manifest.app_meta.to_vec(),
            chunk_digests: manifest.chunks.iter().map(|c| c.digest).collect(),
        };
        // While a transfer is live, a *different* manifest is ignored —
        // accepting it would reset the journal, and an unsolicited
        // stream of fresh manifests from one faulty peer could starve
        // recovery by wiping verified chunks every tick. A manifest for
        // the *same* transfer is welcome from anyone (it just switches
        // the serving peer — useful when the original server died);
        // retargeting to a genuinely newer snapshot happens after the
        // current transfer stalls out and is abandoned (see `on_tick`),
        // at which point `incoming` is `None` and this guard passes.
        // The journal's manifest is the authoritative "current
        // transfer" (it is what a crash resumes from).
        if self.incoming.is_some()
            && self
                .journal
                .manifest()
                .is_some_and(|current| !current.same_transfer(&install))
        {
            return;
        }
        // begin() is a no-op when the journal already tracks the same
        // transfer (the resume path — chunks verified before a crash or
        // peer rotation are kept); a different target resets it.
        if self.journal.begin(install).is_err() {
            return; // journal I/O failure: try again on the next tick
        }
        self.incoming = Some(IncomingTransfer {
            peer: from,
            manifest: manifest.to_owned(),
            inflight: std::collections::HashSet::new(),
            stalled_ticks: 0,
        });
        if self.journal.is_complete() {
            self.try_install();
        } else {
            self.request_missing_chunks();
        }
    }

    /// Verifies one arriving chunk against the chain's state root and
    /// journals it; installs when the set completes. The chunk bytes
    /// stay borrowed through decode and every Merkle check — they are
    /// copied exactly once, into the journal, and only after proving.
    fn apply_chunk(&mut self, from: ReplicaId, chunk: &ChunkTransferRef<'_>) {
        if self.poisoned {
            return;
        }
        let Some(t) = &mut self.incoming else {
            return; // no transfer in progress
        };
        if chunk.height != t.manifest.height || from != t.peer {
            return; // stale or misdirected
        }
        let Some(info) = t.manifest.chunks.get(chunk.index as usize).copied() else {
            return;
        };
        t.inflight.remove(&chunk.index);
        if self.journal.has_chunk(chunk.index) {
            self.request_missing_chunks();
            return; // duplicate
        }
        // Verification order: cheap structure first. A whole chunk then
        // proves every bucket through its shard sub-tree and the shared
        // top proof against the head block's state_root — nothing is
        // journaled, let alone installed, unless every bucket proves
        // membership at its exact leaf index. Fragments of an oversized
        // bucket cannot carry per-arrival proofs (the Merkle leaf
        // covers the *assembled* bucket), so they are pinned to the
        // manifest's content digest here and the assembled state is
        // audited against the certified root in `try_install`.
        let ok = (|| {
            let sc = StateChunk::decode(chunk.chunk)?;
            if sc.first_bucket != info.first_bucket
                || sc.buckets.len() != info.buckets as usize
                || sc.part != info.part
                || sc.parts != info.parts
            {
                return None;
            }
            if sc.parts > 1 {
                if !chunk.proofs.is_empty()
                    || spotless_crypto::digest_bytes(chunk.chunk) != info.digest
                {
                    return None;
                }
                return Some(());
            }
            if chunk.proofs.len() != sc.buckets.len() {
                return None;
            }
            let root = &t.manifest.head.state_root;
            for (off, (bucket, proof)) in sc.buckets.iter().zip(&chunk.proofs).enumerate() {
                let b = sc.first_bucket as usize + off;
                if !verify_bucket(b, bucket, proof, &chunk.top_proof, root) {
                    return None;
                }
            }
            Some(())
        })();
        if ok.is_none() {
            // Corrupt or Byzantine chunk: never journaled, never
            // installed. The tick re-requests; persistent garbage from
            // this peer stalls the transfer and rotates us away.
            return;
        }
        t.stalled_ticks = 0;
        // Storage boundary: the journal blob outlives the frame.
        if self
            .journal
            .put_chunk(chunk.index, chunk.chunk.to_vec())
            .is_err()
        {
            return; // journal I/O failure: the tick will re-request
        }
        if self.journal.is_complete() {
            self.try_install();
        } else {
            self.request_missing_chunks();
        }
    }

    /// Keeps up to [`MAX_INFLIGHT_CHUNKS`] fetches outstanding.
    fn request_missing_chunks(&mut self) {
        let Some(t) = &mut self.incoming else { return };
        let height = t.manifest.height;
        let peer = t.peer;
        let mut to_send = Vec::new();
        for index in self.journal.missing() {
            if t.inflight.len() >= MAX_INFLIGHT_CHUNKS {
                break;
            }
            if t.inflight.insert(index) {
                to_send.push(index);
            }
        }
        for index in to_send {
            let env = Envelope::seal(&self.keystore, encode_chunk_req(height, index));
            self.fabric.send(peer, env);
        }
    }

    /// Assembles the completed transfer, audits it against the chain's
    /// root one final time, and installs it wholesale.
    fn try_install(&mut self) {
        let Some(t) = self.incoming.take() else {
            return;
        };
        let Some(encoded_chunks) = self.journal.assembled_chunks() else {
            self.incoming = Some(t);
            return;
        };
        let decoded: Option<Vec<StateChunk>> = encoded_chunks
            .iter()
            .map(|c| StateChunk::decode(c))
            .collect();
        let assembled = decoded
            .and_then(|chunks| KvStore::from_transfer(&t.manifest.app_meta, &chunks))
            .filter(|kv| {
                // The final gate: the assembled store's root — computed
                // from nothing but the received bytes — must equal the
                // root the chain committed. Per-chunk proofs make a
                // failure here practically impossible, but the audit
                // keeps even a buggy journal from poisoning the store.
                kv.rebuild_state_root() == t.manifest.head.state_root
            });
        let Some(mut kv) = assembled else {
            // Assembly failed despite per-chunk verification: discard
            // the journal (its contents are not trustworthy as a set)
            // and let the tick restart the transfer from scratch.
            let _ = self.journal.wipe();
            return;
        };
        kv.state_root(); // warm the incremental caches before going live
        let height = t.manifest.height;
        if !self.store.install_snapshot(
            height,
            t.manifest.head.clone(),
            &t.manifest.recent_ids,
            &t.manifest.app_meta,
            &encoded_chunks,
        ) {
            return; // storage failure: stall (poisoned store contract)
        }
        self.kv = kv;
        self.kv_height = height;
        self.payloads.clear();
        self.payload_base = height;
        let _ = self.journal.wipe();
        self.note_peer_head(t.peer, t.manifest.peer_height, true);
    }

    /// The runtime's periodic tick. Serving side (any mode): age out
    /// frozen outgoing snapshot slots no requester has touched for
    /// [`OUTGOING_SNAPSHOT_IDLE_TICKS`] ticks — a receiver that
    /// vanished mid-transfer must not pin a full state copy until the
    /// next serve. Each slot ages independently: one active transfer
    /// must not keep an abandoned one alive. Requesting side (while
    /// behind): re-request missing chunks of a live transfer (rotating
    /// the serving peer when it stalls), or re-issue the catch-up
    /// request to the next peer.
    fn on_tick(&mut self) {
        for o in &mut self.outgoing {
            o.idle_ticks += 1;
        }
        // A requester that went quiet for the whole window dropped its
        // slot. If it comes back it re-manifests (its own tick
        // re-requests on silence), and the journal on its side keeps
        // already-verified chunks, so the restarted transfer resumes
        // rather than restarts.
        self.outgoing
            .retain(|o| o.idle_ticks <= OUTGOING_SNAPSHOT_IDLE_TICKS);
        if !matches!(self.mode, Mode::CatchingUp { .. }) {
            return;
        }
        if let Some(t) = &mut self.incoming {
            t.stalled_ticks += 1;
            if t.stalled_ticks <= TRANSFER_STALL_TICKS {
                // Re-request everything missing (lost frames leave
                // stale inflight entries behind; clearing re-arms them).
                t.inflight.clear();
                self.request_missing_chunks();
                return;
            }
            // The serving peer went quiet. Abandon the session — the
            // journal keeps every verified chunk, so if another peer
            // serves the same snapshot the transfer resumes where it
            // stopped.
            self.incoming = None;
        }
        self.catchup_cursor += 1; // previous peer did not get us there
        self.send_catchup_req();
    }

    /// Confirmation bookkeeping shared by both transfer modes.
    ///
    /// "At this peer's head" must also mean our *own* chain is fully
    /// executed: after a restart the log can be ahead of the KV
    /// snapshot, and declaring ourselves synced before re-executing
    /// those logged blocks would hide the gap forever (live-commit
    /// dedup skips blocks already on the chain).
    fn note_peer_head(&mut self, from: ReplicaId, peer_height: u64, progressed: bool) {
        let chain_height = self.store.ledger().height();
        let at_peer_head = self.kv_height >= chain_height && chain_height >= peer_height;
        let weak_quorum = self.cluster.weak_quorum() as usize;
        let quorum_confirmed = {
            let Mode::CatchingUp { confirmed, .. } = &mut self.mode else {
                return;
            };
            if progressed {
                // The cluster head moved under us; earlier
                // confirmations are stale.
                confirmed.clear();
            }
            if !at_peer_head {
                // More to fetch: keep pulling from the same peer.
                None
            } else {
                // This peer has nothing above us. One lagging peer
                // proves nothing (it may be freshly restarted itself);
                // collect a weak quorum of such confirmations before
                // declaring ourselves caught up.
                confirmed.insert(from);
                Some(confirmed.len() >= weak_quorum)
            }
        };
        match quorum_confirmed {
            Some(true) => self.finish_catchup(),
            Some(false) => {
                self.catchup_cursor += 1;
                self.send_catchup_req();
            }
            // Re-request immediately only when this response moved us
            // forward (pulling a long chain in capped slices). A
            // zero-progress response (peer pruned our range, or is
            // behind us) must NOT re-request in a tight loop — the
            // periodic tick retries and rotates peers instead.
            None if progressed => self.send_catchup_req(),
            None => {}
        }
    }

    fn finish_catchup(&mut self) {
        let pending = match std::mem::replace(&mut self.mode, Mode::Synced) {
            Mode::CatchingUp { pending, .. } => pending,
            Mode::Synced => Vec::new(),
        };
        self.synced.store(true, Ordering::Relaxed);
        // Live commits buffered during catch-up: apply what the
        // catch-up did not already cover (dedup by batch id).
        self.flush(pending);
    }
}

/// Validates that a manifest's chunk plan partitions the bucket space:
/// whole chunks cover consecutive bucket ranges, and an oversized
/// bucket appears as one complete in-order fragment series (`parts`
/// consecutive chunks of that single bucket, `part` running `0..parts`).
/// Mirrors the assembly rules `KvStore::from_transfer` enforces at
/// install, so a plan accepted here cannot fail assembly structurally.
fn chunk_plan_covers(chunks: &[ChunkInfo]) -> bool {
    let mut next_bucket = 0u64;
    let mut i = 0usize;
    while i < chunks.len() {
        let c = chunks[i];
        if u64::from(c.first_bucket) != next_bucket || c.buckets == 0 {
            return false;
        }
        if c.parts <= 1 {
            if c.part != 0 || c.parts != 1 {
                return false;
            }
            next_bucket += u64::from(c.buckets);
            i += 1;
            continue;
        }
        // Fragment series of one oversized bucket.
        for part in 0..c.parts {
            let Some(f) = chunks.get(i) else {
                return false;
            };
            if f.first_bucket != c.first_bucket
                || f.buckets != 1
                || f.parts != c.parts
                || f.part != part
            {
                return false;
            }
            i += 1;
        }
        next_bucket += 1;
    }
    next_bucket == STATE_BUCKETS as u64
}

/// Decodes a batch payload: `Ok(None)` for the empty (simulation-style)
/// payload, `Ok(Some(txns))` when it parses, `Err(())` when malformed.
fn decode_payload(payload: &[u8]) -> Result<Option<Vec<Transaction>>, ()> {
    if payload.is_empty() {
        return Ok(None);
    }
    decode_txns(payload).map(Some).ok_or(())
}

/// Drops certificate votes whose signature fails verification and
/// downgrades the phase when the survivors no longer meet the strong
/// quorum. Weak certificates are never upgraded; the final quorum check
/// belongs to `verify_proof`, which runs on the sanitized result (so a
/// certificate stripped below the weak quorum still poisons the
/// pipeline). Lists of unequal length pass through untouched —
/// `verify_proof` rejects those structurally with better attribution.
fn sanitize_cert(
    cert: &spotless_types::CommitCertificate,
    instance: spotless_types::InstanceId,
    keys: &KeyStore,
    rules: &ProofRules,
) -> (Vec<ReplicaId>, Vec<spotless_types::Signature>, CertPhase) {
    if cert.signers.len() != cert.sigs.len() {
        return (cert.signers.clone(), cert.sigs.clone(), cert.phase);
    }
    let message = cert.statement(instance).signing_bytes();
    let votes: Vec<_> = cert
        .signers
        .iter()
        .copied()
        .zip(cert.sigs.iter().copied())
        .collect();
    let mask = keys.filter_valid(&message, &votes);
    if mask.iter().all(|&ok| ok) {
        return (cert.signers.clone(), cert.sigs.clone(), cert.phase);
    }
    let (signers, sigs): (Vec<_>, Vec<_>) = votes
        .into_iter()
        .zip(mask)
        .filter_map(|(vote, ok)| ok.then_some(vote))
        .unzip();
    let phase = if signers.len() >= rules.strong as usize {
        cert.phase
    } else {
        CertPhase::Weak
    };
    (signers, sigs, phase)
}

/// Reconstructs commit metadata for a block applied via catch-up,
/// consuming it (the payload is moved, not copied). The original client
/// batch envelope is gone; what matters downstream is the batch
/// identity, digest, payload, and the (re-verified) commit certificate
/// the block carried.
fn commit_info_of(cb: &CatchUpBlockRef<'_>) -> CommitInfo {
    CommitInfo {
        instance: cb.block.proof.instance,
        view: cb.block.proof.view,
        depth: cb.block.height,
        cert: spotless_types::CommitCertificate {
            view: cb.block.proof.view,
            phase: cb.block.proof.phase,
            voted: cb.block.proof.voted,
            slot: cb.block.proof.slot,
            signers: cb.block.proof.signers.clone(),
            sigs: cb.block.proof.sigs.clone(),
        },
        batch: ClientBatch {
            id: cb.block.batch_id,
            origin: ClientId(u64::MAX),
            digest: cb.block.batch_digest,
            txns: cb.block.txns,
            txn_size: 0,
            created_at: SimTime::ZERO,
            // Storage boundary: the commit log's entry outlives the
            // received frame.
            payload: cb.payload.to_vec(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spotless_types::{CertPhase, ClusterConfig, CommitCertificate, InstanceId, View};

    /// A fabric that drops everything — these tests drive the pipeline
    /// directly and only inspect its internal state.
    #[derive(Clone)]
    struct NullFabric;

    impl Fabric for NullFabric {
        fn send(&self, _to: ReplicaId, _env: Envelope) {}
    }

    /// The key stores the test pipeline's cluster signs with — must
    /// match `synced_pipeline()`'s master seed, or `verify_proof`
    /// rejects every test certificate.
    fn test_stores() -> Vec<KeyStore> {
        KeyStore::cluster(b"pipeline-ageout-test", 4)
    }

    /// A strong commit whose certificate carries genuine signatures
    /// from `signer_ids` over the vote statement binding `digest`.
    fn signed_commit_info(id: u64, digest: Digest, signer_ids: &[u32]) -> CommitInfo {
        let stores = test_stores();
        let signers: Vec<ReplicaId> = signer_ids.iter().map(|&r| ReplicaId(r)).collect();
        let statement = spotless_types::VoteStatement {
            instance: InstanceId(0),
            view: View(id),
            slot: 0,
            digest,
        };
        let sigs = signers
            .iter()
            .map(|r| stores[r.0 as usize].sign_vote(&statement))
            .collect();
        CommitInfo {
            instance: InstanceId(0),
            view: View(id),
            depth: id,
            batch: ClientBatch {
                id: BatchId(id),
                origin: ClientId(0),
                digest,
                txns: 0,
                txn_size: 0,
                created_at: SimTime::ZERO,
                payload: Vec::new(),
            },
            cert: CommitCertificate {
                view: View(id),
                phase: CertPhase::Strong,
                voted: digest,
                slot: 0,
                signers,
                sigs,
            },
        }
    }

    fn commit_info(id: u64) -> CommitInfo {
        signed_commit_info(id, Digest::from_u64(id), &[0, 1, 2])
    }

    /// A synced, in-memory pipeline for replica 0 of a 4-cluster.
    fn synced_pipeline() -> Pipeline<NullFabric> {
        let cluster = ClusterConfig::new(4);
        let keystore = test_stores()[0].clone();
        let (informs, _inform_rx) = mpsc::unbounded_channel();
        Pipeline::new(
            ReplicaId(0),
            cluster,
            keystore,
            NullFabric,
            None,
            KvStore::new(),
            0,
            Vec::new(),
            InstallJournal::in_memory(),
            1 << 16,
            0,
            CommitLog::default(),
            informs,
            Arc::new(AtomicBool::new(true)),
            false,
            SnapshotStats::default(),
        )
    }

    #[test]
    fn frozen_outgoing_snapshot_ages_out_on_idle_ticks() {
        let mut p = synced_pipeline();
        p.flush(vec![commit_info(1), commit_info(2)]);
        assert_eq!(p.kv_height, 2, "both commits executed");
        // A manifest request freezes an outgoing snapshot slot…
        assert!(p.build_manifest().is_some());
        assert!(!p.outgoing.is_empty());
        // …and a requester that vanishes leaves it untouched: the tick
        // keeps it for the whole idle window, then releases it.
        for _ in 0..OUTGOING_SNAPSHOT_IDLE_TICKS {
            p.on_tick();
        }
        assert!(!p.outgoing.is_empty(), "still within the idle window");
        p.on_tick();
        assert!(
            p.outgoing.is_empty(),
            "one tick past the window releases the slot"
        );
    }

    #[test]
    fn chunk_fetches_keep_the_outgoing_snapshot_alive() {
        let mut p = synced_pipeline();
        p.flush(vec![commit_info(1)]);
        let m = p.build_manifest().expect("manifest freezes a snapshot");
        for round in 0..3 {
            for _ in 0..OUTGOING_SNAPSHOT_IDLE_TICKS {
                p.on_tick();
            }
            // One fetch against the served height resets the clock.
            p.serve_chunk(ReplicaId(2), m.height, 0);
            assert!(
                !p.outgoing.is_empty(),
                "round {round}: fetch keeps it alive"
            );
        }
        // A requester that finished (catch-up request at or above the
        // snapshot height) does NOT release the slot — another peer may
        // still be mid-fetch on the same frozen height. Only the idle
        // age-out frees it.
        p.serve_catchup(ReplicaId(2), m.height);
        assert!(
            !p.outgoing.is_empty(),
            "a finished requester leaves the slot for concurrent peers"
        );
        for _ in 0..=OUTGOING_SNAPSHOT_IDLE_TICKS {
            p.on_tick();
        }
        assert!(p.outgoing.is_empty(), "idle age-out is the sole release");
    }

    #[test]
    fn two_recovering_peers_hold_independent_snapshot_slots() {
        let mut p = synced_pipeline();
        p.flush(vec![commit_info(1)]);
        let first = p.build_manifest().expect("first slot freezes");
        assert_eq!(first.height, 1);
        // The chain advances while peer A is mid-fetch; peer B arrives
        // and must get its own frozen slot, not evict A's.
        p.flush(vec![commit_info(2)]);
        let second = p.build_manifest().expect("second slot freezes");
        assert_eq!(second.height, 2);
        assert_eq!(p.outgoing.len(), 2, "both transfers frozen concurrently");
        // Re-requesting a manifest for the older in-flight height
        // serves the already-frozen slot — same content, no rebuild.
        p.flush(vec![commit_info(3)]);
        assert_eq!(p.outgoing.len(), 2);
        assert!(p.outgoing.iter().any(|o| o.height == first.height));
        // Chunk fetches against either height keep that slot alive
        // while the other ages independently.
        for _ in 0..=OUTGOING_SNAPSHOT_IDLE_TICKS {
            p.on_tick();
            p.serve_chunk(ReplicaId(2), second.height, 0);
        }
        assert_eq!(p.outgoing.len(), 1, "idle slot aged out alone");
        assert_eq!(p.outgoing[0].height, second.height);
        // A third height with both slots busy evicts the idlest.
        let third = p.build_manifest().expect("third slot freezes");
        assert_eq!(third.height, 3);
        p.outgoing[0].idle_ticks = 5; // mark one slot idler
        let idle_height = p.outgoing[0].height;
        p.flush(vec![commit_info(4)]);
        assert!(p.build_manifest().is_some());
        assert_eq!(p.outgoing.len(), OUTGOING_SNAPSHOT_SLOTS);
        assert!(
            p.outgoing.iter().all(|o| o.height != idle_height),
            "the idlest slot was the one evicted"
        );
    }

    #[test]
    fn fully_forged_certificate_poisons_instead_of_committing() {
        let mut p = synced_pipeline();
        let mut info = commit_info(1);
        // A valid signer set, but every signature is forged: the
        // sanitizer strips all three votes, the survivor count falls
        // below even the weak quorum, and `verify_proof` rejects.
        for s in &mut info.cert.sigs {
            *s = spotless_types::Signature::ZERO;
        }
        p.flush(vec![info]);
        assert!(p.poisoned, "an unverifiable decided commit must loud-stall");
        assert_eq!(p.store.ledger().height(), 0, "nothing appended");
        assert_eq!(p.kv_height, 0, "rejected before execution");
    }

    #[test]
    fn sanitizer_drops_forged_vote_and_keeps_strong_quorum() {
        let mut p = synced_pipeline();
        // Four votes, one forged: the three genuine survivors still
        // meet the strong quorum (n − f = 3), so the commit lands
        // strong — the forgery costs the forged vote, nothing else.
        let mut info = signed_commit_info(1, Digest::from_u64(1), &[0, 1, 2, 3]);
        info.cert.sigs[3] = spotless_types::Signature([0x55; 64]);
        p.flush(vec![info]);
        assert!(!p.poisoned);
        let block = p.store.ledger().block(0).expect("committed");
        assert_eq!(block.proof.phase, CertPhase::Strong);
        assert_eq!(
            block.proof.signers,
            vec![ReplicaId(0), ReplicaId(1), ReplicaId(2)],
            "only the genuine votes are persisted"
        );
    }

    #[test]
    fn sanitizer_downgrades_below_strong_quorum_to_weak() {
        let mut p = synced_pipeline();
        // Exactly a strong quorum with one vote forged: two survivors
        // make only the weak quorum (f + 1 = 2), so the certificate is
        // persisted weak rather than rejected outright.
        let mut info = commit_info(1);
        info.cert.sigs[2] = spotless_types::Signature([0x55; 64]);
        p.flush(vec![info]);
        assert!(!p.poisoned);
        let block = p.store.ledger().block(0).expect("committed");
        assert_eq!(block.proof.phase, CertPhase::Weak);
        assert_eq!(block.proof.signers, vec![ReplicaId(0), ReplicaId(1)]);
    }

    #[test]
    fn forged_catchup_extension_is_rejected_then_honest_replay_lands() {
        // A peer commits two blocks under fully valid certificates.
        // The batch digest must hash the (empty) payload here, unlike
        // the live-path fixtures: catch-up re-checks payload bytes
        // against the digest the block binds.
        let empty_digest = spotless_crypto::digest_bytes(b"");
        let mut peer = synced_pipeline();
        peer.flush(vec![
            signed_commit_info(1, empty_digest, &[0, 1, 2]),
            signed_commit_info(2, empty_digest, &[0, 1, 2]),
        ]);
        assert_eq!(peer.store.ledger().height(), 2);
        let cb = |h: u64| CatchUpBlockRef {
            block: peer.store.ledger().block(h).expect("peer holds it").clone(),
            payload: b"",
        };
        let mut victim = synced_pipeline();
        victim.mode = Mode::CatchingUp {
            pending: Vec::new(),
            confirmed: Default::default(),
        };
        // The serving peer forges a certificate signature on the
        // extension block. The chain hash deliberately does not bind
        // the evidence, so only signature re-verification can object.
        let mut forged = cb(1);
        forged.block.proof.sigs[0] = spotless_types::Signature([0x55; 64]);
        assert!(
            forged.block.verify_hash(),
            "hash check alone cannot catch evidence tampering"
        );
        victim.apply_catchup(ReplicaId(1), 2, &[cb(0), forged]);
        assert_eq!(
            victim.store.ledger().height(),
            1,
            "the valid prefix lands; the forged extension does not"
        );
        assert!(!victim.poisoned, "a bad peer frame is not a local fault");
        // An honest peer then serves the same block with its genuine
        // certificate, and replay completes.
        victim.apply_catchup(ReplicaId(2), 2, &[cb(1)]);
        assert_eq!(victim.store.ledger().height(), 2);
        assert_eq!(victim.kv_height, 2);
    }
}
