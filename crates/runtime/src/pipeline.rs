//! The commit pipeline: ordering → durability → execution → replies,
//! off the consensus thread.
//!
//! Consensus (the protocol state machine in [`crate::ReplicaRuntime`]'s
//! event loop) never touches a file descriptor. Every [`CommitInfo`] it
//! announces is pushed into a **bounded** queue feeding this worker;
//! the bound is the ack-queue depth — if storage or execution fall more
//! than `commit_queue` slots behind, consensus feels backpressure
//! instead of growing an unbounded buffer. The worker drains the queue
//! in groups: all appends of a group hit the segmented log with the
//! sync policy forced to manual, then **one** fsync covers the whole
//! group (group commit), and only then are results executed upward as
//! client informs — nothing is acknowledged before it is durable.
//!
//! The worker also owns the runtime-level **catch-up** exchange. A
//! replica that restarts from its durable log knows its chain height
//! and its (snapshot-recovered) execution height, but the cluster has
//! moved on. It asks a peer for executed blocks from its execution
//! height; responses are verified three ways — payload bytes must hash
//! to the block's batch digest, blocks already on the local chain must
//! match byte-for-byte, and new blocks must extend the local head
//! through the ledger's hash-chain check — then applied. Its own live
//! commits are buffered while behind (they sit *after* the gap in the
//! deterministic execution order) and drained once a weak quorum of
//! peers confirms we stand at their heads. That buffer is bounded by
//! catch-up duration × commit rate, **not** by the ack queue: capping
//! it would have to drop commits this replica (but possibly not yet
//! its peers) decided, leaving a permanent hole that forks the chain
//! on the next append. Bounding it properly means pausing consensus
//! participation during recovery — an open item (ROADMAP), like
//! serving catch-up from pruned history (a peer answers only from its
//! in-memory payload cache).

use crate::envelope::{encode_catchup_req, encode_catchup_resp, CatchUpBlock, Envelope};
use crate::fabric::Fabric;
use crate::observe::{CommitLog, CommittedEntry, Inform};
use spotless_crypto::KeyStore;
use spotless_ledger::{Block, CommitProof, Ledger};
use spotless_storage::DurableLedger;
use spotless_types::{
    BatchId, ClientBatch, ClientId, ClusterConfig, CommitInfo, Digest, ReplicaId, SimTime,
};
use spotless_workload::{decode_txns, KvStore, Transaction};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use tokio::sync::mpsc;

/// Upper bound on blocks per catch-up response; the requester iterates.
const CATCHUP_MAX_BLOCKS: usize = 256;

/// Upper bound on cumulative *payload* bytes per catch-up response.
/// The TCP fabric rejects frames over 8 MiB, and the JSON byte-array
/// encoding inflates payloads ~4x — so a block-count bound alone would
/// let realistic batches (hundreds of KB each) build unsendable
/// responses and wedge catch-up forever. 1 MiB of raw payload keeps the
/// serialized frame comfortably inside the limit.
const CATCHUP_MAX_BYTES: usize = 1 << 20;

/// Upper bound on payloads retained in memory for serving catch-up.
/// Durable replicas trim the cache on every snapshot; this cap covers
/// memory-only deployments (and `snapshot_every = 0`), whose cache
/// would otherwise grow with every batch ever committed.
const PAYLOAD_CACHE_MAX: usize = 4096;

/// Commands flowing from the event loop into the pipeline.
pub(crate) enum PipelineCmd {
    /// A consensus decision to persist, execute, and acknowledge.
    Commit(CommitInfo),
    /// A peer asked for our executed blocks from `from_height`.
    Serve { to: ReplicaId, from_height: u64 },
    /// A peer answered our catch-up request.
    Apply {
        from: ReplicaId,
        peer_height: u64,
        blocks: Vec<CatchUpBlock>,
    },
    /// Periodic nudge while behind: re-issue the catch-up request (to
    /// the next peer, in case the previous one could not serve us).
    CatchUpTick,
}

/// The chain store: durable when the deployment has a storage dir,
/// purely in-memory otherwise. Both paths share the ledger's hash-chain
/// verification.
enum Store {
    Durable(Box<DurableLedger>),
    Mem(Ledger),
}

impl Store {
    fn ledger(&self) -> &Ledger {
        match self {
            Store::Durable(d) => d.ledger(),
            Store::Mem(l) => l,
        }
    }

    fn append_batch(&mut self, id: BatchId, digest: Digest, txns: u32, proof: CommitProof) -> bool {
        match self {
            Store::Durable(d) => d.append_batch(id, digest, txns, proof).is_ok(),
            Store::Mem(l) => {
                l.append(id, digest, txns, proof);
                true
            }
        }
    }

    fn append_foreign(&mut self, block: Block) -> bool {
        match self {
            Store::Durable(d) => d.append_block(block).is_ok(),
            Store::Mem(l) => l.append_existing(block).is_ok(),
        }
    }

    /// Fsyncs the log; `false` means the group is NOT durable and the
    /// caller must not acknowledge it. A failed fsync poisons the store
    /// by contract — subsequent appends fail too, so the replica stops
    /// acknowledging anything until restarted.
    #[must_use]
    fn sync(&mut self) -> bool {
        match self {
            Store::Durable(d) => d.sync().is_ok(),
            Store::Mem(_) => true,
        }
    }

    /// Snapshots if due; returns the snapshot height when one was
    /// written (the caller trims its payload cache to match the disk
    /// pruning the snapshot performed).
    fn maybe_snapshot(&mut self, kv: &KvStore) -> Option<u64> {
        if let Store::Durable(d) = self {
            if d.snapshot_due() {
                return d.force_snapshot(&kv.to_snapshot_bytes()).ok();
            }
        }
        None
    }
}

enum Mode {
    Synced,
    /// Behind the cluster: live commits buffer here until the gap in
    /// the execution order is filled from peers.
    CatchingUp {
        pending: Vec<CommitInfo>,
        /// Peers that confirmed we stand at (or above) their head. One
        /// lagging peer's word is not enough to declare ourselves
        /// caught up — it might be freshly restarted too; a weak quorum
        /// (`f + 1`) of confirmations guarantees at least one honest,
        /// current peer among them.
        confirmed: std::collections::HashSet<ReplicaId>,
    },
}

pub(crate) struct Pipeline<F: Fabric> {
    me: ReplicaId,
    cluster: ClusterConfig,
    keystore: KeyStore,
    fabric: F,
    store: Store,
    kv: KvStore,
    /// Height up to which `kv` reflects executed batches (≤ chain height
    /// right after a restart whose snapshot trails the log).
    kv_height: u64,
    /// Batch payloads for heights `payload_base..` (serves catch-up).
    payloads: Vec<Vec<u8>>,
    payload_base: u64,
    commits: CommitLog,
    informs: mpsc::UnboundedSender<Inform>,
    mode: Mode,
    synced: Arc<AtomicBool>,
    /// Peer rotation cursor for catch-up requests.
    catchup_cursor: u32,
}

impl<F: Fabric> Pipeline<F> {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        me: ReplicaId,
        cluster: ClusterConfig,
        keystore: KeyStore,
        fabric: F,
        durable: Option<DurableLedger>,
        kv: KvStore,
        kv_height: u64,
        commits: CommitLog,
        informs: mpsc::UnboundedSender<Inform>,
        synced: Arc<AtomicBool>,
        allow_catchup: bool,
    ) -> Pipeline<F> {
        let is_durable = durable.is_some();
        let store = match durable {
            Some(d) => Store::Durable(Box::new(d)),
            None => Store::Mem(Ledger::new()),
        };
        let chain_height = store.ledger().height();
        // Every durable replica boots in catch-up: a height-0 store
        // cannot prove freshness — the process may have crashed before
        // its first group fsync while the cluster moved on. At a
        // genuinely fresh cluster boot this self-resolves in a couple
        // of round trips (peers confirm height 0 immediately).
        // Memory-only replicas start synced: nothing survives a crash,
        // so "restart" is not a supported operation for them. A silent
        // (crash-faulty) deployment must emit nothing — not even
        // catch-up requests — so it never enters catch-up.
        let behind = allow_catchup && (is_durable || chain_height > 0 || kv_height > 0);
        let mode = if behind {
            Mode::CatchingUp {
                pending: Vec::new(),
                confirmed: std::collections::HashSet::new(),
            }
        } else {
            Mode::Synced
        };
        synced.store(!behind, Ordering::Relaxed);
        Pipeline {
            me,
            cluster,
            keystore,
            fabric,
            payload_base: chain_height,
            store,
            kv,
            kv_height,
            payloads: Vec::new(),
            commits,
            informs,
            mode,
            synced,
            catchup_cursor: 0,
        }
    }

    pub(crate) async fn run(mut self, mut rx: mpsc::Receiver<PipelineCmd>, group_max: usize) {
        if matches!(self.mode, Mode::CatchingUp { .. }) {
            self.send_catchup_req();
        }
        while let Some(first) = rx.recv().await {
            // Drain opportunistically up to the group bound: everything
            // taken here shares one fsync.
            let mut cmds = vec![first];
            while cmds.len() < group_max {
                match rx.try_recv() {
                    Some(cmd) => cmds.push(cmd),
                    None => break,
                }
            }
            let mut group: Vec<CommitInfo> = Vec::new();
            for cmd in cmds {
                match cmd {
                    PipelineCmd::Commit(info) => group.push(info),
                    other => {
                        self.flush(std::mem::take(&mut group));
                        self.handle(other);
                    }
                }
            }
            self.flush(group);
        }
    }

    fn handle(&mut self, cmd: PipelineCmd) {
        match cmd {
            PipelineCmd::Commit(_) => unreachable!("commits are grouped by the caller"),
            PipelineCmd::Serve { to, from_height } => self.serve_catchup(to, from_height),
            PipelineCmd::Apply {
                from,
                peer_height,
                blocks,
            } => self.apply_catchup(from, peer_height, blocks),
            PipelineCmd::CatchUpTick => {
                if matches!(self.mode, Mode::CatchingUp { .. }) {
                    self.catchup_cursor += 1; // previous peer did not get us there
                    self.send_catchup_req();
                }
            }
        }
    }

    /// Applies a group of live commits: append all, fsync once, then
    /// execute and acknowledge. While catching up, commits are buffered
    /// instead — they sit after the gap in the execution order.
    fn flush(&mut self, group: Vec<CommitInfo>) {
        if group.is_empty() {
            return;
        }
        if let Mode::CatchingUp { pending, .. } = &mut self.mode {
            pending.extend(group);
            return;
        }
        let mut executed: Vec<(CommitInfo, Digest)> = Vec::new();
        for info in group {
            if let Some(result) = self.apply_one(&info) {
                executed.push((info, result));
            }
        }
        // Group commit: one fsync covers every append above. If it
        // fails, nothing in the group may be acknowledged — the client
        // would count an ack for state a crash can still lose.
        if !self.store.sync() {
            return;
        }
        self.snapshot_and_trim();
        // Acknowledge only after durability.
        for (info, result) in executed {
            let batch = info.batch.id;
            self.commits.push(CommittedEntry {
                replica: self.me,
                info,
                state_digest: result,
            });
            let _ = self.informs.send(Inform {
                from: self.me,
                batch,
                result,
            });
        }
    }

    /// Appends and executes one live commit (no fsync — the group owns
    /// that). Returns the post-execution state digest, or `None` when
    /// the commit produces no acknowledgement (no-op, duplicate, or
    /// malformed payload).
    fn apply_one(&mut self, info: &CommitInfo) -> Option<Digest> {
        if info.batch.is_noop() {
            return None;
        }
        if self.store.ledger().find_batch(info.batch.id).is_some() {
            return None; // already applied via catch-up
        }
        // Decode *before* appending: the ledger and the payload cache
        // must only ever hold executable blocks, or the cache's
        // height-indexing drifts and catch-up serves wrong payloads.
        let txns = match decode_payload(&info.batch.payload) {
            Ok(txns) => txns,
            Err(()) => return None, // malformed payload: never commit it
        };
        let proof = CommitProof {
            instance: info.instance,
            view: info.view,
            // Certificate signer sets are not surfaced through
            // `CommitInfo`; recording them is an open item (ROADMAP).
            signers: Vec::new(),
        };
        if !self
            .store
            .append_batch(info.batch.id, info.batch.digest, info.batch.txns, proof)
        {
            return None; // storage poisoned; stop acknowledging
        }
        let result = match txns {
            Some(txns) => self.kv.execute_batch(&txns),
            None => self.kv.state_digest(), // empty (simulation-style) payload
        };
        self.kv_height = self.store.ledger().height();
        self.payloads.push(info.batch.payload.clone());
        Some(result)
    }

    /// Snapshots if due and trims the in-memory payload cache: to the
    /// snapshot height (matching the pruning the snapshot performed on
    /// disk), and in any case to [`PAYLOAD_CACHE_MAX`] entries so
    /// memory-only deployments do not retain every payload ever
    /// committed. Serving catch-up starts at the trimmed base; older
    /// history comes from another peer (or not at all — ROADMAP).
    fn snapshot_and_trim(&mut self) {
        let mut trim_to = self.store.maybe_snapshot(&self.kv).unwrap_or(0);
        let height = self.payload_base + self.payloads.len() as u64;
        trim_to = trim_to.max(height.saturating_sub(PAYLOAD_CACHE_MAX as u64));
        if trim_to > self.payload_base {
            let n = (trim_to - self.payload_base) as usize;
            self.payloads.drain(..n.min(self.payloads.len()));
            self.payload_base = trim_to;
        }
    }

    // ── catch-up: serving side ──────────────────────────────────────

    fn serve_catchup(&mut self, to: ReplicaId, from_height: u64) {
        let height = self.store.ledger().height();
        let mut blocks = Vec::new();
        if from_height >= self.payload_base {
            let mut h = from_height;
            let mut bytes = 0usize;
            while h < height && blocks.len() < CATCHUP_MAX_BLOCKS && bytes < CATCHUP_MAX_BYTES {
                let Some(block) = self.store.ledger().block(h) else {
                    break;
                };
                // The cache is index-aligned with the chain by
                // construction; fail soft (shorter response) over
                // panicking the pipeline if that ever regresses.
                let Some(payload) = self.payloads.get((h - self.payload_base) as usize) else {
                    break;
                };
                bytes += payload.len() + 160; // block overhead estimate
                blocks.push(CatchUpBlock {
                    block: block.clone(),
                    payload: payload.clone(),
                });
                h += 1;
            }
        }
        // else: the requester wants history from before our payload
        // cache; send an empty response so it rotates to another peer.
        let env = Envelope::seal(&self.keystore, encode_catchup_resp(height, &blocks));
        self.fabric.send(to, env);
    }

    // ── catch-up: requesting side ───────────────────────────────────

    fn send_catchup_req(&mut self) {
        let n = self.cluster.n;
        if n <= 1 {
            self.finish_catchup();
            return;
        }
        // Rotate over peers, skipping ourselves.
        let offset = 1 + self.catchup_cursor % (n - 1);
        let peer = ReplicaId((self.me.0 + offset) % n);
        let env = Envelope::seal(&self.keystore, encode_catchup_req(self.kv_height));
        self.fabric.send(peer, env);
    }

    fn apply_catchup(&mut self, from: ReplicaId, peer_height: u64, blocks: Vec<CatchUpBlock>) {
        if !matches!(self.mode, Mode::CatchingUp { .. }) {
            return; // stale response
        }
        let mut appended = false;
        let mut applied: Vec<(CommitInfo, Digest)> = Vec::new();
        for cb in blocks {
            let h = cb.block.height;
            if h < self.kv_height {
                continue; // already executed
            }
            // Payload bytes must hash to the batch digest the block
            // commits to — unconditionally, or a Byzantine peer could
            // strip payloads and silently diverge our execution state.
            // (Legitimately empty batches hash the empty byte string.)
            if spotless_crypto::digest_bytes(&cb.payload) != cb.block.batch_digest {
                break; // forged or corrupt: keep what validated so far
            }
            let Ok(txns) = decode_payload(&cb.payload) else {
                break; // undecodable payload: same treatment
            };
            let chain_height = self.store.ledger().height();
            if h < chain_height {
                // We hold this block already (logged before the crash);
                // the peer is only supplying the payload to re-execute.
                match self.store.ledger().block(h) {
                    Some(mine) if *mine == cb.block => {}
                    _ => break, // divergent peer: drop the rest
                }
            } else if h == chain_height {
                // New to us: must extend our head (hash-chain checked).
                if !self.store.append_foreign(cb.block.clone()) {
                    break;
                }
                self.payloads.push(cb.payload.clone());
                appended = true;
            } else {
                break; // gap: the response is not contiguous with us
            }
            let result = match txns {
                Some(txns) => self.kv.execute_batch(&txns),
                None => self.kv.state_digest(),
            };
            self.kv_height = h + 1;
            // `cb` is consumed here (payload moved, not copied — the
            // cache clone above is the only copy made per block).
            applied.push((commit_info_of(cb), result));
        }
        // Durability before any acknowledgement — a torn response (or a
        // failed fsync) must not lose blocks a client already counted
        // toward its quorum.
        if appended {
            if !self.store.sync() {
                return; // poisoned store: acknowledge nothing, stall
            }
            self.snapshot_and_trim();
        }
        let progressed = !applied.is_empty();
        for (info, result) in applied {
            let batch = info.batch.id;
            self.commits.push(CommittedEntry {
                replica: self.me,
                info,
                state_digest: result,
            });
            let _ = self.informs.send(Inform {
                from: self.me,
                batch,
                result,
            });
        }

        // "At this peer's head" must also mean our *own* chain is fully
        // executed: after a restart the log can be ahead of the KV
        // snapshot, and declaring ourselves synced before re-executing
        // those logged blocks would hide the gap forever (live-commit
        // dedup skips blocks already on the chain).
        let chain_height = self.store.ledger().height();
        let at_peer_head = self.kv_height >= chain_height && chain_height >= peer_height;
        let weak_quorum = self.cluster.weak_quorum() as usize;
        let quorum_confirmed = {
            let Mode::CatchingUp { confirmed, .. } = &mut self.mode else {
                return;
            };
            if progressed {
                // The cluster head moved under us; earlier
                // confirmations are stale.
                confirmed.clear();
            }
            if !at_peer_head {
                // More to fetch: keep pulling from the same peer.
                None
            } else {
                // This peer has nothing above us. One lagging peer
                // proves nothing (it may be freshly restarted itself);
                // collect a weak quorum of such confirmations before
                // declaring ourselves caught up.
                confirmed.insert(from);
                Some(confirmed.len() >= weak_quorum)
            }
        };
        match quorum_confirmed {
            Some(true) => self.finish_catchup(),
            Some(false) => {
                self.catchup_cursor += 1;
                self.send_catchup_req();
            }
            // Re-request immediately only when this response moved us
            // forward (pulling a long chain in capped slices). A
            // zero-progress response (peer pruned our range, or is
            // behind us) must NOT re-request in a tight loop — the
            // periodic tick retries and rotates peers instead.
            None if progressed => self.send_catchup_req(),
            None => {}
        }
    }

    fn finish_catchup(&mut self) {
        let pending = match std::mem::replace(&mut self.mode, Mode::Synced) {
            Mode::CatchingUp { pending, .. } => pending,
            Mode::Synced => Vec::new(),
        };
        self.synced.store(true, Ordering::Relaxed);
        // Live commits buffered during catch-up: apply what the
        // catch-up did not already cover (dedup by batch id).
        self.flush(pending);
    }
}

/// Decodes a batch payload: `Ok(None)` for the empty (simulation-style)
/// payload, `Ok(Some(txns))` when it parses, `Err(())` when malformed.
fn decode_payload(payload: &[u8]) -> Result<Option<Vec<Transaction>>, ()> {
    if payload.is_empty() {
        return Ok(None);
    }
    decode_txns(payload).map(Some).ok_or(())
}

/// Reconstructs commit metadata for a block applied via catch-up,
/// consuming it (the payload is moved, not copied). The original client
/// batch envelope is gone; what matters downstream is the batch
/// identity, digest, and payload.
fn commit_info_of(cb: CatchUpBlock) -> CommitInfo {
    CommitInfo {
        instance: cb.block.proof.instance,
        view: cb.block.proof.view,
        depth: cb.block.height,
        batch: ClientBatch {
            id: cb.block.batch_id,
            origin: ClientId(u64::MAX),
            digest: cb.block.batch_digest,
            txns: cb.block.txns,
            txn_size: 0,
            created_at: SimTime::ZERO,
            payload: cb.payload,
        },
    }
}
