//! The protocol-agnostic replica runtime: the deployment path of the
//! SpotLess reproduction.
//!
//! The paper's evaluation (§5/§6) assumes replicas that **execute**
//! committed batches against a replicated store, **persist** them to an
//! immutable ledger, and **answer clients** from recoverable state.
//! This crate is that replica, factored so every protocol in the
//! workspace gets it for free: [`ReplicaRuntime`] composes any sans-IO
//! [`Node`](spotless_types::Node) — SpotLess, PBFT, RCC, HotStuff,
//! Narwhal-HS — with
//!
//! * the hash-chained ledger (`spotless-ledger`) behind the durable
//!   segmented log + snapshots (`spotless-storage`),
//! * YCSB key-value execution (`spotless-workload`),
//! * signed wire envelopes serialized once and `Arc`-shared across
//!   broadcast destinations ([`envelope`]),
//! * a commit pipeline that executes each decided batch and seals the
//!   post-execution Merkle `state_root` into its block (execute-then-
//!   seal), group-commits storage appends behind a bounded ack queue so
//!   consensus never blocks on fsync, populates every durable block's
//!   `CommitProof` from the protocol's commit certificate, and refuses
//!   to append a block whose signer set fails quorum verification
//!   (`pipeline`), and
//! * a runtime-level two-mode state-transfer exchange: a recovering
//!   replica — held out of consensus until it has rejoined the head —
//!   replays blocks from peers that still hold them (re-executing each
//!   and checking the sealed `state_root`), or runs a chunked snapshot
//!   transfer when every peer has pruned or restarted past its gap:
//!   manifest first, then ranged chunk fetches verified bucket-by-
//!   bucket against the chain's state root, journaled so a mid-transfer
//!   crash resumes instead of restarting.
//!
//! Transports are reduced to [`Fabric`]s: byte movers with no protocol,
//! crypto, or execution logic. `spotless-transport` provides in-process
//! and TCP fabrics plus cluster-assembly helpers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod cluster;
pub(crate) mod egress;
pub mod envelope;
pub mod executor;
pub mod fabric;
pub(crate) mod ingress;
pub mod observe;
pub(crate) mod pipeline;
pub mod runtime;

pub use client::ClusterClient;
pub use cluster::{assemble, assemble_tuned, ClusterHandles};
pub use envelope::{
    BufferPool, CatchUpBlock, CatchUpBlockRef, ChunkInfo, ChunkTransfer, ChunkTransferRef,
    Envelope, Payload, TransferManifest, TransferManifestRef, WireMsg, WireMsgRef, WIRE_VERSION,
};
pub use executor::{execute_group, execute_group_with, ExecutorPool, Granularity, SealedBatch};
pub use fabric::Fabric;
pub use observe::{CommitLog, CommittedEntry, Inform, NetStats, SnapshotStats};
pub use runtime::{
    ControlMsg, RecoveryInfo, ReplicaHandle, ReplicaRuntime, RuntimeConfig, StorageConfig,
    CATCHUP_TICK,
};
