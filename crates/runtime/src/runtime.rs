//! The replica runtime: one event loop per replica driving any sans-IO
//! protocol [`Node`] over any [`Fabric`].
//!
//! The loop is deliberately a pipeline, not a straight line:
//!
//! * **ordering** runs on the event-loop task (the protocol state
//!   machine steps on deliveries, timers, and client requests);
//! * **durability + execution + replies** run on the commit worker
//!   (`crate::pipeline`), fed through a bounded queue — consensus
//!   never waits for an fsync, and execution of slot `k` overlaps with
//!   ordering of slot `k + j`;
//! * **outbound traffic** is serialized and signed once per message;
//!   broadcast fan-out shares the bytes via `Arc` (see
//!   [`crate::envelope`]).
//!
//! Restart story: give the runtime the same storage directory it had
//! before the crash and it recovers the hash-chained ledger from the
//! segmented log, the KV state from the newest snapshot, and then runs
//! the two-mode state-transfer exchange against its peers — block
//! replay while some peer retains the missing range, a chunked
//! snapshot transfer (manifest + per-chunk Merkle verification against
//! the head block's `state_root`, resumable from the install journal)
//! once every peer has pruned or restarted past it — until it rejoins
//! the cluster's head. Crucially,
//! a recovering replica is **held out of consensus** the whole time:
//! the protocol node is not even started (no votes, no proposals, no
//! request intake) until a weak quorum of peers confirms the replica
//! stands at their heads, so the commit pipeline cannot accumulate a
//! live-commit buffer that grows with catch-up duration. See
//! `tests/transport_e2e.rs` (facade crate) for the end-to-end
//! crash–restart and pruned-history recovery proofs.

use crate::egress::Fanout;
use crate::envelope::{
    decode_protocol_body, encode_protocol_into, payload_tag, Envelope, Payload, TAG_PROTOCOL,
};
use crate::fabric::{Fabric, MeteredFabric};
use crate::observe::{CommitLog, Inform, NetStats, SnapshotStats};
use crate::pipeline::{Pipeline, PipelineCmd};
use serde::{Deserialize, Serialize};
use spotless_crypto::KeyStore;
use spotless_storage::log::SyncPolicy;
use spotless_storage::transfer::InstallJournal;
use spotless_storage::{DurableLedger, DurableLedgerOptions, StorageError};
use spotless_types::{
    ClientBatch, ClusterConfig, CommitInfo, Context, Input, InstanceId, Node, NodeId, ReplicaId,
    Signature, SimDuration, SimTime, TimerId, TimerKind, View, VoteStatement,
};
use spotless_workload::KvStore;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use tokio::sync::mpsc;
use tokio::time::Instant;

/// Timer kind reserved for the runtime's catch-up retry tick. Protocols
/// must not arm `Custom(0xCA7C)` themselves (none in this workspace do;
/// `Custom` is otherwise harness territory).
pub const CATCHUP_TICK: TimerKind = TimerKind::Custom(0xCA7C);

/// Durability settings for one replica.
#[derive(Clone, Debug)]
pub struct StorageConfig {
    /// Directory holding the segmented log and snapshots.
    pub dir: PathBuf,
    /// Log/snapshot tuning. The log's sync policy is overridden to
    /// [`SyncPolicy::Manual`]: the commit pipeline owns fsync cadence
    /// (one per commit group), which is the whole point of group commit.
    pub options: DurableLedgerOptions,
}

impl StorageConfig {
    /// Default options rooted at `dir`.
    pub fn new(dir: impl Into<PathBuf>) -> StorageConfig {
        StorageConfig {
            dir: dir.into(),
            options: DurableLedgerOptions::default(),
        }
    }
}

/// Per-replica runtime construction parameters.
pub struct RuntimeConfig {
    /// Cluster shape and protocol timeouts.
    pub cluster: ClusterConfig,
    /// This replica's identity.
    pub me: ReplicaId,
    /// Key material for envelope signing/verification.
    pub keystore: KeyStore,
    /// Durable storage; `None` runs the chain in memory only.
    pub storage: Option<StorageConfig>,
    /// Depth of the bounded consensus → storage/execution queue (the
    /// "ack queue"). When the pipeline falls this far behind, consensus
    /// blocks — bounded lag by construction.
    pub commit_queue: usize,
    /// Maximum commits folded into one fsync group.
    pub group_commit: usize,
    /// Retry period for the catch-up exchange while behind.
    pub catchup_interval: SimDuration,
    /// Raw-byte budget per snapshot-transfer chunk. Defaults to
    /// [`spotless_types::SNAPSHOT_CHUNK_BYTES`] (derived from the
    /// fabric's frame limit); tests shrink it to force multi-chunk
    /// transfers at small state sizes.
    pub chunk_budget: usize,
    /// Crash-faulty deployment: consume inputs, emit nothing (the A1
    /// behaviour at transport level).
    pub silent: bool,
    /// Ingress verification workers: inbound envelope signatures are
    /// batch-verified off the event-loop thread by this many dedicated
    /// tasks (the `ingress` module), preserving per-sender FIFO
    /// order. `0` verifies inline on the event loop (the pre-pool
    /// behaviour — useful as a benchmark baseline and for
    /// single-threaded debugging).
    pub verify_pool: usize,
    /// Committed-batch execution workers: the pipeline schedules each
    /// commit group over the KV store's shard footprints and runs
    /// non-conflicting batches on this many dedicated tasks (the
    /// `executor` module), sealing state roots in commit order. `0`
    /// executes every group inline on the pipeline thread (the serial
    /// baseline — also what benchmarks compare against).
    pub exec_pool: usize,
    /// Egress sealing workers: outbound envelope signatures are
    /// batch-signed off the event-loop thread by this many dedicated
    /// lanes (the `egress` module), with a single ordered emitter
    /// preserving per-destination send order. `0` seals inline on the
    /// event loop (the pre-pool behaviour — the benchmark baseline).
    pub seal_pool: usize,
    /// Wire-traffic counters for this replica (payload bytes/messages
    /// by direction). A fresh set by default; share one across replicas
    /// to aggregate. Also readable later via [`ReplicaHandle::net`].
    pub net: NetStats,
    /// Snapshot-delta counters (shards serialized vs reused per durable
    /// snapshot). Readable later via [`ReplicaHandle::snapshots`].
    pub snap: SnapshotStats,
}

impl RuntimeConfig {
    /// Defaults: in-memory chain, 256-deep ack queue, 64-commit groups.
    pub fn new(cluster: ClusterConfig, me: ReplicaId, keystore: KeyStore) -> RuntimeConfig {
        RuntimeConfig {
            cluster,
            me,
            keystore,
            storage: None,
            commit_queue: 256,
            group_commit: 64,
            catchup_interval: SimDuration::from_millis(150),
            chunk_budget: spotless_types::SNAPSHOT_CHUNK_BYTES,
            silent: false,
            verify_pool: 2,
            exec_pool: 2,
            seal_pool: 2,
            net: NetStats::default(),
            snap: SnapshotStats::default(),
        }
    }
}

/// What recovery found on disk when the runtime started.
#[derive(Clone, Debug)]
pub struct RecoveryInfo {
    /// Height covered by the snapshot the KV state was restored from.
    pub snapshot_height: u64,
    /// Chain height after log replay.
    pub chain_height: u64,
    /// Blocks replayed from the log above the snapshot.
    pub replayed_blocks: u64,
    /// Whether a torn tail was truncated from the newest segment.
    pub truncated_tail: bool,
    /// Verified chunks of an interrupted snapshot transfer found in the
    /// install journal — the transfer resumes from them instead of
    /// re-fetching (0 when no transfer was in progress).
    pub pending_install_chunks: u32,
}

/// Control-plane messages (untyped: usable by clients and harnesses
/// without naming the protocol's message type).
pub enum ControlMsg {
    /// Submit a client batch to this replica.
    Request(ClientBatch),
    /// Stop the replica's tasks.
    Shutdown,
}

/// Handle to a spawned replica: submit requests, observe recovery,
/// shut down. Cloneable; all clones address the same replica.
#[derive(Clone)]
pub struct ReplicaHandle {
    me: ReplicaId,
    control: mpsc::UnboundedSender<ControlMsg>,
    recovery: Option<Arc<RecoveryInfo>>,
    synced: Arc<AtomicBool>,
    stopped: Arc<AtomicBool>,
    net: NetStats,
    snap: SnapshotStats,
}

impl ReplicaHandle {
    /// This replica's identity.
    pub fn id(&self) -> ReplicaId {
        self.me
    }

    /// Submits a client batch to this replica (fire-and-forget; the
    /// inform path carries the result).
    pub fn submit(&self, batch: ClientBatch) {
        let _ = self.control.send(ControlMsg::Request(batch));
    }

    /// Asks the replica to stop. Idempotent.
    pub fn shutdown(&self) {
        let _ = self.control.send(ControlMsg::Shutdown);
    }

    /// What recovery reconstructed at spawn (None without storage).
    pub fn recovery(&self) -> Option<&RecoveryInfo> {
        self.recovery.as_deref()
    }

    /// True once the replica has rejoined the cluster head (always true
    /// for replicas that started fresh).
    pub fn is_synced(&self) -> bool {
        self.synced.load(Ordering::Relaxed)
    }

    /// True once the replica's pipeline has fully stopped and released
    /// its durable store. A harness restarting a replica on the same
    /// storage directory must wait for this — two live stores on one
    /// directory corrupt the log.
    pub fn is_stopped(&self) -> bool {
        self.stopped.load(Ordering::Relaxed)
    }

    /// This replica's wire-traffic counters (encoded payload bytes and
    /// message counts, by direction).
    pub fn net(&self) -> &NetStats {
        &self.net
    }

    /// This replica's snapshot-delta counters (durable snapshots
    /// written; shards serialized vs reused per snapshot).
    pub fn snapshots(&self) -> &SnapshotStats {
        &self.snap
    }
}

/// One verified-vote memo: a `(signer, statement, signature)` triple
/// and whether it verified. Ed25519 verification is ~80 µs; protocols
/// legitimately re-see the same vote (retransmission, Sync summaries
/// that re-carry certificates), and the memo turns every re-check into
/// a hash lookup.
type VoteCacheKey = (ReplicaId, VoteStatement, Signature);

/// Entries the vote memo holds before it is wholesale cleared. A full
/// clear (rather than LRU) keeps the structure trivial; the cache
/// refills within one certificate's worth of traffic.
const VOTE_CACHE_MAX: usize = 8192;

/// Buffered effect collector handed to the protocol on each step.
/// Carries the replica's [`KeyStore`] so the protocol's
/// [`Context::sign_vote`] / [`Context::verify_vote`] hooks produce and
/// check **real Ed25519** signatures (the trait's defaults are
/// simulation placeholders), plus the event loop's verified-vote memo.
struct RuntimeCtx<'a, M> {
    start: Instant,
    me: NodeId,
    keystore: &'a KeyStore,
    vote_cache: &'a mut HashMap<VoteCacheKey, bool>,
    sends: Vec<(NodeId, M)>,
    broadcasts: Vec<M>,
    timers: Vec<(TimerId, SimDuration)>,
    commits: Vec<CommitInfo>,
}

impl<M> Context for RuntimeCtx<'_, M> {
    type Message = M;

    fn now(&self) -> SimTime {
        SimTime(self.start.elapsed().as_nanos() as u64)
    }
    fn id(&self) -> NodeId {
        self.me
    }
    fn send(&mut self, to: NodeId, msg: M) {
        self.sends.push((to, msg));
    }
    fn broadcast(&mut self, msg: M) {
        self.broadcasts.push(msg);
    }
    fn set_timer(&mut self, id: TimerId, after: SimDuration) {
        self.timers.push((id, after));
    }
    fn commit(&mut self, info: CommitInfo) {
        self.commits.push(info);
    }
    fn sign_vote(&mut self, statement: &VoteStatement) -> Signature {
        self.keystore.sign_vote(statement)
    }
    fn verify_vote(
        &mut self,
        signer: ReplicaId,
        statement: &VoteStatement,
        sig: &Signature,
    ) -> bool {
        let key = (signer, *statement, *sig);
        if let Some(&ok) = self.vote_cache.get(&key) {
            return ok;
        }
        let ok = self.keystore.verify_vote(signer, statement, sig).is_ok();
        if self.vote_cache.len() >= VOTE_CACHE_MAX {
            self.vote_cache.clear();
        }
        self.vote_cache.insert(key, ok);
        ok
    }
}

/// Internal event-loop alphabet.
pub(crate) enum Event<M> {
    /// A signed envelope arrived from the fabric.
    Envelope(Envelope),
    /// Local self-delivery (broadcast includes the sender, Remark 3.1) —
    /// skips serialization and signature verification entirely.
    Loopback(M),
    /// An armed timer fired.
    Timer(TimerId),
    /// A client batch arrived.
    Request(ClientBatch),
    /// Stop.
    Shutdown,
}

/// The protocol-agnostic replica runtime. See the module docs; spawn
/// one per replica with [`ReplicaRuntime::spawn`].
pub struct ReplicaRuntime;

impl ReplicaRuntime {
    /// Opens storage (recovering whatever a previous process left),
    /// spawns the event-loop and pipeline tasks, and returns the
    /// replica's handle. `envelopes` is the inbound half the fabric
    /// writes to; `commits`/`informs` are the observation and client
    /// reply paths (typically shared across a cluster).
    ///
    /// Must be called inside a tokio runtime.
    pub fn spawn<N, F>(
        node: N,
        cfg: RuntimeConfig,
        fabric: F,
        envelopes: mpsc::UnboundedReceiver<Envelope>,
        commits: CommitLog,
        informs: mpsc::UnboundedSender<Inform>,
    ) -> Result<ReplicaHandle, StorageError>
    where
        N: Node + Send + 'static,
        N::Message: Serialize + Deserialize + Send + 'static,
        F: Fabric,
    {
        // 1. Recover durable state (before any task runs).
        let mut durable = None;
        let mut kv = KvStore::new();
        let mut kv_height = 0;
        let mut replayed_payloads = Vec::new();
        let mut recovery = None;
        let mut journal = InstallJournal::in_memory();
        if let Some(storage) = &cfg.storage {
            let mut options = storage.options;
            // Group commit owns fsync cadence; see StorageConfig docs.
            options.log.sync = SyncPolicy::Manual;
            let (store, report) = DurableLedger::open(&storage.dir, options)?;
            if !report.app_meta.is_empty() {
                let chunks: Option<Vec<spotless_workload::StateChunk>> = report
                    .app_chunks
                    .iter()
                    .map(|c| spotless_workload::StateChunk::decode(c))
                    .collect();
                kv = chunks
                    .and_then(|chunks| KvStore::from_transfer(&report.app_meta, &chunks))
                    .ok_or_else(|| StorageError::Corrupt {
                        path: storage.dir.clone(),
                        offset: 0,
                        detail: "snapshot app state is not a KV chunk set",
                    })?;
                kv_height = report.snapshot_height;
            }
            // The log persists batch payloads, so the chain tail above
            // the snapshot re-executes locally in the pipeline (no peer
            // required to reach our own head).
            replayed_payloads = report.replayed_payloads;
            // An interrupted snapshot transfer resumes from its journal:
            // chunks verified before the crash are not re-fetched.
            journal = InstallJournal::open(&storage.dir);
            recovery = Some(Arc::new(RecoveryInfo {
                snapshot_height: report.snapshot_height,
                chain_height: store.ledger().height(),
                replayed_blocks: report.replayed_blocks,
                truncated_tail: report.truncated_tail,
                pending_install_chunks: journal.chunks_present(),
            }));
            durable = Some(store);
        }

        let (control_tx, mut control_rx) = mpsc::unbounded_channel::<ControlMsg>();
        let (events_tx, events_rx) = mpsc::unbounded_channel::<Event<N::Message>>();
        let (pipeline_tx, pipeline_rx) = mpsc::channel::<PipelineCmd>(cfg.commit_queue.max(1));
        let synced = Arc::new(AtomicBool::new(true));
        // Every outbound envelope — consensus, catch-up, state transfer
        // — leaves through Fabric::send; metering the fabric once here
        // covers the event loop and the pipeline alike.
        let net = cfg.net.clone();
        let fabric = MeteredFabric {
            inner: fabric,
            stats: net.clone(),
        };

        // 2. The commit pipeline (durability + execution + replies).
        let pipeline = Pipeline::new(
            cfg.me,
            cfg.cluster.clone(),
            cfg.keystore.clone(),
            fabric.clone(),
            durable,
            kv,
            kv_height,
            replayed_payloads,
            journal,
            cfg.chunk_budget,
            cfg.exec_pool,
            commits,
            informs,
            synced.clone(),
            !cfg.silent,
            cfg.snap.clone(),
        );
        let group_max = cfg.group_commit.max(1);
        let stopped = Arc::new(AtomicBool::new(false));
        let stopped_signal = stopped.clone();
        tokio::spawn(async move {
            // `run` owns the durable store; it is dropped (closed) when
            // the future completes, and only then is `stopped` raised —
            // the restart path relies on that ordering.
            pipeline.run(pipeline_rx, group_max).await;
            stopped_signal.store(true, Ordering::Relaxed);
        });

        // 3. Ingress: fabric envelopes and the control plane both feed
        //    the single typed event queue. With a verify pool, inbound
        //    signatures are batch-checked off-thread and only verified
        //    envelopes reach the queue; with `verify_pool == 0` (or a
        //    silent replica, which drops everything anyway) a plain
        //    forwarder keeps the pre-pool inline-verify path.
        let verify_pool = if cfg.silent { 0 } else { cfg.verify_pool };
        if verify_pool > 0 {
            crate::ingress::spawn_verify_pool(
                verify_pool,
                cfg.keystore.clone(),
                envelopes,
                events_tx.clone(),
                net.clone(),
            );
        } else {
            let env_events = events_tx.clone();
            let mut envelopes = envelopes;
            let recv_net = net.clone();
            tokio::spawn(async move {
                while let Some(env) = envelopes.recv().await {
                    recv_net.record_recv(env.payload.len());
                    if env_events.send(Event::Envelope(env)).is_err() {
                        break;
                    }
                }
            });
        }
        let ctl_events = events_tx.clone();
        tokio::spawn(async move {
            while let Some(msg) = control_rx.recv().await {
                let stop = matches!(msg, ControlMsg::Shutdown);
                let event = match msg {
                    ControlMsg::Request(batch) => Event::Request(batch),
                    ControlMsg::Shutdown => Event::Shutdown,
                };
                if ctl_events.send(event).is_err() || stop {
                    break;
                }
            }
        });

        // 4. Egress: with a sealer pool, outbound envelopes are
        //    batch-signed off-thread and a single ordered emitter
        //    preserves send order; with `seal_pool == 0` (or a silent
        //    replica, which emits nothing) the loop seals inline.
        let seal_pool = if cfg.silent { 0 } else { cfg.seal_pool };
        let egress = (seal_pool > 0).then(|| {
            crate::egress::EgressPool::spawn(
                seal_pool,
                cfg.keystore.clone(),
                fabric.clone(),
                cfg.me,
                cfg.cluster.n,
            )
        });

        // 5. The event loop.
        let event_loop = EventLoop {
            me: cfg.me,
            n: cfg.cluster.n,
            node,
            keystore: cfg.keystore,
            fabric,
            egress,
            seal_buffers: crate::envelope::BufferPool::default(),
            events_tx,
            pipeline_tx,
            synced: synced.clone(),
            catchup_interval: cfg.catchup_interval,
            start: Instant::now(),
            silent: cfg.silent,
            verify_ingress: verify_pool == 0,
            net: net.clone(),
            vote_cache: HashMap::new(),
        };
        tokio::spawn(event_loop.run(events_rx));

        Ok(ReplicaHandle {
            me: cfg.me,
            control: control_tx,
            recovery,
            synced,
            stopped,
            net,
            snap: cfg.snap,
        })
    }
}

struct EventLoop<N: Node, F: Fabric> {
    me: ReplicaId,
    n: u32,
    node: N,
    keystore: KeyStore,
    fabric: F,
    /// The off-thread sealing stage (`seal_pool > 0`), or `None` for
    /// the inline baseline.
    egress: Option<crate::egress::EgressPool>,
    /// Recycled outbound payload buffers for the inline path (the
    /// egress pool carries its own).
    seal_buffers: crate::envelope::BufferPool,
    events_tx: mpsc::UnboundedSender<Event<N::Message>>,
    pipeline_tx: mpsc::Sender<PipelineCmd>,
    synced: Arc<AtomicBool>,
    catchup_interval: SimDuration,
    start: Instant,
    silent: bool,
    /// Whether this loop still verifies envelope signatures inline
    /// (`verify_pool == 0`); with the ingress pool active, envelopes
    /// arrive pre-verified and the loop never touches a signature.
    verify_ingress: bool,
    net: NetStats,
    /// Memo of verified votes shared across steps (see [`VoteCacheKey`]).
    vote_cache: HashMap<VoteCacheKey, bool>,
}

impl<N, F> EventLoop<N, F>
where
    N: Node + Send + 'static,
    N::Message: Serialize + Deserialize + Send + 'static,
    F: Fabric,
{
    async fn run(mut self, mut events: mpsc::UnboundedReceiver<Event<N::Message>>) {
        if self.silent {
            // A1: consume and drop everything until shutdown.
            while let Some(ev) = events.recv().await {
                if matches!(ev, Event::Shutdown) {
                    return;
                }
            }
            return;
        }
        // Consensus participation is gated on recovery: a replica that
        // boots behind (durable storage to catch up from) does not
        // start its protocol node — no votes, no proposals — until the
        // pipeline's state transfer completes. This is what keeps the
        // live-commit buffer from growing with catch-up duration, and
        // what makes a snapshot install safe (no buffered commit can
        // predate the installed height). Protocol traffic arriving
        // meanwhile is dropped — retransmission (Υ, Ask, client
        // retries) recovers it, and SpotLess's RVS jump rule brings the
        // fresh node to the cluster's current view in one weak quorum
        // of Syncs. Client requests are *held*, not dropped (the
        // runtime client has no retransmit loop): they replay into the
        // node the moment it starts, and the mempool applies its normal
        // admission rules then.
        let mut started = false;
        let mut held_requests: Vec<ClientBatch> = Vec::new();
        if self.synced.load(Ordering::Relaxed) {
            self.step(Input::Start).await;
            started = true;
        }
        // The runtime tick runs for the replica's whole life, not just
        // while behind: the pipeline uses it to drive catch-up retries
        // when catching up *and* serving-side maintenance when synced
        // (aging out a frozen outgoing snapshot whose requester
        // vanished mid-transfer).
        self.arm_catchup_tick();
        while let Some(ev) = events.recv().await {
            if !started && self.synced.load(Ordering::Relaxed) {
                self.step(Input::Start).await;
                started = true;
                for batch in held_requests.drain(..) {
                    self.step(Input::Request(batch)).await;
                }
            }
            match ev {
                Event::Envelope(env) => {
                    // With the ingress pool active the signature was
                    // already batch-verified off-thread; only the
                    // `verify_pool == 0` baseline pays it here.
                    if self.verify_ingress && env.verify(&self.keystore).is_err() {
                        self.net.record_rejected(env.payload.len());
                        continue;
                    }
                    // Route by the two-byte header alone — the loop
                    // never parses a transfer body. Protocol messages
                    // (the hot path) decode borrowed off the shared
                    // payload buffer; the whole transfer family ships
                    // to the pipeline as raw verified bytes and is
                    // decoded borrowed *there*, off this thread.
                    match payload_tag(&env.payload) {
                        Some(TAG_PROTOCOL) if started => {
                            let Some(msg) = decode_protocol_body::<N::Message>(&env.payload[2..])
                            else {
                                continue; // malformed body: drop
                            };
                            self.step(Input::Deliver {
                                from: env.from.into(),
                                msg,
                            })
                            .await;
                        }
                        // Protocol traffic before the node starts is
                        // dropped (retransmission recovers it); anything
                        // malformed likewise.
                        Some(TAG_PROTOCOL) | None => {}
                        Some(_) => {
                            let _ = self
                                .pipeline_tx
                                .send(PipelineCmd::Transfer {
                                    from: env.from,
                                    payload: env.payload,
                                })
                                .await;
                        }
                    }
                }
                Event::Loopback(msg) => {
                    if started {
                        self.step(Input::Deliver {
                            from: self.me.into(),
                            msg,
                        })
                        .await;
                    }
                }
                Event::Timer(id) if id.kind == CATCHUP_TICK => {
                    // While behind, the tick drives catch-up retries
                    // (and doubles as the start signal via the check at
                    // the top of the loop, so a quiet cluster still
                    // starts the node promptly); while synced it drives
                    // the pipeline's serving-side maintenance. Always
                    // re-armed — the tick is the replica's heartbeat.
                    let _ = self.pipeline_tx.send(PipelineCmd::Tick).await;
                    self.arm_catchup_tick();
                }
                Event::Timer(id) => {
                    if started {
                        self.step(Input::Timer(id)).await;
                    }
                }
                Event::Request(batch) => {
                    if started {
                        self.step(Input::Request(batch)).await;
                    } else {
                        held_requests.push(batch);
                    }
                }
                Event::Shutdown => return,
            }
        }
    }

    /// Steps the protocol once and applies its effects: commits into
    /// the bounded pipeline, timers onto real sleeps, messages sealed
    /// once and fanned out through the fabric.
    async fn step(&mut self, input: Input<N::Message>) {
        let mut ctx = RuntimeCtx {
            start: self.start,
            me: self.me.into(),
            keystore: &self.keystore,
            vote_cache: &mut self.vote_cache,
            sends: Vec::new(),
            broadcasts: Vec::new(),
            timers: Vec::new(),
            commits: Vec::new(),
        };
        self.node.on_input(input, &mut ctx);
        // Move the effect buffers out (releasing ctx's borrow of the
        // keystore and vote memo) before applying them against `self`.
        let RuntimeCtx {
            sends,
            broadcasts,
            timers,
            commits,
            ..
        } = ctx;
        for info in commits {
            // Bounded: consensus blocks here iff the storage/execution
            // pipeline is `commit_queue` slots behind (the ack queue).
            let _ = self.pipeline_tx.send(PipelineCmd::Commit(info)).await;
        }
        for (id, after) in timers {
            self.arm_timer(id, after);
        }
        for (to, msg) in sends {
            let NodeId::Replica(to) = to else {
                continue; // client replies travel the inform path
            };
            if to == self.me {
                let _ = self.events_tx.send(Event::Loopback(msg));
            } else {
                self.emit(&msg, Fanout::To(to));
            }
        }
        for msg in broadcasts {
            // Serialize + sign once; every peer shares the same Arc'd
            // bytes. Self-delivery is a local loopback (Remark 3.1) —
            // it never enters the egress stage.
            self.emit(&msg, Fanout::Broadcast);
            let _ = self.events_tx.send(Event::Loopback(msg));
        }
    }

    /// Encodes one outbound protocol message into a pooled buffer and
    /// either hands it to the egress stage (sealed off-thread, fanned
    /// out in submission order by the ordered emitter) or seals and
    /// sends inline (`seal_pool == 0`).
    fn emit(&mut self, msg: &N::Message, fanout: Fanout) {
        match &mut self.egress {
            Some(egress) => {
                let enc = encode_protocol_into(msg, egress.buffers.take());
                let len = enc.len();
                let payload = Payload::pooled(enc, &egress.buffers, 0, len);
                egress.submit(payload, fanout);
            }
            None => {
                let enc = encode_protocol_into(msg, self.seal_buffers.take());
                let len = enc.len();
                let payload = Payload::pooled(enc, &self.seal_buffers, 0, len);
                let env = Envelope::seal_payload(&self.keystore, payload);
                match fanout {
                    Fanout::To(to) => self.fabric.send(to, env),
                    Fanout::Broadcast => {
                        for r in 0..self.n {
                            if r != self.me.0 {
                                self.fabric.send(ReplicaId(r), env.clone());
                            }
                        }
                    }
                }
            }
        }
    }

    fn arm_timer(&self, id: TimerId, after: SimDuration) {
        let tx = self.events_tx.clone();
        let dur = std::time::Duration::from_nanos(after.as_nanos());
        tokio::spawn(async move {
            tokio::time::sleep(dur).await;
            let _ = tx.send(Event::Timer(id));
        });
    }

    fn arm_catchup_tick(&self) {
        self.arm_timer(
            TimerId::new(CATCHUP_TICK, InstanceId(0), View(0)),
            self.catchup_interval,
        );
    }
}
