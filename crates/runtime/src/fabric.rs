//! The fabric abstraction: how sealed envelopes reach peers.
//!
//! A fabric is *all* a transport has to provide — the runtime owns
//! signing, verification, execution, durability, and client replies.
//! `spotless-transport` ships two: an in-process channel fabric and a
//! TCP fabric. Both are a few dozen lines, which is the point of the
//! split.

use crate::envelope::Envelope;
use crate::observe::NetStats;
use spotless_types::ReplicaId;

/// Delivers envelopes to peers. Implementations must not block the
/// caller on network I/O — queue and return (the consensus loop calls
/// this on its critical path). Delivery is best-effort: the protocols'
/// own retransmission machinery (Υ retries, `Ask` recovery, client
/// timeouts) owns end-to-end reliability.
pub trait Fabric: Clone + Send + 'static {
    /// Queues `env` for delivery to `to`. Sending to this replica's own
    /// id is allowed (used by unicast-to-self protocols); fabrics may
    /// loop it back locally.
    fn send(&self, to: ReplicaId, env: Envelope);
}

/// The runtime's internal fabric wrapper: counts every outbound
/// envelope's payload bytes into the replica's [`NetStats`] before
/// handing it to the real fabric. Wrapping at this choke point is what
/// makes the counters complete — consensus traffic, catch-up, and
/// snapshot transfer all leave through [`Fabric::send`].
#[derive(Clone)]
pub(crate) struct MeteredFabric<F: Fabric> {
    pub(crate) inner: F,
    pub(crate) stats: NetStats,
}

impl<F: Fabric> Fabric for MeteredFabric<F> {
    fn send(&self, to: ReplicaId, env: Envelope) {
        self.stats.record_sent(env.payload.len());
        self.inner.send(to, env);
    }
}
