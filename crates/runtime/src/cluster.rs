//! Shared cluster assembly: the transport-independent recipe for
//! standing up `n` [`ReplicaRuntime`]s plus a [`ClusterClient`].
//!
//! Both transports (`spotless-transport`'s in-process and TCP modules)
//! differ only in how they build their fabrics; everything else —
//! key distribution, the shared commit log, the inform channel, the
//! per-replica runtime spawns, the client collector — is this one
//! function, so fixes to the assembly land in every transport at once.

use crate::client::ClusterClient;
use crate::envelope::Envelope;
use crate::fabric::Fabric;
use crate::observe::{CommitLog, Inform};
use crate::runtime::{ReplicaHandle, ReplicaRuntime, RuntimeConfig, StorageConfig};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use spotless_crypto::KeyStore;
use spotless_storage::StorageError;
use spotless_types::{ClusterConfig, Node, ReplicaId};
use std::sync::Arc;
use tokio::sync::mpsc;

/// A deployed cluster's shared plumbing, handed back to the transport
/// layer (which wraps it with transport-specific extras like restart).
pub struct ClusterHandles {
    /// Client handle (submit + await `f + 1` matching informs).
    pub client: ClusterClient,
    /// Observation log of all commits.
    pub commits: CommitLog,
    /// Replica handles; slots are swappable for restarts.
    pub handles: Arc<Mutex<Vec<ReplicaHandle>>>,
    /// The inform sender restarted replicas are wired back into.
    pub informs: mpsc::UnboundedSender<Inform>,
    /// Per-replica key stores (restarts reuse the same identity).
    pub keystores: Vec<KeyStore>,
}

/// Assembles a cluster over pre-built fabric endpoints: `endpoints[i]`
/// is replica `i`'s sending fabric plus its inbound envelope stream.
/// `make` builds each replica's protocol node, `storage[i]` optionally
/// makes replica `i` durable, `silent[i]` deploys it crash-faulty.
/// Must be called inside a tokio runtime.
pub fn assemble<N, F, M>(
    cluster: ClusterConfig,
    key_salt: &[u8],
    endpoints: Vec<(F, mpsc::UnboundedReceiver<Envelope>)>,
    storage: Vec<Option<StorageConfig>>,
    silent: Vec<bool>,
    make: M,
) -> Result<ClusterHandles, StorageError>
where
    N: Node + Send + 'static,
    N::Message: Serialize + Deserialize + Send + 'static,
    F: Fabric,
    M: FnMut(ReplicaId) -> N,
{
    assemble_tuned(cluster, key_salt, endpoints, storage, silent, |_| {}, make)
}

/// [`assemble`] with a tuning hook applied to every replica's
/// [`RuntimeConfig`] before spawn (queue depths, chunk budget, catch-up
/// interval). Tests use this to force multi-chunk snapshot transfers at
/// small state sizes.
#[allow(clippy::type_complexity)]
pub fn assemble_tuned<N, F, M, T>(
    cluster: ClusterConfig,
    key_salt: &[u8],
    endpoints: Vec<(F, mpsc::UnboundedReceiver<Envelope>)>,
    storage: Vec<Option<StorageConfig>>,
    silent: Vec<bool>,
    tune: T,
    mut make: M,
) -> Result<ClusterHandles, StorageError>
where
    N: Node + Send + 'static,
    N::Message: Serialize + Deserialize + Send + 'static,
    F: Fabric,
    M: FnMut(ReplicaId) -> N,
    T: Fn(&mut RuntimeConfig),
{
    let n = cluster.n as usize;
    assert_eq!(endpoints.len(), n);
    assert_eq!(storage.len(), n);
    assert_eq!(silent.len(), n);
    let keystores = KeyStore::cluster(key_salt, cluster.n);
    let commits = CommitLog::default();
    let (inform_tx, inform_rx) = mpsc::unbounded_channel::<Inform>();
    let mut handles = Vec::with_capacity(n);
    for (i, (fabric, envelopes)) in endpoints.into_iter().enumerate() {
        let me = ReplicaId(i as u32);
        let mut cfg = RuntimeConfig::new(cluster.clone(), me, keystores[i].clone());
        cfg.storage = storage[i].clone();
        cfg.silent = silent[i];
        tune(&mut cfg);
        handles.push(ReplicaRuntime::spawn(
            make(me),
            cfg,
            fabric,
            envelopes,
            commits.clone(),
            inform_tx.clone(),
        )?);
    }
    let handles = Arc::new(Mutex::new(handles));
    let client = ClusterClient::new(cluster, handles.clone(), inform_rx);
    Ok(ClusterHandles {
        client,
        commits,
        handles,
        informs: inform_tx,
        keystores,
    })
}
