//! Off-thread ingress verification: a small worker pool that checks
//! inbound [`Envelope`] signatures *before* they reach the event loop.
//!
//! PR 6 made every envelope carry a real Ed25519 signature, which put a
//! ~50 µs-class verification on the event-loop thread per inbound
//! message — serial with ordering, execution handoff, and outbound
//! sealing. This stage moves that cost onto `verify_pool` dedicated
//! worker tasks (thread-backed, see `compat/tokio`) and claws most of
//! it back twice over:
//!
//! * **off the critical path** — the event loop receives only
//!   pre-verified envelopes and never touches a signature again;
//! * **batched** — each worker drains its lane opportunistically and
//!   verifies up to [`MAX_VERIFY_BATCH`] envelopes in one
//!   random-linear-combination pass
//!   ([`KeyStore::verify_batch_refs`], ~2.3× serial throughput),
//!   falling back to per-envelope checks only when a batch fails, to
//!   attribute blame (mirroring `KeyStore::filter_valid`).
//!
//! **Ordering contract:** per-sender FIFO is preserved end to end. The
//! dispatcher shards strictly by sender (`from % workers`), so one
//! sender's envelopes always traverse the same lane, the same worker,
//! and arrive at the event queue in arrival order. Cross-sender order
//! is *not* preserved — it never was; fabrics make no cross-sender
//! guarantee — and consensus protocols tolerate that by construction.
//!
//! **Failure contract:** a forged, corrupted, or unknown-signer
//! envelope is dropped here, counted in [`NetStats::msgs_rejected`],
//! and nothing downstream ever sees it — a flood of garbage costs
//! worker-pool time, never event-loop time, and cannot reorder a
//! sender's valid traffic (the lane keeps draining in order around the
//! drops).

use crate::envelope::Envelope;
use crate::observe::NetStats;
use crate::runtime::Event;
use spotless_crypto::{KeyStore, Signature};
use spotless_types::ReplicaId;
use tokio::sync::mpsc;

/// Most envelopes folded into one batch verification. Bounds both the
/// latency a lane's head-of-queue envelope can accrue behind its batch
/// and the work thrown away when a batch contains one bad signature.
pub(crate) const MAX_VERIFY_BATCH: usize = 32;

/// Spawns the ingress verification stage: one dispatcher task reading
/// the fabric's inbound channel plus `workers` verification lanes, all
/// feeding pre-verified envelopes into `events`. Counts every arrival
/// into `net` (received) and every drop (rejected).
pub(crate) fn spawn_verify_pool<M: Send + 'static>(
    workers: usize,
    keystore: KeyStore,
    mut envelopes: mpsc::UnboundedReceiver<Envelope>,
    events: mpsc::UnboundedSender<Event<M>>,
    net: NetStats,
) {
    let workers = workers.max(1);
    let mut lanes: Vec<mpsc::UnboundedSender<Envelope>> = Vec::with_capacity(workers);
    for _ in 0..workers {
        let (lane_tx, lane_rx) = mpsc::unbounded_channel::<Envelope>();
        lanes.push(lane_tx);
        tokio::spawn(verify_lane(
            keystore.clone(),
            lane_rx,
            events.clone(),
            net.clone(),
        ));
    }
    tokio::spawn(async move {
        while let Some(env) = envelopes.recv().await {
            net.record_recv(env.payload.len());
            // Shard strictly by sender: per-sender FIFO order survives
            // because one sender can never be in two lanes at once.
            let lane = env.from.as_usize() % lanes.len();
            if lanes[lane].send(env).is_err() {
                break;
            }
        }
    });
}

/// One verification lane: drain, batch-verify, forward in order.
async fn verify_lane<M: Send + 'static>(
    keystore: KeyStore,
    mut lane: mpsc::UnboundedReceiver<Envelope>,
    events: mpsc::UnboundedSender<Event<M>>,
    net: NetStats,
) {
    let mut batch: Vec<Envelope> = Vec::with_capacity(MAX_VERIFY_BATCH);
    while let Some(env) = lane.recv().await {
        batch.push(env);
        while batch.len() < MAX_VERIFY_BATCH {
            match lane.try_recv() {
                Some(env) => batch.push(env),
                None => break,
            }
        }
        // One shared-doubling pass over the whole batch, borrowing the
        // payload bytes in place; a single bad signature fails the
        // batch, and only then does the lane pay serial verification to
        // attribute blame. The random-linear-combination pass has
        // per-item setup that only amortizes across several signatures,
        // so a lone envelope (idle cluster, trickling arrivals)
        // verifies serially instead.
        let all_ok = if batch.len() == 1 {
            batch[0].verify(&keystore).is_ok()
        } else {
            let refs: Vec<(ReplicaId, &[u8], &Signature)> = batch
                .iter()
                .map(|e| (e.from, e.payload.as_slice(), &e.sig))
                .collect();
            keystore.verify_batch_refs(&refs).is_ok()
        };
        for env in batch.drain(..) {
            if all_ok || env.verify(&keystore).is_ok() {
                if events.send(Event::Envelope(env)).is_err() {
                    return;
                }
            } else {
                net.record_rejected(env.payload.len());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::envelope::encode_catchup_req;
    use spotless_crypto::Signature;

    /// Drives a pool directly: interleaved valid and forged envelopes
    /// from the same sender must come out with exactly the valid ones,
    /// in their original relative order, and the forgeries counted.
    #[tokio::test(flavor = "multi_thread")]
    async fn flood_of_forgeries_neither_reorders_nor_leaks() {
        let stores = KeyStore::cluster(b"ingress-pool-test", 4);
        let (in_tx, in_rx) = mpsc::unbounded_channel::<Envelope>();
        let (ev_tx, mut ev_rx) = mpsc::unbounded_channel::<Event<u64>>();
        let net = NetStats::default();
        spawn_verify_pool(3, stores[0].clone(), in_rx, ev_tx, net.clone());

        // 200 envelopes from sender 2: even heights genuine, odd
        // heights forged (garbage signature over the same payload).
        let mut expected = Vec::new();
        for h in 0..200u64 {
            let mut env = Envelope::seal(&stores[2], encode_catchup_req(h));
            if h % 2 == 1 {
                env.sig = Signature([0xAB; 64]);
            } else {
                expected.push(h);
            }
            in_tx.send(env).unwrap();
        }
        // Interleave a second sender to exercise lane sharding.
        for h in 1000..1050u64 {
            in_tx
                .send(Envelope::seal(&stores[3], encode_catchup_req(h)))
                .unwrap();
        }

        let mut got_from_2 = Vec::new();
        let mut got_from_3 = 0usize;
        while got_from_2.len() < 100 || got_from_3 < 50 {
            let Some(Event::Envelope(env)) = ev_rx.recv().await else {
                panic!("pool closed early");
            };
            assert!(env.verify(&stores[0]).is_ok(), "forged envelope leaked");
            let height = match crate::envelope::decode::<u64>(&env.payload) {
                Some(crate::envelope::WireMsg::CatchUpReq { from_height }) => from_height,
                _ => panic!("unexpected payload"),
            };
            if env.from == ReplicaId(2) {
                got_from_2.push(height);
            } else {
                assert_eq!(env.from, ReplicaId(3));
                got_from_3 += 1;
            }
        }
        assert_eq!(got_from_2, expected, "per-sender FIFO order must survive");
        assert_eq!(net.msgs_rejected(), 100);
        assert_eq!(net.msgs_recv(), 250);
    }

    /// An envelope claiming an out-of-range sender is an
    /// `UnknownSigner` rejection, not a panic or a leak.
    #[tokio::test(flavor = "multi_thread")]
    async fn unknown_signer_is_rejected() {
        let stores = KeyStore::cluster(b"ingress-pool-test", 4);
        let (in_tx, in_rx) = mpsc::unbounded_channel::<Envelope>();
        let (ev_tx, mut ev_rx) = mpsc::unbounded_channel::<Event<u64>>();
        let net = NetStats::default();
        spawn_verify_pool(2, stores[0].clone(), in_rx, ev_tx, net.clone());

        let mut env = Envelope::seal(&stores[1], encode_catchup_req(7));
        env.from = ReplicaId(99);
        in_tx.send(env).unwrap();
        // A genuine envelope behind it still flows.
        in_tx
            .send(Envelope::seal(&stores[1], encode_catchup_req(8)))
            .unwrap();
        let Some(Event::Envelope(env)) = ev_rx.recv().await else {
            panic!("pool closed early");
        };
        assert_eq!(env.from, ReplicaId(1));
        assert_eq!(net.msgs_rejected(), 1);
    }
}
