//! Off-thread ingress verification: a small worker pool that checks
//! inbound [`Envelope`] signatures *before* they reach the event loop.
//!
//! PR 6 made every envelope carry a real Ed25519 signature, which put a
//! ~50 µs-class verification on the event-loop thread per inbound
//! message — serial with ordering, execution handoff, and outbound
//! sealing. This stage moves that cost onto `verify_pool` dedicated
//! worker tasks (thread-backed, see `compat/tokio`) and claws most of
//! it back twice over:
//!
//! * **off the critical path** — the event loop receives only
//!   pre-verified envelopes and never touches a signature again;
//! * **batched** — each worker drains a claimed sender queue
//!   opportunistically and verifies up to [`MAX_VERIFY_BATCH`]
//!   envelopes in one random-linear-combination pass
//!   ([`KeyStore::verify_batch_refs`], ~2.3× serial throughput),
//!   falling back to per-envelope checks only when a batch fails, to
//!   attribute blame (mirroring `KeyStore::filter_valid`).
//!
//! ## Work stealing
//!
//! Envelopes queue **per sender**, and workers claim whole sender
//! queues from a shared ready list: any idle worker takes the next
//! ready sender, drains up to a batch from it, verifies, forwards, and
//! releases the claim. A hot sender therefore no longer serializes the
//! pool the way static `from % workers` sharding did — while one
//! worker is busy verifying a hot sender's batch, the others keep
//! claiming every other sender, and the hot sender's *next* batch is
//! picked up by whichever worker goes idle first.
//!
//! **Ordering contract:** per-sender FIFO is preserved end to end. A
//! sender's queue is claimed by at most one worker at a time, that
//! worker forwards its batch in arrival order *before* releasing the
//! claim, and the next claim (by any worker) can only see envelopes
//! that arrived later. Cross-sender order is *not* preserved — it
//! never was; fabrics make no cross-sender guarantee — and consensus
//! protocols tolerate that by construction.
//!
//! **Failure contract:** a forged, corrupted, or unknown-signer
//! envelope is dropped here, counted in [`NetStats::msgs_rejected`],
//! and nothing downstream ever sees it — a flood of garbage costs
//! worker-pool time, never event-loop time, and cannot reorder a
//! sender's valid traffic (the claimed queue keeps draining in order
//! around the drops).

use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex};

use crate::envelope::Envelope;
use crate::observe::NetStats;
use crate::runtime::Event;
use spotless_crypto::{KeyStore, Signature};
use spotless_types::ReplicaId;
use tokio::sync::mpsc;

/// Most envelopes folded into one batch verification. Bounds both the
/// latency a queue's head envelope can accrue behind its batch and the
/// work thrown away when a batch contains one bad signature — and,
/// since a claim spans one batch, how long a hot sender can hold one
/// worker before the queue is back up for grabs.
pub(crate) const MAX_VERIFY_BATCH: usize = 32;

/// One sender's pending envelopes plus its scheduling state.
#[derive(Default)]
struct SenderQueue {
    queue: VecDeque<Envelope>,
    /// A worker is currently verifying a batch from this queue.
    claimed: bool,
    /// This sender is in the shared ready list (invariant: set iff
    /// unclaimed with a non-empty queue).
    ready: bool,
}

#[derive(Default)]
struct IngressState {
    senders: HashMap<usize, SenderQueue>,
    /// Senders with unclaimed, non-empty queues, in the order they
    /// became ready.
    ready: VecDeque<usize>,
    closed: bool,
}

/// Spawns the ingress verification stage: one dispatcher task reading
/// the fabric's inbound channel plus `workers` verification lanes, all
/// feeding pre-verified envelopes into `events`. Counts every arrival
/// into `net` (received) and every drop (rejected).
pub(crate) fn spawn_verify_pool<M: Send + 'static>(
    workers: usize,
    keystore: KeyStore,
    mut envelopes: mpsc::UnboundedReceiver<Envelope>,
    events: mpsc::UnboundedSender<Event<M>>,
    net: NetStats,
) {
    let workers = workers.max(1);
    let shared = Arc::new((Mutex::new(IngressState::default()), Condvar::new()));
    for _ in 0..workers {
        let shared = Arc::clone(&shared);
        let keystore = keystore.clone();
        let events = events.clone();
        let net = net.clone();
        tokio::spawn(async move { verify_worker(shared, keystore, events, net) });
    }
    tokio::spawn(async move {
        while let Some(env) = envelopes.recv().await {
            net.record_recv(env.payload.len());
            let (lock, cvar) = &*shared;
            let mut state = lock.lock().unwrap();
            let st = &mut *state;
            let sender = env.from.as_usize();
            let sq = st.senders.entry(sender).or_default();
            sq.queue.push_back(env);
            if !sq.claimed && !sq.ready {
                sq.ready = true;
                st.ready.push_back(sender);
                cvar.notify_one();
            }
        }
        let (lock, cvar) = &*shared;
        lock.lock().unwrap().closed = true;
        cvar.notify_all();
    });
}

/// One verification worker: claim a ready sender, drain a batch,
/// verify, forward in order, release — repeat.
fn verify_worker<M: Send + 'static>(
    shared: Arc<(Mutex<IngressState>, Condvar)>,
    keystore: KeyStore,
    events: mpsc::UnboundedSender<Event<M>>,
    net: NetStats,
) {
    let (lock, cvar) = &*shared;
    let mut state = lock.lock().unwrap();
    loop {
        if let Some(sender) = state.ready.pop_front() {
            let sq = state.senders.get_mut(&sender).expect("ready sender exists");
            sq.ready = false;
            sq.claimed = true;
            let take = sq.queue.len().min(MAX_VERIFY_BATCH);
            let batch: Vec<Envelope> = sq.queue.drain(..take).collect();
            drop(state);
            let alive = verify_and_forward(&keystore, &events, &net, batch);
            state = lock.lock().unwrap();
            let st = &mut *state;
            let sq = st.senders.get_mut(&sender).expect("claimed sender exists");
            sq.claimed = false;
            if !sq.queue.is_empty() {
                // More arrived while we verified: back to the ready
                // list for whichever worker is idle first.
                sq.ready = true;
                st.ready.push_back(sender);
                cvar.notify_one();
            }
            if !alive {
                return;
            }
            continue;
        }
        if state.closed {
            return;
        }
        state = cvar.wait(state).unwrap();
    }
}

/// Verifies one claimed batch (shared-doubling pass over the whole
/// batch, borrowing payload bytes in place; a single bad signature
/// fails the batch, and only then does the worker pay serial
/// verification to attribute blame) and forwards the survivors in
/// arrival order. The random-linear-combination pass has per-item
/// setup that only amortizes across several signatures, so a lone
/// envelope (idle cluster, trickling arrivals) verifies serially
/// instead. Returns false once the event queue is gone.
fn verify_and_forward<M: Send + 'static>(
    keystore: &KeyStore,
    events: &mpsc::UnboundedSender<Event<M>>,
    net: &NetStats,
    mut batch: Vec<Envelope>,
) -> bool {
    let all_ok = if batch.len() == 1 {
        batch[0].verify(keystore).is_ok()
    } else {
        let refs: Vec<(ReplicaId, &[u8], &Signature)> = batch
            .iter()
            .map(|e| (e.from, e.payload.as_slice(), &e.sig))
            .collect();
        keystore.verify_batch_refs(&refs).is_ok()
    };
    for env in batch.drain(..) {
        if all_ok || env.verify(keystore).is_ok() {
            if events.send(Event::Envelope(env)).is_err() {
                return false;
            }
        } else {
            net.record_rejected(env.payload.len());
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::envelope::encode_catchup_req;
    use spotless_crypto::Signature;

    /// Drives a pool directly: interleaved valid and forged envelopes
    /// from the same sender must come out with exactly the valid ones,
    /// in their original relative order, and the forgeries counted.
    #[tokio::test(flavor = "multi_thread")]
    async fn flood_of_forgeries_neither_reorders_nor_leaks() {
        let stores = KeyStore::cluster(b"ingress-pool-test", 4);
        let (in_tx, in_rx) = mpsc::unbounded_channel::<Envelope>();
        let (ev_tx, mut ev_rx) = mpsc::unbounded_channel::<Event<u64>>();
        let net = NetStats::default();
        spawn_verify_pool(3, stores[0].clone(), in_rx, ev_tx, net.clone());

        // 200 envelopes from sender 2: even heights genuine, odd
        // heights forged (garbage signature over the same payload).
        let mut expected = Vec::new();
        for h in 0..200u64 {
            let mut env = Envelope::seal(&stores[2], encode_catchup_req(h));
            if h % 2 == 1 {
                env.sig = Signature([0xAB; 64]);
            } else {
                expected.push(h);
            }
            in_tx.send(env).unwrap();
        }
        // Interleave a second sender to exercise claim interleaving.
        for h in 1000..1050u64 {
            in_tx
                .send(Envelope::seal(&stores[3], encode_catchup_req(h)))
                .unwrap();
        }

        let mut got_from_2 = Vec::new();
        let mut got_from_3 = 0usize;
        while got_from_2.len() < 100 || got_from_3 < 50 {
            let Some(Event::Envelope(env)) = ev_rx.recv().await else {
                panic!("pool closed early");
            };
            assert!(env.verify(&stores[0]).is_ok(), "forged envelope leaked");
            let height = match crate::envelope::decode::<u64>(&env.payload) {
                Some(crate::envelope::WireMsg::CatchUpReq { from_height }) => from_height,
                _ => panic!("unexpected payload"),
            };
            if env.from == ReplicaId(2) {
                got_from_2.push(height);
            } else {
                assert_eq!(env.from, ReplicaId(3));
                got_from_3 += 1;
            }
        }
        assert_eq!(got_from_2, expected, "per-sender FIFO order must survive");
        assert_eq!(net.msgs_rejected(), 100);
        assert_eq!(net.msgs_recv(), 250);
    }

    /// One hot sender floods the pool while others trickle: the hot
    /// sender's queue bounces between workers batch by batch (claim,
    /// drain ≤ [`MAX_VERIFY_BATCH`], release — any idle worker may
    /// claim next), and its FIFO order must still hold exactly, as
    /// must every cold sender's.
    #[tokio::test(flavor = "multi_thread")]
    async fn hot_sender_fifo_survives_queue_stealing() {
        let stores = KeyStore::cluster(b"ingress-steal-test", 4);
        let (in_tx, in_rx) = mpsc::unbounded_channel::<Envelope>();
        let (ev_tx, mut ev_rx) = mpsc::unbounded_channel::<Event<u64>>();
        let net = NetStats::default();
        spawn_verify_pool(3, stores[0].clone(), in_rx, ev_tx, net.clone());

        // Sender 1 is hot: 10+ batches' worth, interleaved with cold
        // traffic from senders 2 and 3 so claims genuinely contend.
        const HOT: u64 = 12 * MAX_VERIFY_BATCH as u64;
        let mut sent = 0u64;
        for h in 0..HOT {
            in_tx
                .send(Envelope::seal(&stores[1], encode_catchup_req(h)))
                .unwrap();
            sent += 1;
            if h % 16 == 0 {
                for cold in [2usize, 3] {
                    in_tx
                        .send(Envelope::seal(
                            &stores[cold],
                            encode_catchup_req(10_000 + h),
                        ))
                        .unwrap();
                    sent += 1;
                }
            }
        }

        let mut hot_heights = Vec::new();
        let mut cold_heights: HashMap<ReplicaId, Vec<u64>> = HashMap::new();
        for _ in 0..sent {
            let Some(Event::Envelope(env)) = ev_rx.recv().await else {
                panic!("pool closed early");
            };
            let height = match crate::envelope::decode::<u64>(&env.payload) {
                Some(crate::envelope::WireMsg::CatchUpReq { from_height }) => from_height,
                _ => panic!("unexpected payload"),
            };
            if env.from == ReplicaId(1) {
                hot_heights.push(height);
            } else {
                cold_heights.entry(env.from).or_default().push(height);
            }
        }
        let expect_hot: Vec<u64> = (0..HOT).collect();
        assert_eq!(hot_heights, expect_hot, "hot sender FIFO must survive");
        for (_, heights) in cold_heights {
            assert!(
                heights.windows(2).all(|w| w[0] < w[1]),
                "cold sender FIFO must survive"
            );
        }
        assert_eq!(net.msgs_rejected(), 0);
    }

    /// An envelope claiming an out-of-range sender is an
    /// `UnknownSigner` rejection, not a panic or a leak.
    #[tokio::test(flavor = "multi_thread")]
    async fn unknown_signer_is_rejected() {
        let stores = KeyStore::cluster(b"ingress-pool-test", 4);
        let (in_tx, in_rx) = mpsc::unbounded_channel::<Envelope>();
        let (ev_tx, mut ev_rx) = mpsc::unbounded_channel::<Event<u64>>();
        let net = NetStats::default();
        spawn_verify_pool(2, stores[0].clone(), in_rx, ev_tx, net.clone());

        let mut env = Envelope::seal(&stores[1], encode_catchup_req(7));
        env.from = ReplicaId(99);
        in_tx.send(env).unwrap();
        // A genuine envelope behind it still flows.
        in_tx
            .send(Envelope::seal(&stores[1], encode_catchup_req(8)))
            .unwrap();
        let Some(Event::Envelope(env)) = ev_rx.recv().await else {
            panic!("pool closed early");
        };
        assert_eq!(env.from, ReplicaId(1));
        assert_eq!(net.msgs_rejected(), 1);
    }
}
