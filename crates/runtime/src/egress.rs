//! Off-thread egress sealing: the outbound counterpart of the ingress
//! verification stage.
//!
//! Every envelope a replica emits is Ed25519-signed, and until this
//! stage that signing ran inline on the event-loop thread — serial
//! with ordering steps and inbound deliveries, exactly the cost the
//! ingress pool removed from the receive side. The sealer pool moves
//! it onto `seal_pool` dedicated worker lanes and claws it back the
//! same two ways:
//!
//! * **off the critical path** — the event loop encodes the payload
//!   (into a recycled [`BufferPool`] buffer, wrapped once as a
//!   refcounted [`Payload`]), submits a seal job, and returns to the
//!   next event without touching the signature;
//! * **batched** — a lane drains its queue opportunistically and signs
//!   up to [`MAX_SEAL_BATCH`] payloads in one
//!   [`KeyStore::sign_batch`] call, which amortizes the fixed-base
//!   scalar multiplication across the batch (see
//!   `spotless-crypto::signing`). Signatures are byte-identical to
//!   per-call [`KeyStore::sign`] — peers cannot tell the difference.
//!
//! **Ordering contract:** sends leave the replica in submission order
//! — globally, hence per destination. Seal jobs fan out round-robin
//! across lanes and complete in any order, but a single **emitter**
//! task holds the submission-order queue of completion handles and
//! performs the actual [`Fabric::send`] fan-out strictly in that
//! order. A destination therefore observes exactly the sequence the
//! protocol emitted, same as inline sealing. Loopback self-delivery
//! never enters this stage (it carries no signature at all).
//!
//! **Failure contract:** if a sealer lane dies mid-job (its reply
//! channel drops unresolved), the emitter **skips that envelope and
//! moves on** — a lane failure drops its envelope, it never reorders
//! or stalls a destination. Consensus retransmission (Υ retries, Ask
//! recovery, client timeouts) owns end-to-end delivery, exactly as it
//! does for fabric-level loss.
//!
//! The sealed frame is handed to the transport with **zero copies**:
//! the payload bytes are encoded once into the pooled buffer, the
//! [`Payload`] view is refcounted through signing, the emitter, and
//! every per-destination [`Envelope`] clone, and the buffer returns to
//! the pool when the last send completes.

use crate::envelope::{BufferPool, Envelope, Payload};
use crate::fabric::Fabric;
use spotless_crypto::KeyStore;
use spotless_types::ReplicaId;
use tokio::sync::{mpsc, oneshot};

/// Most payloads folded into one batched signing call. Bounds the
/// latency the head job of a lane's queue can accrue behind its batch.
pub(crate) const MAX_SEAL_BATCH: usize = 32;

/// Where a sealed envelope goes.
pub(crate) enum Fanout {
    /// One peer.
    To(ReplicaId),
    /// Every peer but this replica (self-delivery is a loopback event,
    /// never a sealed frame).
    Broadcast,
}

/// One payload awaiting a signature on a sealer lane.
struct SealJob {
    payload: Payload,
    reply: oneshot::Sender<Envelope>,
}

/// One submitted send, queued at the emitter in submission order.
struct PendingSend {
    ready: oneshot::Receiver<Envelope>,
    fanout: Fanout,
}

/// The egress sealing stage: `seal_pool` signer lanes plus one ordered
/// emitter. Owned by the event loop; dropping it closes the lanes and
/// the emitter drains what was already submitted.
pub(crate) struct EgressPool {
    lanes: Vec<mpsc::UnboundedSender<SealJob>>,
    /// Round-robin lane cursor.
    next: usize,
    ordered: mpsc::UnboundedSender<PendingSend>,
    /// Recycled payload buffers: encode → sign → send → back here.
    pub(crate) buffers: BufferPool,
}

impl EgressPool {
    /// Spawns `workers` (≥ 1) sealer lanes and the ordered emitter.
    /// Must be called inside a tokio runtime context.
    pub(crate) fn spawn<F: Fabric>(
        workers: usize,
        keystore: KeyStore,
        fabric: F,
        me: ReplicaId,
        n: u32,
    ) -> EgressPool {
        let workers = workers.max(1);
        let mut lanes = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (tx, rx) = mpsc::unbounded_channel::<SealJob>();
            lanes.push(tx);
            tokio::spawn(seal_lane(keystore.clone(), rx));
        }
        let (ordered, ordered_rx) = mpsc::unbounded_channel::<PendingSend>();
        tokio::spawn(emitter(fabric, me, n, ordered_rx));
        EgressPool {
            lanes,
            next: 0,
            ordered,
            buffers: BufferPool::default(),
        }
    }

    /// Submits one encoded payload for sealing and eventual fan-out.
    /// Non-blocking; the send happens in submission order once a lane
    /// has signed it.
    pub(crate) fn submit(&mut self, payload: Payload, fanout: Fanout) {
        let (reply, ready) = oneshot::channel();
        // Emitter first: the ordered queue position is claimed before
        // the job can possibly complete.
        let _ = self.ordered.send(PendingSend { ready, fanout });
        let lane = self.next % self.lanes.len();
        self.next = self.next.wrapping_add(1);
        let _ = self.lanes[lane].send(SealJob { payload, reply });
    }
}

/// One sealer lane: drain, batch-sign, reply per job.
async fn seal_lane(keystore: KeyStore, mut rx: mpsc::UnboundedReceiver<SealJob>) {
    let mut jobs: Vec<SealJob> = Vec::with_capacity(MAX_SEAL_BATCH);
    while let Some(job) = rx.recv().await {
        jobs.push(job);
        while jobs.len() < MAX_SEAL_BATCH {
            match rx.try_recv() {
                Some(job) => jobs.push(job),
                None => break,
            }
        }
        if jobs.len() == 1 {
            let job = jobs.pop().expect("one job");
            let env = Envelope::seal_payload(&keystore, job.payload);
            let _ = job.reply.send(env);
        } else {
            // One fixed-base table walk per signature, shared SHA-512
            // state: byte-identical signatures at a fraction of the
            // per-call cost.
            let sigs = {
                let msgs: Vec<&[u8]> = jobs.iter().map(|j| j.payload.as_slice()).collect();
                keystore.sign_batch(&msgs)
            };
            for (job, sig) in jobs.drain(..).zip(sigs) {
                let env = Envelope {
                    from: keystore.me(),
                    payload: job.payload,
                    sig,
                };
                let _ = job.reply.send(env);
            }
        }
    }
}

/// The ordered emitter: awaits each submitted job's envelope in
/// submission order and performs the fabric fan-out. A dropped reply
/// (dead lane) skips that envelope — drop, never reorder.
async fn emitter<F: Fabric>(
    fabric: F,
    me: ReplicaId,
    n: u32,
    mut rx: mpsc::UnboundedReceiver<PendingSend>,
) {
    while let Some(pending) = rx.recv().await {
        // A RecvError means the sealer lane died: drop this envelope
        // only — the next pending send still emits in order.
        let Ok(env) = pending.ready.await else {
            continue;
        };
        match pending.fanout {
            Fanout::To(to) => fabric.send(to, env),
            Fanout::Broadcast => {
                for r in 0..n {
                    if r != me.0 {
                        fabric.send(ReplicaId(r), env.clone());
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::envelope::encode_catchup_req;
    use std::sync::{Arc, Mutex};

    /// A fabric that records every delivery in arrival order.
    #[derive(Clone, Default)]
    struct RecordingFabric {
        sent: Arc<Mutex<Vec<(ReplicaId, Envelope)>>>,
    }

    impl Fabric for RecordingFabric {
        fn send(&self, to: ReplicaId, env: Envelope) {
            self.sent.lock().unwrap().push((to, env));
        }
    }

    /// Sends submitted across many lanes must hit the fabric in
    /// submission order, per destination and globally, every envelope
    /// carrying a signature its peers accept.
    #[tokio::test(flavor = "multi_thread")]
    async fn sealed_sends_arrive_in_submission_order() {
        let stores = KeyStore::cluster(b"egress-test", 4);
        let fabric = RecordingFabric::default();
        let mut pool = EgressPool::spawn(3, stores[1].clone(), fabric.clone(), ReplicaId(1), 4);

        const SENDS: u64 = 200;
        for h in 0..SENDS {
            let payload = Payload::new(encode_catchup_req(h));
            let fanout = if h % 5 == 0 {
                Fanout::Broadcast
            } else {
                Fanout::To(ReplicaId((h % 3) as u32 * 2 % 4)) // peers 0 and 2
            };
            pool.submit(payload, fanout);
        }

        // The emitter drains in order; poll until everything arrived.
        let expect_total: usize = (0..SENDS).map(|h| if h % 5 == 0 { 3 } else { 1 }).sum();
        for _ in 0..500 {
            if fabric.sent.lock().unwrap().len() >= expect_total {
                break;
            }
            tokio::time::sleep(std::time::Duration::from_millis(2)).await;
        }

        let sent = fabric.sent.lock().unwrap();
        assert_eq!(sent.len(), expect_total);
        // Global submission order: the decoded heights are
        // non-decreasing (broadcast fan-out repeats a height).
        let mut last = 0u64;
        for (_, env) in sent.iter() {
            assert!(env.verify(&stores[0]).is_ok(), "bad egress signature");
            let h = match crate::envelope::decode::<u64>(&env.payload) {
                Some(crate::envelope::WireMsg::CatchUpReq { from_height }) => from_height,
                _ => panic!("unexpected payload"),
            };
            assert!(h >= last, "send order violated: {h} after {last}");
            last = h;
        }
        // A broadcast from replica 1 in a 4-cluster reaches 0, 2, 3.
        let bcast: Vec<ReplicaId> = sent
            .iter()
            .filter(|(_, e)| {
                matches!(
                    crate::envelope::decode::<u64>(&e.payload),
                    Some(crate::envelope::WireMsg::CatchUpReq { from_height: 0 })
                )
            })
            .map(|(to, _)| *to)
            .collect();
        assert_eq!(bcast, vec![ReplicaId(0), ReplicaId(2), ReplicaId(3)]);
    }

    /// A seal job whose lane never replies (dropped sender) is skipped:
    /// later sends still flow, in order, and nothing stalls.
    #[tokio::test(flavor = "multi_thread")]
    async fn dropped_seal_job_is_skipped_not_reordered() {
        let stores = KeyStore::cluster(b"egress-drop-test", 4);
        let fabric = RecordingFabric::default();
        let (ordered, ordered_rx) = mpsc::unbounded_channel::<PendingSend>();
        tokio::spawn(emitter(fabric.clone(), ReplicaId(1), 4, ordered_rx));

        // Job 0: reply dropped without sealing (simulated dead lane).
        let (dead_reply, dead_ready) = oneshot::channel::<Envelope>();
        drop(dead_reply);
        assert!(ordered
            .send(PendingSend {
                ready: dead_ready,
                fanout: Fanout::To(ReplicaId(0)),
            })
            .is_ok());
        // Job 1: sealed normally.
        let (reply, ready) = oneshot::channel::<Envelope>();
        reply
            .send(Envelope::seal(&stores[1], encode_catchup_req(7)))
            .ok()
            .unwrap();
        assert!(ordered
            .send(PendingSend {
                ready,
                fanout: Fanout::To(ReplicaId(2)),
            })
            .is_ok());

        for _ in 0..500 {
            if !fabric.sent.lock().unwrap().is_empty() {
                break;
            }
            tokio::time::sleep(std::time::Duration::from_millis(2)).await;
        }
        let sent = fabric.sent.lock().unwrap();
        assert_eq!(sent.len(), 1, "dead job dropped, live job delivered");
        assert_eq!(sent[0].0, ReplicaId(2));
    }
}
