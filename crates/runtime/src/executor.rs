//! Deterministic conflict-aware parallel execution of committed
//! batches.
//!
//! SpotLess's concurrent instances parallelize *ordering*, but until
//! this module every committed batch still funneled through one serial
//! `KvStore::execute_batch` call on the pipeline thread. The keyspace
//! is now partitioned into [`EXEC_SHARDS`] shards (contiguous bucket
//! ranges of the consensus-visible 1024-bucket layout), each batch's
//! **shard footprint** is computed from its transactions, and batches
//! whose footprints do not overlap execute concurrently on a worker
//! pool — while the sealed per-block `state_root` stays byte-identical
//! to serial execution.
//!
//! ## Determinism contract
//!
//! Execute-then-seal makes execution order consensus-critical: the
//! root a block seals is a function of the exact chain prefix below
//! it. Parallel execution preserves it by construction:
//!
//! * **Conflicts serialize.** Batches are grouped into connected
//!   components by shared shards (union-find over footprints). Every
//!   component's batches run on ONE worker, serially, in commit order
//!   — so each shard observes exactly the writes, in exactly the
//!   order, serial execution would have applied. A batch touching
//!   many shards simply merges their components: cross-shard batches
//!   act as barriers between everything they link.
//! * **Disjoint components commute.** Two batches with disjoint
//!   footprints touch disjoint key sets, so their table effects are
//!   independent; running them on different workers reorders nothing
//!   observable.
//! * **Sealing is a commit-order fold.** Workers snapshot the
//!   sub-roots of a batch's footprint shards after executing it.
//!   The caller then walks the batches in commit order, absorbing
//!   each batch's [`BatchEffect`] into the store's rolling digest and
//!   overlaying its sub-root snapshots onto the running shard-root
//!   vector; [`top_state_root`] over that vector (plus the meta leaf)
//!   reproduces, per block, exactly the root serial execution would
//!   have sealed. The serial-vs-parallel equivalence proptest in the
//!   facade crate pins this byte-for-byte.
//!
//! The single-component and `workers == 0` cases run *the same
//! routine* ([`run_component`]) inline on the caller's thread — there
//! is one execution code path, not a serial one and a parallel one
//! that could drift apart.

use spotless_types::Digest;
use spotless_workload::{
    batch_footprint, execute_on_shards, top_state_root, BatchEffect, KvStore, Shard, Transaction,
    EXEC_SHARDS,
};
use tokio::sync::mpsc;

/// What executing one batch produced, keyed back to its commit-order
/// position by the caller.
struct BatchOutcome {
    /// Commit-order index of the batch within the submitted group.
    index: usize,
    /// Per-batch digest/counter summary to absorb in commit order.
    effect: BatchEffect,
    /// `(shard, sub-root after this batch)` for every shard in the
    /// batch's footprint — the commit-order fold overlays these onto
    /// the running shard-root vector before sealing the batch's root.
    shard_roots: Vec<(usize, Digest)>,
}

/// A conflict component's batches, each tagged with its commit-order
/// index within the submitted group.
type IndexedBatches = Vec<(usize, Vec<Transaction>)>;

/// One conflict component shipped to a worker: the shards it owns for
/// the duration and its batches in commit order.
struct ExecJob {
    shards: Vec<Shard>,
    batches: IndexedBatches,
    reply: std::sync::mpsc::Sender<ExecDone>,
}

/// A worker's reply: the shards handed back plus one outcome per batch.
struct ExecDone {
    shards: Vec<Shard>,
    outcomes: Vec<BatchOutcome>,
}

/// Executes a conflict component: its batches serially, in commit
/// order, against the shards it owns — the one execution routine both
/// the inline path and the pooled workers run.
fn run_component(mut shards: Vec<Shard>, batches: IndexedBatches) -> ExecDone {
    let mut outcomes = Vec::with_capacity(batches.len());
    for (index, txns) in batches {
        let footprint = batch_footprint(&txns);
        let effect = execute_on_shards(&mut shards, &txns);
        // Snapshot the footprint shards' sub-roots NOW: within the
        // component, later batches may touch them again, and the
        // commit-order fold needs the root as of *this* batch.
        let mut shard_roots = Vec::new();
        for shard in shards.iter_mut() {
            if footprint & (1 << shard.id()) != 0 {
                shard_roots.push((shard.id(), shard.sub_root()));
            }
        }
        outcomes.push(BatchOutcome {
            index,
            effect,
            shard_roots,
        });
    }
    ExecDone { shards, outcomes }
}

/// A pool of persistent execution workers (thread-backed tasks, same
/// compat/tokio style as the ingress verification pool). Jobs are
/// whole conflict components; replies return over a per-group
/// synchronous channel because the pipeline's flush is synchronous
/// code on its own task.
pub struct ExecutorPool {
    lanes: Vec<mpsc::UnboundedSender<ExecJob>>,
    /// Round-robin dispatch cursor.
    next: usize,
}

impl ExecutorPool {
    /// Spawns `workers` (≥ 1) persistent execution workers. Must be
    /// called inside a tokio runtime context.
    pub fn spawn(workers: usize) -> ExecutorPool {
        let workers = workers.max(1);
        let mut lanes = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (tx, mut rx) = mpsc::unbounded_channel::<ExecJob>();
            lanes.push(tx);
            tokio::spawn(async move {
                while let Some(job) = rx.recv().await {
                    let done = run_component(job.shards, job.batches);
                    let _ = job.reply.send(done);
                }
            });
        }
        ExecutorPool { lanes, next: 0 }
    }
}

/// One sealed batch of an executed group, in commit order: the
/// post-batch state digest (the client-visible result) and the state
/// root the batch's block seals.
pub struct SealedBatch {
    /// Rolling state digest after this batch (what informs carry).
    pub state_digest: Digest,
    /// Two-level Merkle root after this batch (what the block seals).
    pub state_root: Digest,
}

/// Executes a commit-ordered group of decoded batches against `kv` —
/// in parallel across conflict components when `pool` is available —
/// and returns each batch's sealed `(state_digest, state_root)` pair
/// in commit order. `None` entries are empty (simulation-style)
/// payloads: they execute nothing and seal the unchanged root.
///
/// Byte-equivalent to calling `kv.execute_batch` + `kv.state_root`
/// per batch in order; see the module docs for why.
pub fn execute_group(
    pool: Option<&mut ExecutorPool>,
    kv: &mut KvStore,
    batches: Vec<Option<Vec<Transaction>>>,
) -> Vec<SealedBatch> {
    let footprints: Vec<u8> = batches
        .iter()
        .map(|b| b.as_ref().map_or(0, |txns| batch_footprint(txns)))
        .collect();

    // Conflict components: union-find over the 8 shards, then group
    // batch indices by their footprint's component root.
    let mut parent: [usize; EXEC_SHARDS] = std::array::from_fn(|s| s);
    fn find(parent: &mut [usize; EXEC_SHARDS], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]]; // path halving
            x = parent[x];
        }
        x
    }
    let mut touched = 0u8;
    for &fp in &footprints {
        touched |= fp;
        let mut first = None;
        for s in 0..EXEC_SHARDS {
            if fp & (1 << s) == 0 {
                continue;
            }
            match first {
                None => first = Some(find(&mut parent, s)),
                Some(f) => {
                    let r = find(&mut parent, s);
                    parent[r] = f;
                }
            }
        }
    }

    // Seed the shard-root vector BEFORE shards leave the store: the
    // fold needs current roots for shards this group never touches.
    let mut roots = kv.shard_sub_roots();

    // Partition shards and batches into component jobs.
    let mut component_of_shard = [usize::MAX; EXEC_SHARDS];
    let mut components: Vec<(Vec<usize>, IndexedBatches)> = Vec::new();
    for s in 0..EXEC_SHARDS {
        if touched & (1 << s) == 0 {
            continue;
        }
        let root = find(&mut parent, s);
        if component_of_shard[root] == usize::MAX {
            component_of_shard[root] = components.len();
            components.push((Vec::new(), Vec::new()));
        }
        component_of_shard[s] = component_of_shard[root];
        components[component_of_shard[s]].0.push(s);
    }
    let mut batch_slots: Vec<Option<Vec<Transaction>>> = batches;
    for (index, fp) in footprints.iter().enumerate() {
        if *fp == 0 {
            continue;
        }
        let c = component_of_shard[fp.trailing_zeros() as usize];
        let txns = batch_slots[index].take().expect("non-empty footprint");
        components[c].1.push((index, txns));
    }

    // Move the touched shards out of the store, execute every
    // component (inline when there is nothing to overlap — a single
    // component, or no pool — pooled otherwise), and hand them back.
    let mut home = kv.take_shards();
    let mut outcomes: Vec<Option<BatchOutcome>> = (0..footprints.len()).map(|_| None).collect();
    let mut returned: Vec<Shard> = Vec::with_capacity(EXEC_SHARDS);
    let mut jobs: Vec<(Vec<Shard>, IndexedBatches)> = Vec::new();
    for (shard_ids, comp_batches) in components {
        let mut shards = Vec::with_capacity(shard_ids.len());
        for &s in &shard_ids {
            let at = home
                .iter()
                .position(|sh| sh.id() == s)
                .expect("shard present exactly once");
            shards.push(home.swap_remove(at));
        }
        jobs.push((shards, comp_batches));
    }
    returned.append(&mut home); // untouched shards go straight back
    let dones: Vec<ExecDone> = match pool {
        Some(pool) if jobs.len() > 1 => {
            let (reply_tx, reply_rx) = std::sync::mpsc::channel::<ExecDone>();
            let n_jobs = jobs.len();
            for (shards, comp_batches) in jobs {
                let lane = pool.next % pool.lanes.len();
                pool.next = pool.next.wrapping_add(1);
                let sent = pool.lanes[lane].send(ExecJob {
                    shards,
                    batches: comp_batches,
                    reply: reply_tx.clone(),
                });
                assert!(sent.is_ok(), "executor worker alive");
            }
            drop(reply_tx);
            (0..n_jobs)
                .map(|_| reply_rx.recv().expect("executor worker replied"))
                .collect()
        }
        _ => jobs
            .into_iter()
            .map(|(shards, comp_batches)| run_component(shards, comp_batches))
            .collect(),
    };
    for done in dones {
        returned.extend(done.shards);
        for o in done.outcomes {
            let index = o.index;
            outcomes[index] = Some(o);
        }
    }
    kv.restore_shards(returned);

    // Commit-order fold: absorb each batch's effect, overlay its
    // sub-root snapshots, seal its root. Empty batches seal the
    // then-current root unchanged — same as serial execution.
    let mut sealed = Vec::with_capacity(outcomes.len());
    for slot in outcomes {
        if let Some(outcome) = slot {
            kv.absorb_effect(&outcome.effect);
            for (s, r) in outcome.shard_roots {
                roots[s] = r;
            }
        }
        sealed.push(SealedBatch {
            state_digest: kv.state_digest(),
            state_root: top_state_root(&roots, &kv.transfer_meta()),
        });
    }
    if let Some(last) = sealed.last() {
        debug_assert_eq!(
            last.state_root,
            kv.state_root(),
            "commit-order fold must land on the store's own root"
        );
    }
    sealed
}

#[cfg(test)]
mod tests {
    use super::*;
    use spotless_workload::{shard_of_key, Operation};

    /// A key guaranteed to live in shard `s` (probed; bucket layout is
    /// a fixed hash).
    fn key_in_shard(s: usize, salt: u64) -> u64 {
        (0..)
            .map(|i| salt.wrapping_mul(1019) + i)
            .find(|&k| shard_of_key(k) == s)
            .unwrap()
    }

    fn write(id: u64, key: u64) -> Transaction {
        Transaction {
            id,
            op: Operation::Update {
                key,
                value: vec![id as u8; 16],
            },
        }
    }

    fn read(id: u64, key: u64) -> Transaction {
        Transaction {
            id,
            op: Operation::Read { key },
        }
    }

    /// Runs the same group serially and through `execute_group`,
    /// asserting identical per-batch digests and roots.
    fn assert_equivalent(batches: Vec<Option<Vec<Transaction>>>, pool: Option<&mut ExecutorPool>) {
        let mut serial = KvStore::new();
        let mut expect = Vec::new();
        for b in &batches {
            let state_digest = match b {
                Some(txns) => serial.execute_batch(txns),
                None => serial.state_digest(),
            };
            expect.push((state_digest, serial.state_root()));
        }
        let mut parallel = KvStore::new();
        let sealed = execute_group(pool, &mut parallel, batches);
        let got: Vec<(Digest, Digest)> = sealed
            .into_iter()
            .map(|s| (s.state_digest, s.state_root))
            .collect();
        assert_eq!(got, expect);
        assert_eq!(parallel.state_digest(), serial.state_digest());
        assert_eq!(parallel.state_root(), serial.state_root());
        assert_eq!(parallel.writes_applied(), serial.writes_applied());
        assert_eq!(parallel.reads_served(), serial.reads_served());
    }

    #[test]
    fn disjoint_batches_match_serial_inline() {
        let batches = vec![
            Some(vec![
                write(1, key_in_shard(0, 1)),
                write(2, key_in_shard(0, 2)),
            ]),
            Some(vec![
                write(3, key_in_shard(3, 3)),
                read(4, key_in_shard(3, 1)),
            ]),
            Some(vec![write(5, key_in_shard(7, 4))]),
        ];
        assert_equivalent(batches, None);
    }

    #[tokio::test(flavor = "multi_thread")]
    async fn mixed_group_matches_serial_through_the_pool() {
        let mut pool = ExecutorPool::spawn(3);
        // Conflicting (shard 2 twice), disjoint (shard 5), cross-shard
        // (2+5, merging both components), an empty payload, and a
        // read-only batch.
        let batches = vec![
            Some(vec![write(1, key_in_shard(2, 1))]),
            Some(vec![write(2, key_in_shard(5, 2))]),
            None,
            Some(vec![
                write(3, key_in_shard(2, 3)),
                write(4, key_in_shard(5, 4)),
            ]),
            Some(vec![
                read(5, key_in_shard(2, 1)),
                read(6, key_in_shard(6, 6)),
            ]),
            Some(vec![write(7, key_in_shard(1, 7))]),
        ];
        assert_equivalent(batches, Some(&mut pool));
    }

    #[tokio::test(flavor = "multi_thread")]
    async fn empty_and_all_empty_groups_are_fine() {
        let mut pool = ExecutorPool::spawn(2);
        assert_equivalent(vec![], Some(&mut pool));
        assert_equivalent(vec![None, None], Some(&mut pool));
    }
}
