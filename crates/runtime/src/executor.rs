//! Deterministic conflict-aware parallel execution of committed
//! batches.
//!
//! SpotLess's concurrent instances parallelize *ordering*, but until
//! this module every committed batch still funneled through one serial
//! `KvStore::execute_batch` call on the pipeline thread. The keyspace
//! is partitioned into [`EXEC_SHARDS`] shards over the
//! consensus-visible 1024-bucket layout; each batch's conflict
//! footprint is computed from its transactions at **bucket**
//! granularity ([`BucketFootprint`], 1024 bits), and batches whose
//! footprints do not overlap execute concurrently on a work-stealing
//! worker pool — while the sealed per-block `state_root` stays
//! byte-identical to serial execution.
//!
//! ## Determinism contract
//!
//! Execute-then-seal makes execution order consensus-critical: the
//! root a block seals is a function of the exact chain prefix below
//! it. Parallel execution preserves it by construction:
//!
//! * **Conflicts serialize.** Batches are grouped into connected
//!   components by shared *buckets* (union-find over bucket
//!   footprints). Every component's batches run in one job, serially,
//!   in commit order — so each bucket observes exactly the writes, in
//!   exactly the order, serial execution would have applied. Two
//!   batches that share a shard but no bucket land in different
//!   components: the shard is **contested**, and each component
//!   receives a detached [`ShardSlice`] owning exactly its buckets.
//! * **Disjoint components commute.** Components touch disjoint
//!   bucket sets, so their table effects are independent; running
//!   them on different workers reorders nothing observable.
//! * **Sealing is a commit-order fold.** Jobs snapshot, after each
//!   batch, the sub-roots of whole shards they own and the leaf
//!   digests of slice-owned buckets the batch touched. The caller
//!   walks the batches in commit order, absorbing each batch's
//!   [`BatchEffect`], overlaying sub-root snapshots onto the running
//!   shard-root vector and bucket digests onto the contested shards'
//!   digest vectors (rebuilding those shards' roots via
//!   [`shard_root_from_digests`]); [`top_state_root`] over the result
//!   reproduces, per block, exactly the root serial execution would
//!   have sealed. The serial-vs-parallel equivalence proptests in the
//!   facade crate pin this byte-for-byte at both granularities.
//!
//! ## Work stealing
//!
//! Jobs are distributed round-robin across per-worker queues, but a
//! worker whose queue runs dry steals a whole queued component from
//! the back of the longest other queue. A commit group dominated by
//! one giant component no longer serializes the trailing small ones
//! behind it — they migrate to idle workers. Stealing moves whole
//! components, so the per-component serial order is untouched.
//!
//! The single-component and `workers == 0` cases run *the same
//! routine* (`run_component`) inline on the caller's thread — there
//! is one execution code path, not a serial one and a parallel one
//! that could drift apart.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

use spotless_types::Digest;
use spotless_workload::{
    batch_bucket_footprint, execute_on_parts, shard_of_bucket, shard_root_from_digests,
    top_state_root, BatchEffect, BucketFootprint, KvStore, Shard, ShardSlice, Transaction,
    EXEC_SHARDS, SHARD_BUCKETS,
};

/// Conflict-detection granularity for [`execute_group_with`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Granularity {
    /// 1024-bucket footprints: batches sharing a shard but no bucket
    /// run concurrently on detached shard slices. The default.
    Bucket,
    /// Legacy 8-shard footprints: any two batches sharing a shard
    /// serialize. Kept as a comparison baseline (benches) and as the
    /// coarse half of the equivalence suite.
    Shard,
}

/// What executing one batch produced, keyed back to its commit-order
/// position by the caller.
struct BatchOutcome {
    /// Commit-order index of the batch within the submitted group.
    index: usize,
    /// Per-batch digest/counter summary to absorb in commit order.
    effect: BatchEffect,
    /// `(shard, sub-root after this batch)` for every **whole shard**
    /// this job owns that the batch touched.
    shard_roots: Vec<(usize, Digest)>,
    /// `(global bucket, leaf digest after this batch)` for every
    /// **slice-owned** bucket the batch touched — the fold overlays
    /// these onto the contested shard's digest vector and rebuilds
    /// its root.
    bucket_roots: Vec<(usize, Digest)>,
}

/// A conflict component's batches, each tagged with its commit-order
/// index within the submitted group.
type IndexedBatches = Vec<(usize, Vec<Transaction>)>;

/// A worker's reply: the whole shards and slices handed back plus one
/// outcome per batch.
struct ExecDone {
    shards: Vec<Shard>,
    slices: Vec<ShardSlice>,
    outcomes: Vec<BatchOutcome>,
}

/// Executes a conflict component: its batches serially, in commit
/// order, against the whole shards and shard slices it owns — the one
/// execution routine both the inline path and the pooled workers run.
fn run_component(
    mut shards: Vec<Shard>,
    mut slices: Vec<ShardSlice>,
    batches: IndexedBatches,
) -> ExecDone {
    let mut outcomes = Vec::with_capacity(batches.len());
    for (index, txns) in batches {
        let fine = batch_bucket_footprint(&txns);
        let effect = execute_on_parts(&mut shards, &mut slices, &txns);
        // Snapshot the touched shards'/buckets' roots NOW: within the
        // component, later batches may touch them again, and the
        // commit-order fold needs the root as of *this* batch.
        let mask = fine.shard_mask();
        let mut shard_roots = Vec::new();
        for shard in shards.iter_mut() {
            if mask & (1 << shard.id()) != 0 {
                shard_roots.push((shard.id(), shard.sub_root()));
            }
        }
        let mut bucket_roots = Vec::new();
        for g in fine.buckets() {
            if let Some(slice) = slices.iter().find(|sl| sl.owns_bucket(g)) {
                bucket_roots.push((g, slice.bucket_digest(g)));
            }
        }
        outcomes.push(BatchOutcome {
            index,
            effect,
            shard_roots,
            bucket_roots,
        });
    }
    ExecDone {
        shards,
        slices,
        outcomes,
    }
}

/// A queued unit of pool work. Closures rather than a concrete job
/// struct so the stealing mechanics are testable in isolation.
type PoolTask = Box<dyn FnOnce() + Send + 'static>;

struct PoolState {
    /// One queue per worker; jobs are submitted round-robin and
    /// stolen from the back of the longest queue.
    queues: Vec<VecDeque<PoolTask>>,
    /// Lifetime count of stolen jobs (observability / tests).
    steals: u64,
    closed: bool,
}

/// A pool of persistent execution workers (thread-backed tasks, same
/// compat/tokio style as the ingress verification pool) with
/// work-stealing between their queues. Jobs are whole conflict
/// components; replies return over a per-group synchronous channel
/// because the pipeline's flush is synchronous code on its own task.
pub struct ExecutorPool {
    shared: Arc<(Mutex<PoolState>, Condvar)>,
    /// Round-robin submission cursor.
    next: usize,
}

impl ExecutorPool {
    /// Spawns `workers` (≥ 1) persistent execution workers. Must be
    /// called inside a tokio runtime context.
    pub fn spawn(workers: usize) -> ExecutorPool {
        let workers = workers.max(1);
        let shared = Arc::new((
            Mutex::new(PoolState {
                queues: (0..workers).map(|_| VecDeque::new()).collect(),
                steals: 0,
                closed: false,
            }),
            Condvar::new(),
        ));
        for w in 0..workers {
            let shared = Arc::clone(&shared);
            tokio::spawn(async move { worker_loop(w, shared) });
        }
        ExecutorPool { shared, next: 0 }
    }

    /// Enqueues one job on the next queue (round-robin).
    fn submit(&mut self, task: PoolTask) {
        let (lock, cvar) = &*self.shared;
        let mut state = lock.lock().unwrap();
        let lane = self.next % state.queues.len();
        self.next = self.next.wrapping_add(1);
        state.queues[lane].push_back(task);
        drop(state);
        cvar.notify_all();
    }

    /// Number of jobs that have run on a worker other than the one
    /// they were queued for.
    pub fn steals(&self) -> u64 {
        self.shared.0.lock().unwrap().steals
    }
}

impl Drop for ExecutorPool {
    fn drop(&mut self) {
        let (lock, cvar) = &*self.shared;
        lock.lock().unwrap().closed = true;
        cvar.notify_all();
    }
}

fn worker_loop(w: usize, shared: Arc<(Mutex<PoolState>, Condvar)>) {
    let (lock, cvar) = &*shared;
    let mut state = lock.lock().unwrap();
    loop {
        // Own queue first, front to back (submission order).
        if let Some(task) = state.queues[w].pop_front() {
            drop(state);
            task();
            state = lock.lock().unwrap();
            continue;
        }
        // Idle: steal one whole component from the back of the
        // longest other queue.
        let victim = (0..state.queues.len())
            .filter(|&v| v != w && !state.queues[v].is_empty())
            .max_by_key(|&v| state.queues[v].len());
        if let Some(v) = victim {
            let task = state.queues[v].pop_back().expect("victim queue non-empty");
            state.steals += 1;
            drop(state);
            task();
            state = lock.lock().unwrap();
            continue;
        }
        if state.closed {
            return;
        }
        state = cvar.wait(state).unwrap();
    }
}

/// One sealed batch of an executed group, in commit order: the
/// post-batch state digest (the client-visible result) and the state
/// root the batch's block seals.
pub struct SealedBatch {
    /// Rolling state digest after this batch (what informs carry).
    pub state_digest: Digest,
    /// Two-level Merkle root after this batch (what the block seals).
    pub state_root: Digest,
}

/// [`execute_group_with`] at the default [`Granularity::Bucket`].
pub fn execute_group(
    pool: Option<&mut ExecutorPool>,
    kv: &mut KvStore,
    batches: Vec<Option<Vec<Transaction>>>,
) -> Vec<SealedBatch> {
    execute_group_with(pool, kv, batches, Granularity::Bucket)
}

/// Widens a footprint to whole shards — the legacy conflict relation.
fn expand_to_shards(fp: &BucketFootprint) -> BucketFootprint {
    let mut out = BucketFootprint::EMPTY;
    let mask = fp.shard_mask();
    for s in 0..EXEC_SHARDS {
        if mask & (1 << s) != 0 {
            for b in s * SHARD_BUCKETS..(s + 1) * SHARD_BUCKETS {
                out.insert(b);
            }
        }
    }
    out
}

/// Executes a commit-ordered group of decoded batches against `kv` —
/// in parallel across conflict components when `pool` is available —
/// and returns each batch's sealed `(state_digest, state_root)` pair
/// in commit order. `None` entries are empty (simulation-style)
/// payloads: they execute nothing and seal the unchanged root.
///
/// Byte-equivalent to calling `kv.execute_batch` + `kv.state_root`
/// per batch in order, at either granularity; see the module docs for
/// why.
pub fn execute_group_with(
    pool: Option<&mut ExecutorPool>,
    kv: &mut KvStore,
    batches: Vec<Option<Vec<Transaction>>>,
    granularity: Granularity,
) -> Vec<SealedBatch> {
    let n = batches.len();
    let footprints: Vec<BucketFootprint> = batches
        .iter()
        .map(|b| {
            let fine = b
                .as_ref()
                .map_or(BucketFootprint::EMPTY, |txns| batch_bucket_footprint(txns));
            match granularity {
                Granularity::Bucket => fine,
                Granularity::Shard => expand_to_shards(&fine),
            }
        })
        .collect();

    // Conflict components: union-find over batch indices, linked
    // through a per-bucket owner table (two batches sharing a bucket
    // merge).
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]]; // path halving
            x = parent[x];
        }
        x
    }
    let mut owner = vec![usize::MAX; spotless_workload::STATE_BUCKETS];
    for (i, fp) in footprints.iter().enumerate() {
        for b in fp.buckets() {
            if owner[b] == usize::MAX {
                owner[b] = i;
            } else {
                let r1 = find(&mut parent, owner[b]);
                let r2 = find(&mut parent, i);
                if r1 != r2 {
                    parent[r1] = r2;
                }
            }
        }
    }

    // Group batches (commit order within each component) and union
    // each component's footprint.
    let mut comp_of_root = vec![usize::MAX; n];
    let mut comp_batches: Vec<IndexedBatches> = Vec::new();
    let mut comp_footprints: Vec<BucketFootprint> = Vec::new();
    let mut batch_slots: Vec<Option<Vec<Transaction>>> = batches;
    for i in 0..n {
        if footprints[i].is_empty() {
            continue;
        }
        let r = find(&mut parent, i);
        if comp_of_root[r] == usize::MAX {
            comp_of_root[r] = comp_batches.len();
            comp_batches.push(Vec::new());
            comp_footprints.push(BucketFootprint::EMPTY);
        }
        let c = comp_of_root[r];
        comp_batches[c].push((i, batch_slots[i].take().expect("non-empty footprint")));
        comp_footprints[c].union_with(&footprints[i]);
    }
    let n_comps = comp_batches.len();

    // Classify each shard by how many components touch it: zero →
    // stays home; one → that component owns the whole shard; two or
    // more → contested, each component detaches a slice of exactly
    // its buckets.
    let mut comps_of_shard: [Vec<usize>; EXEC_SHARDS] = Default::default();
    for (c, fp) in comp_footprints.iter().enumerate() {
        let mask = fp.shard_mask();
        for (s, comps) in comps_of_shard.iter_mut().enumerate() {
            if mask & (1 << s) != 0 {
                comps.push(c);
            }
        }
    }

    // Seed the commit-order fold BEFORE shards leave the store: the
    // running shard-root vector, plus — for contested shards — the
    // full per-bucket digest vector the bucket overlays apply to.
    let mut roots = kv.shard_sub_roots();
    let mut contested_digests: Vec<Option<Vec<Digest>>> = (0..EXEC_SHARDS).map(|_| None).collect();
    for (s, comps) in comps_of_shard.iter().enumerate() {
        if comps.len() >= 2 {
            contested_digests[s] = Some(kv.shard_bucket_digests(s));
        }
    }

    let mut home: Vec<Option<Shard>> = kv.take_shards().into_iter().map(Some).collect();
    home.sort_by_key(|s| s.as_ref().map(Shard::id));
    let mut comp_shards: Vec<Vec<Shard>> = (0..n_comps).map(|_| Vec::new()).collect();
    let mut comp_slices: Vec<Vec<ShardSlice>> = (0..n_comps).map(|_| Vec::new()).collect();
    for (s, comps) in comps_of_shard.iter().enumerate() {
        match comps.as_slice() {
            [] => {}
            [c] => comp_shards[*c].push(home[s].take().expect("shard present")),
            contested => {
                // The remainder shard stays parked in `home[s]` — no
                // read or hash touches it until every slice returns.
                let shard = home[s].as_mut().expect("shard present");
                for &c in contested {
                    let buckets: Vec<usize> = comp_footprints[c]
                        .buckets()
                        .filter(|&g| shard_of_bucket(g) == s)
                        .collect();
                    comp_slices[c].push(shard.detach_slice(&buckets));
                }
            }
        }
    }
    let jobs: Vec<(Vec<Shard>, Vec<ShardSlice>, IndexedBatches)> = comp_shards
        .into_iter()
        .zip(comp_slices)
        .zip(comp_batches)
        .map(|((shards, slices), batches)| (shards, slices, batches))
        .collect();

    // Execute every component (inline when there is nothing to
    // overlap — a single component, or no pool — pooled otherwise).
    let dones: Vec<ExecDone> = match pool {
        Some(pool) if jobs.len() > 1 => {
            let (reply_tx, reply_rx) = std::sync::mpsc::channel::<ExecDone>();
            let n_jobs = jobs.len();
            for (shards, slices, batches) in jobs {
                let reply = reply_tx.clone();
                pool.submit(Box::new(move || {
                    let _ = reply.send(run_component(shards, slices, batches));
                }));
            }
            drop(reply_tx);
            (0..n_jobs)
                .map(|_| reply_rx.recv().expect("executor worker replied"))
                .collect()
        }
        _ => jobs
            .into_iter()
            .map(|(shards, slices, batches)| run_component(shards, slices, batches))
            .collect(),
    };
    let mut outcomes: Vec<Option<BatchOutcome>> = (0..n).map(|_| None).collect();
    for done in dones {
        for shard in done.shards {
            let s = shard.id();
            debug_assert!(home[s].is_none(), "whole shard returned twice");
            home[s] = Some(shard);
        }
        for slice in done.slices {
            home[slice.shard()]
                .as_mut()
                .expect("contested shard parked home")
                .attach_slice(slice);
        }
        for o in done.outcomes {
            let index = o.index;
            outcomes[index] = Some(o);
        }
    }
    kv.restore_shards(home.into_iter().map(|s| s.expect("complete")).collect());

    // Commit-order fold: absorb each batch's effect, overlay its
    // sub-root and bucket-digest snapshots, seal its root. Empty
    // batches seal the then-current root unchanged — same as serial
    // execution.
    let mut sealed = Vec::with_capacity(n);
    for slot in outcomes {
        if let Some(outcome) = slot {
            kv.absorb_effect(&outcome.effect);
            for (s, r) in outcome.shard_roots {
                roots[s] = r;
            }
            let mut rebuilt = 0u8;
            for (g, d) in outcome.bucket_roots {
                let s = shard_of_bucket(g);
                contested_digests[s]
                    .as_mut()
                    .expect("contested shard seeded")[g % SHARD_BUCKETS] = d;
                rebuilt |= 1 << s;
            }
            for (s, digests) in contested_digests.iter().enumerate() {
                if rebuilt & (1 << s) != 0 {
                    roots[s] = shard_root_from_digests(digests.as_ref().expect("seeded"));
                }
            }
        }
        sealed.push(SealedBatch {
            state_digest: kv.state_digest(),
            state_root: top_state_root(&roots, &kv.transfer_meta()),
        });
    }
    if let Some(last) = sealed.last() {
        debug_assert_eq!(
            last.state_root,
            kv.state_root(),
            "commit-order fold must land on the store's own root"
        );
    }
    sealed
}

#[cfg(test)]
mod tests {
    use super::*;
    use spotless_workload::{bucket_of, shard_of_key, Operation};

    /// A key guaranteed to live in shard `s` (probed; bucket layout is
    /// a fixed hash).
    fn key_in_shard(s: usize, salt: u64) -> u64 {
        (0..)
            .map(|i| salt.wrapping_mul(1019) + i)
            .find(|&k| shard_of_key(k) == s)
            .unwrap()
    }

    /// Two keys in the same shard but different buckets.
    fn contested_pair(s: usize) -> (u64, u64) {
        let a = key_in_shard(s, 1);
        let b = (0..)
            .map(|i| 7919u64.wrapping_mul(i))
            .find(|&k| shard_of_key(k) == s && bucket_of(k) != bucket_of(a))
            .unwrap();
        (a, b)
    }

    fn write(id: u64, key: u64) -> Transaction {
        Transaction {
            id,
            op: Operation::Update {
                key,
                value: vec![id as u8; 16],
            },
        }
    }

    fn read(id: u64, key: u64) -> Transaction {
        Transaction {
            id,
            op: Operation::Read { key },
        }
    }

    /// Runs the same group serially and through `execute_group_with`,
    /// asserting identical per-batch digests and roots.
    fn assert_equivalent_at(
        batches: Vec<Option<Vec<Transaction>>>,
        pool: Option<&mut ExecutorPool>,
        granularity: Granularity,
    ) {
        let mut serial = KvStore::new();
        let mut expect = Vec::new();
        for b in &batches {
            let state_digest = match b {
                Some(txns) => serial.execute_batch(txns),
                None => serial.state_digest(),
            };
            expect.push((state_digest, serial.state_root()));
        }
        let mut parallel = KvStore::new();
        let sealed = execute_group_with(pool, &mut parallel, batches, granularity);
        let got: Vec<(Digest, Digest)> = sealed
            .into_iter()
            .map(|s| (s.state_digest, s.state_root))
            .collect();
        assert_eq!(got, expect);
        assert_eq!(parallel.state_digest(), serial.state_digest());
        assert_eq!(parallel.state_root(), serial.state_root());
        assert_eq!(parallel.writes_applied(), serial.writes_applied());
        assert_eq!(parallel.reads_served(), serial.reads_served());
    }

    fn assert_equivalent(batches: Vec<Option<Vec<Transaction>>>, pool: Option<&mut ExecutorPool>) {
        assert_equivalent_at(batches, pool, Granularity::Bucket);
    }

    #[test]
    fn disjoint_batches_match_serial_inline() {
        let batches = vec![
            Some(vec![
                write(1, key_in_shard(0, 1)),
                write(2, key_in_shard(0, 2)),
            ]),
            Some(vec![
                write(3, key_in_shard(3, 3)),
                read(4, key_in_shard(3, 1)),
            ]),
            Some(vec![write(5, key_in_shard(7, 4))]),
        ];
        assert_equivalent(batches, None);
    }

    #[test]
    fn contested_shard_splits_into_slices_and_matches_serial() {
        // Three batches: two share shard 2 but not a bucket (bucket
        // granularity keeps them in separate components, on slices),
        // one lives in shard 5. At shard granularity the first two
        // merge instead. Both must match serial byte-for-byte.
        let (ka, kb) = contested_pair(2);
        let mk = || {
            vec![
                Some(vec![write(1, ka), read(2, ka), write(3, ka)]),
                Some(vec![write(4, kb), write(5, kb)]),
                Some(vec![write(6, key_in_shard(5, 6))]),
            ]
        };
        assert_equivalent_at(mk(), None, Granularity::Bucket);
        assert_equivalent_at(mk(), None, Granularity::Shard);
    }

    #[tokio::test(flavor = "multi_thread")]
    async fn mixed_group_matches_serial_through_the_pool() {
        let mut pool = ExecutorPool::spawn(3);
        // Conflicting (same key twice), contested (shard 2, two
        // buckets), disjoint (shard 5), cross-shard (2+5, merging
        // components), an empty payload, and a read-only batch.
        let (ka, kb) = contested_pair(2);
        let batches = vec![
            Some(vec![write(1, ka)]),
            Some(vec![write(2, kb)]),
            Some(vec![write(3, key_in_shard(5, 2))]),
            None,
            Some(vec![write(4, ka), write(5, key_in_shard(5, 4))]),
            Some(vec![read(6, ka), read(7, key_in_shard(6, 6))]),
            Some(vec![write(8, key_in_shard(1, 7))]),
        ];
        assert_equivalent(batches, Some(&mut pool));
    }

    #[tokio::test(flavor = "multi_thread")]
    async fn empty_and_all_empty_groups_are_fine() {
        let mut pool = ExecutorPool::spawn(2);
        assert_equivalent(vec![], Some(&mut pool));
        assert_equivalent(vec![None, None], Some(&mut pool));
    }

    #[tokio::test(flavor = "multi_thread")]
    async fn idle_workers_steal_queued_components() {
        // Round-robin puts tasks 0 and 2 on worker 0's queue and task
        // 1 on worker 1's. Task 0 blocks until task 2 has run — which
        // can only happen if worker 1 (idle after the trivial task 1)
        // steals task 2. No stealing → deadlock; the test completing
        // at all proves the steal, and the counter confirms it.
        let mut pool = ExecutorPool::spawn(2);
        let (unblock_tx, unblock_rx) = std::sync::mpsc::channel::<()>();
        let (done_tx, done_rx) = std::sync::mpsc::channel::<u32>();
        let d0 = done_tx.clone();
        pool.submit(Box::new(move || {
            unblock_rx.recv().unwrap();
            d0.send(0).unwrap();
        }));
        let d1 = done_tx.clone();
        pool.submit(Box::new(move || {
            d1.send(1).unwrap();
        }));
        pool.submit(Box::new(move || {
            unblock_tx.send(()).unwrap();
            done_tx.send(2).unwrap();
        }));
        let mut got: Vec<u32> = (0..3).map(|_| done_rx.recv().unwrap()).collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2]);
        assert!(pool.steals() >= 1, "completion requires at least one steal");
    }
}
