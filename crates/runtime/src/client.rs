//! The cluster-side client: submit batches, await `f + 1` matching
//! execution results (§5's weak-quorum reply rule), protocol-agnostic.

use crate::observe::Inform;
use crate::runtime::ReplicaHandle;
use parking_lot::Mutex;
use spotless_types::{BatchId, ClientBatch, ClusterConfig, Digest, ReplicaId};
use std::collections::HashMap;
use std::sync::Arc;
use tokio::sync::{mpsc, oneshot};

struct PendingCompletion {
    informs: HashMap<Digest, Vec<ReplicaId>>,
    waker: Option<oneshot::Sender<Digest>>,
}

/// Handle for submitting batches and awaiting `f + 1` matching informs.
/// Works over any fabric and any protocol: the inform stream is emitted
/// by the replicas' commit pipelines, not by protocol code.
///
/// The handle list is shared (`Arc<Mutex<…>>`) so a harness that
/// restarts a replica can swap in the fresh handle and in-flight
/// clients keep working.
pub struct ClusterClient {
    cluster: ClusterConfig,
    replicas: Arc<Mutex<Vec<ReplicaHandle>>>,
    completions: Arc<Mutex<HashMap<BatchId, PendingCompletion>>>,
}

impl ClusterClient {
    /// Builds the client over a cluster's replica handles and its
    /// inform stream, spawning the collector task. Must be called
    /// inside a tokio runtime.
    pub fn new(
        cluster: ClusterConfig,
        replicas: Arc<Mutex<Vec<ReplicaHandle>>>,
        mut informs: mpsc::UnboundedReceiver<Inform>,
    ) -> ClusterClient {
        let completions: Arc<Mutex<HashMap<BatchId, PendingCompletion>>> =
            Arc::new(Mutex::new(HashMap::new()));
        let weak_quorum = cluster.weak_quorum() as usize;
        let pending = completions.clone();
        tokio::spawn(async move {
            while let Some(inform) = informs.recv().await {
                let mut pending = pending.lock();
                if let Some(entry) = pending.get_mut(&inform.batch) {
                    let replicas = entry.informs.entry(inform.result).or_default();
                    if !replicas.contains(&inform.from) {
                        replicas.push(inform.from);
                    }
                    if replicas.len() >= weak_quorum {
                        if let Some(waker) = entry.waker.take() {
                            let _ = waker.send(inform.result);
                        }
                        pending.remove(&inform.batch);
                    }
                }
            }
        });
        ClusterClient {
            cluster,
            replicas,
            completions,
        }
    }

    /// Submits a batch to `target` and resolves once `f + 1` replicas
    /// report the same execution result.
    pub async fn submit(&self, batch: ClientBatch, target: ReplicaId) -> Digest {
        let (tx, rx) = oneshot::channel();
        self.completions.lock().insert(
            batch.id,
            PendingCompletion {
                informs: HashMap::new(),
                waker: Some(tx),
            },
        );
        let handle = self.replicas.lock()[target.as_usize()].clone();
        handle.submit(batch);
        rx.await.expect("cluster stays alive while awaited")
    }

    /// Submits to a replica chosen by the batch digest.
    pub async fn submit_anywhere(&self, batch: ClientBatch) -> Digest {
        let target = ReplicaId((batch.digest.as_u64_tag() % u64::from(self.cluster.n)) as u32);
        self.submit(batch, target).await
    }

    /// The cluster configuration this client serves.
    pub fn cluster(&self) -> &ClusterConfig {
        &self.cluster
    }
}
