//! Observation types shared by every deployment: the per-cluster commit
//! log tests assert against, and the client-bound inform records.

use parking_lot::Mutex;
use spotless_types::{BatchId, CommitInfo, Digest, ReplicaId};
use std::sync::Arc;

/// A committed, executed entry observed at a replica (exposed for
/// assertions in examples and tests).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CommittedEntry {
    /// Which replica executed it.
    pub replica: ReplicaId,
    /// The commit metadata.
    pub info: CommitInfo,
    /// KV state digest after executing the batch.
    pub state_digest: Digest,
}

/// Shared observation log for examples/tests. One log is typically
/// shared by every replica of a cluster; entries carry the replica id.
#[derive(Clone, Default)]
pub struct CommitLog {
    entries: Arc<Mutex<Vec<CommittedEntry>>>,
}

impl CommitLog {
    /// Snapshot of everything committed so far.
    pub fn snapshot(&self) -> Vec<CommittedEntry> {
        self.entries.lock().clone()
    }

    /// Number of committed entries (across all replicas).
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// True iff nothing has committed yet.
    pub fn is_empty(&self) -> bool {
        self.entries.lock().is_empty()
    }

    pub(crate) fn push(&self, entry: CommittedEntry) {
        self.entries.lock().push(entry);
    }
}

/// A replica's execution report for one batch, flowing back to the
/// client collector ([`crate::ClusterClient`] resolves a submission
/// once `f + 1` replicas report the same result).
pub struct Inform {
    /// The reporting replica.
    pub from: ReplicaId,
    /// The executed batch.
    pub batch: BatchId,
    /// KV state digest after execution.
    pub result: Digest,
}
