//! Observation types shared by every deployment: the per-cluster commit
//! log tests assert against, the client-bound inform records, and the
//! per-replica wire-traffic counters benches report.

use parking_lot::Mutex;
use spotless_types::{BatchId, CommitInfo, Digest, ReplicaId};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A committed, executed entry observed at a replica (exposed for
/// assertions in examples and tests).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CommittedEntry {
    /// Which replica executed it.
    pub replica: ReplicaId,
    /// The commit metadata.
    pub info: CommitInfo,
    /// KV state digest after executing the batch.
    pub state_digest: Digest,
}

/// Shared observation log for examples/tests. One log is typically
/// shared by every replica of a cluster; entries carry the replica id.
#[derive(Clone, Default)]
pub struct CommitLog {
    entries: Arc<Mutex<Vec<CommittedEntry>>>,
}

impl CommitLog {
    /// Snapshot of everything committed so far.
    pub fn snapshot(&self) -> Vec<CommittedEntry> {
        self.entries.lock().clone()
    }

    /// Number of committed entries (across all replicas).
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// True iff nothing has committed yet.
    pub fn is_empty(&self) -> bool {
        self.entries.lock().is_empty()
    }

    pub(crate) fn push(&self, entry: CommittedEntry) {
        self.entries.lock().push(entry);
    }
}

/// Per-replica wire-traffic counters: envelope payload bytes (the
/// serialized, signed content — framing and signature overhead
/// excluded) and message counts, split by direction. Maintained at the
/// two choke points every byte passes — the metered fabric on send,
/// the envelope ingress on receive — so no protocol or transfer path
/// can bypass them. Cheap enough to be always on (two relaxed atomic
/// adds per message); benches read them to report what the binary wire
/// codec actually puts on the wire rather than asserting it.
#[derive(Clone, Default)]
pub struct NetStats {
    inner: Arc<NetCounters>,
}

#[derive(Default)]
struct NetCounters {
    msgs_sent: AtomicU64,
    bytes_sent: AtomicU64,
    msgs_recv: AtomicU64,
    bytes_recv: AtomicU64,
    msgs_rejected: AtomicU64,
    bytes_rejected: AtomicU64,
}

impl NetStats {
    pub(crate) fn record_sent(&self, bytes: usize) {
        self.inner.msgs_sent.fetch_add(1, Ordering::Relaxed);
        self.inner
            .bytes_sent
            .fetch_add(bytes as u64, Ordering::Relaxed);
    }

    pub(crate) fn record_recv(&self, bytes: usize) {
        self.inner.msgs_recv.fetch_add(1, Ordering::Relaxed);
        self.inner
            .bytes_recv
            .fetch_add(bytes as u64, Ordering::Relaxed);
    }

    pub(crate) fn record_rejected(&self, bytes: usize) {
        self.inner.msgs_rejected.fetch_add(1, Ordering::Relaxed);
        self.inner
            .bytes_rejected
            .fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Envelopes handed to the fabric.
    pub fn msgs_sent(&self) -> u64 {
        self.inner.msgs_sent.load(Ordering::Relaxed)
    }

    /// Encoded payload bytes handed to the fabric (a broadcast counts
    /// once per destination — that is what crosses the wire, even
    /// though the bytes themselves are `Arc`-shared in memory).
    pub fn bytes_sent(&self) -> u64 {
        self.inner.bytes_sent.load(Ordering::Relaxed)
    }

    /// Envelopes received from the fabric (before signature checks).
    pub fn msgs_recv(&self) -> u64 {
        self.inner.msgs_recv.load(Ordering::Relaxed)
    }

    /// Encoded payload bytes received from the fabric.
    pub fn bytes_recv(&self) -> u64 {
        self.inner.bytes_recv.load(Ordering::Relaxed)
    }

    /// Envelopes dropped at ingress because their signature failed to
    /// verify (a `VerifyError` from the ingress verification stage —
    /// forged, corrupted, or attributed to an unknown signer). Rejected
    /// envelopes are counted in `msgs_recv` too: they were received,
    /// then refused.
    pub fn msgs_rejected(&self) -> u64 {
        self.inner.msgs_rejected.load(Ordering::Relaxed)
    }

    /// Encoded payload bytes of rejected envelopes.
    pub fn bytes_rejected(&self) -> u64 {
        self.inner.bytes_rejected.load(Ordering::Relaxed)
    }
}

/// Per-replica snapshot-delta counters: how many shard serializations
/// each durable snapshot actually performed versus reused from the
/// previous snapshot's cache. The pipeline tracks each shard's sub-root
/// across snapshots and re-chunks only shards whose root moved — on a
/// skewed workload most shards are clean most of the time, and these
/// counters are how tests and benches prove the skip actually happens
/// (`shards_reused > 0` on a skewed run; `encoded + reused` is always a
/// multiple of the shard count).
#[derive(Clone, Default)]
pub struct SnapshotStats {
    inner: Arc<SnapshotCounters>,
}

#[derive(Default)]
struct SnapshotCounters {
    snapshots: AtomicU64,
    shards_encoded: AtomicU64,
    shards_reused: AtomicU64,
}

impl SnapshotStats {
    pub(crate) fn record_snapshot(&self, encoded: u64, reused: u64) {
        self.inner.snapshots.fetch_add(1, Ordering::Relaxed);
        self.inner
            .shards_encoded
            .fetch_add(encoded, Ordering::Relaxed);
        self.inner
            .shards_reused
            .fetch_add(reused, Ordering::Relaxed);
    }

    /// Durable snapshots written.
    pub fn snapshots(&self) -> u64 {
        self.inner.snapshots.load(Ordering::Relaxed)
    }

    /// Shards serialized because their sub-root moved since the last
    /// snapshot (or no previous snapshot existed).
    pub fn shards_encoded(&self) -> u64 {
        self.inner.shards_encoded.load(Ordering::Relaxed)
    }

    /// Shards whose encoded chunks were reused unchanged from the
    /// previous snapshot (sub-root did not move).
    pub fn shards_reused(&self) -> u64 {
        self.inner.shards_reused.load(Ordering::Relaxed)
    }
}

/// A replica's execution report for one batch, flowing back to the
/// client collector ([`crate::ClusterClient`] resolves a submission
/// once `f + 1` replicas report the same result).
pub struct Inform {
    /// The reporting replica.
    pub from: ReplicaId,
    /// The executed batch.
    pub batch: BatchId,
    /// KV state digest after execution.
    pub result: Digest,
}
