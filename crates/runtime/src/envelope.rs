//! Signed wire envelopes and the runtime's tagged payload format.
//!
//! Every byte string that leaves a replica is serialized **once**,
//! signed **once**, and shared across destinations through an
//! [`Arc`] — a broadcast to `n − 1` peers clones a pointer, not a
//! proposal body. Fabrics ([`crate::Fabric`]) move [`Envelope`]s
//! verbatim; they never look inside.
//!
//! The payload is a one-byte tag followed by a body:
//!
//! * [`TAG_PROTOCOL`] — a protocol message, JSON-serialized. This is the
//!   only tag consensus traffic uses.
//! * [`TAG_CATCHUP_REQ`] / [`TAG_CATCHUP_RESP`] — the runtime-level
//!   catch-up exchange a restarted replica uses to close the gap between
//!   its durable log and the cluster's head (see [`crate::pipeline`]).
//! * [`TAG_CATCHUP_SNAP`] — the second mode of that exchange: when the
//!   responder has pruned (or never held) the requested history, it
//!   ships its whole executed state — KV snapshot bytes plus the
//!   certified ledger head — instead of blocks.
//!
//! Signatures come from the cluster [`KeyStore`] — the documented
//! simulation-grade keyed-hash scheme (see `spotless-crypto`'s
//! `signing` module for exactly what it does and does not provide).

use serde::{Deserialize, Serialize};
use spotless_crypto::{KeyStore, Signature};
use spotless_ledger::Block;
use spotless_types::bytes::take;
use spotless_types::{BatchId, Digest, ReplicaId};
use std::sync::Arc;

/// Tag byte: protocol message.
pub const TAG_PROTOCOL: u8 = 0;
/// Tag byte: catch-up request.
pub const TAG_CATCHUP_REQ: u8 = 1;
/// Tag byte: catch-up response.
pub const TAG_CATCHUP_RESP: u8 = 2;
/// Tag byte: snapshot state transfer (catch-up from pruned history).
pub const TAG_CATCHUP_SNAP: u8 = 3;

/// A signed, shareable wire frame. Cloning an envelope clones the
/// `Arc`, not the payload.
#[derive(Clone)]
pub struct Envelope {
    /// The sending replica.
    pub from: ReplicaId,
    /// Tagged payload bytes, serialized exactly once per message.
    pub payload: Arc<Vec<u8>>,
    /// Signature over `payload` by `from`.
    pub sig: Signature,
}

impl Envelope {
    /// Serializes-and-signs `payload` as an envelope from `keystore.me()`.
    pub fn seal(keystore: &KeyStore, payload: Vec<u8>) -> Envelope {
        let sig = keystore.sign(&payload);
        Envelope {
            from: keystore.me(),
            payload: Arc::new(payload),
            sig,
        }
    }

    /// Verifies the signature against the claimed sender.
    pub fn verify(&self, keystore: &KeyStore) -> bool {
        keystore.verify(self.from, &self.payload, &self.sig)
    }
}

/// One block of a catch-up response: the ledger block plus the batch
/// payload needed to re-execute it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CatchUpBlock {
    /// The hash-chained ledger block.
    pub block: Block,
    /// Serialized transactions of the batch the block commits (empty
    /// for simulation-style batches that carry no payload).
    pub payload: Vec<u8>,
}

/// A whole-state transfer: what a peer ships when the requested block
/// range is pruned from its history.
///
/// Trust model: the **chain position** is verifiable without trusting
/// the sender — the head block's hash recomputes and its commit
/// certificate passes quorum verification. The **state bytes** are
/// integrity-checked (`app_digest`, plus the envelope signature) but
/// not yet bound to the chain: blocks carry no state root, so a
/// Byzantine serving peer could pair a genuine certified head with a
/// fabricated state. Closing that gap needs per-block state roots —
/// an open ROADMAP item; until then snapshot installation trusts the
/// serving peer for the state contents, exactly as block replay
/// already trusts it for payload *availability*.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SnapshotTransfer {
    /// Ledger height the snapshot covers (number of executed blocks).
    pub height: u64,
    /// The block at `height − 1`, carrying the head's commit
    /// certificate.
    pub head: Block,
    /// Ids of the most recently committed batches the snapshot covers
    /// (bounded window; seeds the receiver's re-commit dedup filter so
    /// a rejoining protocol instance cannot re-execute them).
    pub recent_ids: Vec<BatchId>,
    /// Digest of `app_state` (structural integrity cross-check; the
    /// envelope signature authenticates the whole frame).
    pub app_digest: Digest,
    /// Serialized application state (the KV snapshot bytes).
    pub app_state: Vec<u8>,
    /// The responder's ledger height when it served the request (the
    /// requester keeps pulling blocks above the snapshot from here).
    pub peer_height: u64,
}

/// Everything a replica can receive inside an [`Envelope`].
pub enum WireMsg<M> {
    /// A consensus protocol message.
    Protocol(M),
    /// "Send me your executed blocks from `from_height` up."
    CatchUpReq {
        /// First height the requester is missing (execution-wise).
        from_height: u64,
    },
    /// A slice of the responder's executed chain.
    CatchUpResp {
        /// The responder's ledger height when it served the request.
        peer_height: u64,
        /// Contiguous blocks starting at the requested height (empty if
        /// the responder cannot serve that range).
        blocks: Vec<CatchUpBlock>,
    },
    /// The responder pruned the requested range: its full executed
    /// state instead (boxed: the variant dwarfs the others).
    Snapshot(Box<SnapshotTransfer>),
}

/// Encodes a protocol message payload.
pub fn encode_protocol<M: Serialize>(msg: &M) -> Vec<u8> {
    let body = serde_json::to_vec(msg).expect("protocol messages are serializable");
    let mut out = Vec::with_capacity(1 + body.len());
    out.push(TAG_PROTOCOL);
    out.extend_from_slice(&body);
    out
}

/// Encodes a catch-up request payload.
pub fn encode_catchup_req(from_height: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(9);
    out.push(TAG_CATCHUP_REQ);
    out.extend_from_slice(&from_height.to_le_bytes());
    out
}

/// Encodes a catch-up response payload.
pub fn encode_catchup_resp(peer_height: u64, blocks: &[CatchUpBlock]) -> Vec<u8> {
    let mut out = Vec::with_capacity(13 + blocks.len() * 160);
    out.push(TAG_CATCHUP_RESP);
    out.extend_from_slice(&peer_height.to_le_bytes());
    out.extend_from_slice(&(blocks.len() as u32).to_le_bytes());
    for cb in blocks {
        let block_json = serde_json::to_vec(&cb.block).expect("blocks are serializable");
        out.extend_from_slice(&(block_json.len() as u32).to_le_bytes());
        out.extend_from_slice(&block_json);
        out.extend_from_slice(&(cb.payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&cb.payload);
    }
    out
}

/// Encodes a snapshot state-transfer payload.
pub fn encode_catchup_snap(snap: &SnapshotTransfer) -> Vec<u8> {
    let head_json = serde_json::to_vec(&snap.head).expect("blocks are serializable");
    let mut out = Vec::with_capacity(61 + head_json.len() + snap.app_state.len());
    out.push(TAG_CATCHUP_SNAP);
    out.extend_from_slice(&snap.height.to_le_bytes());
    out.extend_from_slice(&snap.peer_height.to_le_bytes());
    out.extend_from_slice(&(head_json.len() as u32).to_le_bytes());
    out.extend_from_slice(&head_json);
    out.extend_from_slice(&(snap.recent_ids.len() as u32).to_le_bytes());
    for id in &snap.recent_ids {
        out.extend_from_slice(&id.0.to_le_bytes());
    }
    out.extend_from_slice(&snap.app_digest.0);
    out.extend_from_slice(&(snap.app_state.len() as u32).to_le_bytes());
    out.extend_from_slice(&snap.app_state);
    out
}

/// Decodes a tagged payload. `None` on any structural defect — the
/// caller drops malformed traffic (the sender is faulty or the bytes
/// are corrupt; either way there is nothing to do with them).
pub fn decode<M: Deserialize>(payload: &[u8]) -> Option<WireMsg<M>> {
    let (&tag, body) = payload.split_first()?;
    match tag {
        TAG_PROTOCOL => serde_json::from_slice(body).ok().map(WireMsg::Protocol),
        TAG_CATCHUP_REQ => {
            if body.len() != 8 {
                return None;
            }
            Some(WireMsg::CatchUpReq {
                from_height: u64::from_le_bytes(body.try_into().ok()?),
            })
        }
        TAG_CATCHUP_RESP => {
            let mut rest = body;
            let peer_height = u64::from_le_bytes(take(&mut rest, 8)?.try_into().ok()?);
            let count = u32::from_le_bytes(take(&mut rest, 4)?.try_into().ok()?);
            let mut blocks = Vec::with_capacity(count.min(4096) as usize);
            for _ in 0..count {
                let block_len = u32::from_le_bytes(take(&mut rest, 4)?.try_into().ok()?) as usize;
                let block = serde_json::from_slice(take(&mut rest, block_len)?).ok()?;
                let payload_len = u32::from_le_bytes(take(&mut rest, 4)?.try_into().ok()?) as usize;
                let payload = take(&mut rest, payload_len)?.to_vec();
                blocks.push(CatchUpBlock { block, payload });
            }
            if !rest.is_empty() {
                return None;
            }
            Some(WireMsg::CatchUpResp {
                peer_height,
                blocks,
            })
        }
        TAG_CATCHUP_SNAP => {
            let mut rest = body;
            let height = u64::from_le_bytes(take(&mut rest, 8)?.try_into().ok()?);
            let peer_height = u64::from_le_bytes(take(&mut rest, 8)?.try_into().ok()?);
            let head_len = u32::from_le_bytes(take(&mut rest, 4)?.try_into().ok()?) as usize;
            let head = serde_json::from_slice(take(&mut rest, head_len)?).ok()?;
            let ids_len = u32::from_le_bytes(take(&mut rest, 4)?.try_into().ok()?) as usize;
            let mut recent_ids = Vec::with_capacity(ids_len.min(1 << 16));
            for _ in 0..ids_len {
                recent_ids.push(BatchId(u64::from_le_bytes(
                    take(&mut rest, 8)?.try_into().ok()?,
                )));
            }
            let mut app_digest = Digest::ZERO;
            app_digest.0.copy_from_slice(take(&mut rest, 32)?);
            let state_len = u32::from_le_bytes(take(&mut rest, 4)?.try_into().ok()?) as usize;
            let app_state = take(&mut rest, state_len)?.to_vec();
            if !rest.is_empty() {
                return None;
            }
            Some(WireMsg::Snapshot(Box::new(SnapshotTransfer {
                height,
                head,
                recent_ids,
                app_digest,
                app_state,
                peer_height,
            })))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spotless_ledger::CommitProof;
    use spotless_types::{BatchId, Digest, InstanceId, View};

    fn sample_block(height: u64) -> Block {
        let mut ledger = spotless_ledger::Ledger::new();
        for i in 0..=height {
            ledger.append(
                BatchId(i),
                Digest::from_u64(i),
                10,
                CommitProof {
                    instance: InstanceId(0),
                    view: View(i),
                    phase: spotless_types::CertPhase::Strong,
                    signers: vec![ReplicaId(0), ReplicaId(1), ReplicaId(2)],
                },
            );
        }
        ledger.block(height).unwrap().clone()
    }

    #[test]
    fn seal_verify_roundtrip_and_tamper_rejection() {
        let stores = KeyStore::cluster(b"envelope-test", 4);
        let env = Envelope::seal(&stores[2], encode_catchup_req(7));
        assert_eq!(env.from, ReplicaId(2));
        assert!(env.verify(&stores[0]));
        let mut forged = env.clone();
        forged.from = ReplicaId(1);
        assert!(!forged.verify(&stores[0]));
    }

    #[test]
    fn catchup_req_roundtrips() {
        let enc = encode_catchup_req(42);
        match decode::<u64>(&enc) {
            Some(WireMsg::CatchUpReq { from_height: 42 }) => {}
            _ => panic!("wrong decode"),
        }
    }

    #[test]
    fn catchup_resp_roundtrips() {
        let blocks = vec![
            CatchUpBlock {
                block: sample_block(0),
                payload: b"txns-0".to_vec(),
            },
            CatchUpBlock {
                block: sample_block(1),
                payload: Vec::new(),
            },
        ];
        let enc = encode_catchup_resp(9, &blocks);
        match decode::<u64>(&enc) {
            Some(WireMsg::CatchUpResp {
                peer_height,
                blocks: got,
            }) => {
                assert_eq!(peer_height, 9);
                assert_eq!(got, blocks);
            }
            _ => panic!("wrong decode"),
        }
    }

    #[test]
    fn catchup_snapshot_roundtrips() {
        let head = sample_block(4);
        let app_state = b"kv-snapshot-bytes".to_vec();
        let snap = SnapshotTransfer {
            height: 5,
            head,
            recent_ids: vec![BatchId(2), BatchId(3), BatchId(4)],
            app_digest: spotless_crypto::digest_bytes(&app_state),
            app_state,
            peer_height: 9,
        };
        let enc = encode_catchup_snap(&snap);
        match decode::<u64>(&enc) {
            Some(WireMsg::Snapshot(got)) => assert_eq!(*got, snap),
            _ => panic!("wrong decode"),
        }
        // Truncation fails closed.
        assert!(decode::<u64>(&enc[..enc.len() - 1]).is_none());
    }

    #[test]
    fn malformed_payloads_decode_to_none() {
        assert!(decode::<u64>(&[]).is_none());
        assert!(decode::<u64>(&[9, 1, 2]).is_none(), "unknown tag");
        assert!(
            decode::<u64>(&[TAG_CATCHUP_REQ, 1, 2]).is_none(),
            "short body"
        );
        let mut resp = encode_catchup_resp(3, &[]);
        resp.push(0);
        assert!(decode::<u64>(&resp).is_none(), "trailing bytes");
    }
}
