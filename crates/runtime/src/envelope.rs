//! Signed wire envelopes and the runtime's tagged payload format.
//!
//! Every byte string that leaves a replica is serialized **once**,
//! signed **once**, and shared across destinations through an
//! [`Arc`] — a broadcast to `n − 1` peers clones a pointer, not a
//! proposal body. Fabrics ([`crate::Fabric`]) move [`Envelope`]s
//! verbatim; they never look inside.
//!
//! ## Payload layout (wire format v2, binary)
//!
//! ```text
//! payload := WIRE_VERSION (1 byte, 0xB2) ‖ tag (1 byte) ‖ body
//! ```
//!
//! Bodies are encoded with the streaming binary codec (`serde::bin`):
//! varint integers, raw byte slices, structs streamed field-by-field —
//! no intermediate value tree, no text, no hex expansion. The sealed
//! payload **is** the canonical signed-bytes form: the codec's
//! canonical varints make the encoding of a message injective, so two
//! replicas serializing the same message sign the same bytes.
//!
//! The leading [`WIRE_VERSION`] byte is the fail-closed switch for
//! mixed-format clusters: a v1 (JSON-era) replica reads `0xB2` as an
//! unknown tag and drops the frame; a v2 replica requires `0xB2` first
//! and drops anything else — deliberately outside the tag range, so no
//! payload of either generation can be misparsed as the other. Bump it
//! on any layout change. JSON remains in the tree where a human reads
//! the output — `serde_json` debug dumps, bench observability tables —
//! never on this path.
//!
//! The tag selects the body type:
//!
//! * [`TAG_PROTOCOL`] — a protocol message (derived binary encoding).
//!   This is the only tag consensus traffic uses.
//! * [`TAG_CATCHUP_REQ`] / [`TAG_CATCHUP_RESP`] — the runtime-level
//!   catch-up exchange a restarted replica uses to close the gap between
//!   its durable log and the cluster's head (see `crate::pipeline`).
//! * [`TAG_CATCHUP_MANIFEST`] / [`TAG_CATCHUP_CHUNK_REQ`] /
//!   [`TAG_CATCHUP_CHUNK`] — the chunked snapshot state transfer: when
//!   the responder has pruned (or never held) the requested history, it
//!   answers with a **manifest** (certified head block, application
//!   meta, chunk digest list); the requester then fetches chunks by
//!   index, each carrying per-bucket Merkle inclusion proofs against
//!   the head block's `state_root`, in any order, re-requesting on
//!   timeout. No frame ever needs to carry the whole state — the frame
//!   limit bounds a single *bucket*, not the store (see the scale note
//!   on `KvStore::to_chunks`), lifting the previous whole-state-per-
//!   frame ceiling by three orders of magnitude.
//!
//! Decoding is fail-closed throughout: wrong version, unknown tag,
//! truncation, trailing bytes, non-canonical varints, proof chains
//! longer than [`spotless_crypto::MAX_PROOF_DEPTH`], and list lengths
//! no legal frame could hold are all `None` — the caller drops the
//! frame. The exact byte layout is pinned by golden-vector tests below
//! and in the facade suite (`tests/wire_format.rs`).
//!
//! Signatures come from the cluster [`KeyStore`] — real Ed25519 (RFC
//! 8032) over the payload bytes, with typed rejection: [`verify`]
//! returns the [`spotless_crypto::VerifyError`] naming *why* a frame
//! failed (unknown signer, malformed point, bad signature, …) so
//! transports can log attributable drops instead of a bare `false`.
//!
//! [`verify`]: Envelope::verify

use serde::bin::{self, Reader};
use serde::{Deserialize, Serialize};
use spotless_crypto::{KeyStore, ProofStep, Signature, MAX_PROOF_DEPTH};
use spotless_ledger::Block;
use spotless_types::{BatchId, Digest, ReplicaId};
use std::sync::Arc;

/// Leading byte of every payload: binary codec, wire revision 4 (the
/// state tree became two-level — sharded sub-roots under a top tree —
/// so chunk transfers carry a shard-level proof per bucket plus one
/// shared top proof, and chunk descriptors gained fragment fields for
/// splitting oversized buckets across frames). Chosen outside the tag
/// range so v1 payloads (which started with their tag byte) and later
/// payloads can never be confused — either side drops the other's
/// frames unread. Bump on any layout change; mixed-version clusters
/// then fail closed instead of misinterpreting each other.
pub const WIRE_VERSION: u8 = 0xB4;

// The fail-closed argument above requires the version byte to be
// unmistakable for any tag of the previous (tag-first) generation.
const _: () = assert!(WIRE_VERSION > TAG_CATCHUP_CHUNK);

/// Tag byte: protocol message.
pub const TAG_PROTOCOL: u8 = 0;
/// Tag byte: catch-up request.
pub const TAG_CATCHUP_REQ: u8 = 1;
/// Tag byte: catch-up response.
pub const TAG_CATCHUP_RESP: u8 = 2;
/// Tag byte: chunked state-transfer manifest (catch-up from pruned
/// history).
pub const TAG_CATCHUP_MANIFEST: u8 = 3;
/// Tag byte: ranged chunk fetch request.
pub const TAG_CATCHUP_CHUNK_REQ: u8 = 4;
/// Tag byte: one state chunk with its inclusion proofs.
pub const TAG_CATCHUP_CHUNK: u8 = 5;

/// Free inbound frame buffers retained per connection (bounds the
/// memory an idle pool pins; beyond this, returned buffers are freed).
const BUFFER_POOL_MAX: usize = 32;

/// A recycling pool for inbound frame buffers. A transport takes a
/// buffer per frame, reads the frame into it, and hands it to
/// [`Payload::pooled`]; when the last [`Payload`] viewing the buffer
/// drops — after verification, decode, and any pipeline hand-off — the
/// buffer returns here instead of being freed. Steady-state ingress
/// then allocates nothing per frame *and* copies nothing: the payload
/// is a refcounted view into the receive buffer itself.
#[derive(Clone, Debug, Default)]
pub struct BufferPool {
    free: Arc<std::sync::Mutex<Vec<Vec<u8>>>>,
}

impl BufferPool {
    /// A free buffer (capacity from an earlier frame), or a fresh one.
    pub fn take(&self) -> Vec<u8> {
        match self.free.lock() {
            Ok(mut free) => free.pop().unwrap_or_default(),
            Err(_) => Vec::new(),
        }
    }

    /// Returns a buffer to the pool (cleared; dropped if the pool is
    /// full). Called automatically when the last pooled [`Payload`]
    /// view drops; callers use it directly only on error paths where a
    /// taken buffer never became a payload.
    pub fn put(&self, mut buf: Vec<u8>) {
        buf.clear();
        if let Ok(mut free) = self.free.lock() {
            if free.len() < BUFFER_POOL_MAX {
                free.push(buf);
            }
        }
    }
}

/// The backing storage of a [`Payload`]: the raw buffer plus the pool
/// it returns to (if any) when the last view drops.
#[derive(Debug)]
struct PayloadBuf {
    bytes: Vec<u8>,
    pool: Option<BufferPool>,
}

impl Drop for PayloadBuf {
    fn drop(&mut self) {
        if let Some(pool) = &self.pool {
            pool.put(std::mem::take(&mut self.bytes));
        }
    }
}

/// Refcounted view of a payload's bytes — a range of a shared buffer.
/// Cloning clones the `Arc`, never the bytes, so one received frame can
/// flow through signature verification, tag routing, and the pipeline
/// without a single copy. Dereferences to the payload byte slice.
#[derive(Clone, Debug)]
pub struct Payload {
    buf: Arc<PayloadBuf>,
    start: usize,
    end: usize,
}

impl Payload {
    /// A payload owning exactly `bytes` (no pool; frees on last drop).
    pub fn new(bytes: Vec<u8>) -> Payload {
        let end = bytes.len();
        Payload {
            buf: Arc::new(PayloadBuf { bytes, pool: None }),
            start: 0,
            end,
        }
    }

    /// A payload viewing `buf[start..end]` — typically the payload
    /// field of a frame read into `buf` — that recycles `buf` into
    /// `pool` when the last clone drops.
    ///
    /// # Panics
    /// If `start..end` is not a valid range of `buf`.
    pub fn pooled(buf: Vec<u8>, pool: &BufferPool, start: usize, end: usize) -> Payload {
        assert!(
            start <= end && end <= buf.len(),
            "payload range out of buffer"
        );
        Payload {
            buf: Arc::new(PayloadBuf {
                bytes: buf,
                pool: Some(pool.clone()),
            }),
            start,
            end,
        }
    }

    /// The payload bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf.bytes[self.start..self.end]
    }
}

impl std::ops::Deref for Payload {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Payload {
    fn eq(&self, other: &Payload) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Payload {}

/// A signed, shareable wire frame. Cloning an envelope clones the
/// payload's `Arc`, not its bytes.
#[derive(Clone, Debug)]
pub struct Envelope {
    /// The sending replica.
    pub from: ReplicaId,
    /// Tagged payload bytes, serialized exactly once per message.
    pub payload: Payload,
    /// Signature over `payload` by `from`.
    pub sig: Signature,
}

impl Envelope {
    /// Serializes-and-signs `payload` as an envelope from `keystore.me()`.
    pub fn seal(keystore: &KeyStore, payload: Vec<u8>) -> Envelope {
        let sig = keystore.sign(&payload);
        Envelope {
            from: keystore.me(),
            payload: Payload::new(payload),
            sig,
        }
    }

    /// Signs an already-wrapped [`Payload`] — the zero-copy seal used
    /// by the egress stage: the payload bytes (typically a pooled
    /// buffer the event loop encoded into) are signed and moved into
    /// the envelope without copying.
    pub fn seal_payload(keystore: &KeyStore, payload: Payload) -> Envelope {
        let sig = keystore.sign(&payload);
        Envelope {
            from: keystore.me(),
            payload,
            sig,
        }
    }

    /// Verifies the signature against the claimed sender, reporting
    /// *why* verification failed so the transport can attribute the
    /// drop (unknown signer vs. forged signature vs. malformed frame).
    pub fn verify(&self, keystore: &KeyStore) -> Result<(), spotless_crypto::VerifyError> {
        keystore.verify(self.from, &self.payload, &self.sig)
    }
}

/// One block of a catch-up response: the ledger block plus the batch
/// payload needed to re-execute it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CatchUpBlock {
    /// The hash-chained ledger block.
    pub block: Block,
    /// Serialized transactions of the batch the block commits (empty
    /// for simulation-style batches that carry no payload).
    pub payload: Vec<u8>,
}

/// Descriptor of one chunk in a [`TransferManifest`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChunkInfo {
    /// First bucket index the chunk covers.
    pub first_bucket: u32,
    /// Number of consecutive buckets in the chunk.
    pub buckets: u32,
    /// Fragment index within an oversized bucket's series (0 for whole
    /// chunks). A bucket too large for one frame is split into
    /// `parts` consecutive fragments of the same single bucket.
    pub part: u32,
    /// Total fragments in the series (1 for whole chunks).
    pub parts: u32,
    /// Content address: digest of the chunk's canonical encoding. Lets
    /// the receiver journal chunks by name and detect substitution.
    pub digest: Digest,
}

/// The manifest opening a chunked snapshot state transfer.
///
/// Trust model: everything here is checked against the **head block**
/// before a single chunk is fetched — the block's hash recomputes, its
/// commit certificate passes quorum verification, and `app_meta` (the
/// store's rolling digest and counters) carries a Merkle inclusion
/// proof against the block's `state_root`. Each chunk then proves its
/// buckets against the same root on arrival, so a serving peer cannot
/// pair a given certified head with state that differs from what that
/// head sealed: the first mismatching byte fails its proof and the
/// transfer rotates to another peer.
///
/// The head block's authenticity rests on its commit certificate, and
/// certificates carry one Ed25519 signature per signer over the vote
/// statement `(instance, view, slot, voted)`; the receiver re-verifies
/// every one against the cluster's public keys before trusting the
/// head. Fabricating a head-plus-state pair therefore requires forging
/// a weak quorum of Ed25519 signatures: state roots bind *state to
/// chain*, and the certificate's signatures bind *chain to cluster*.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TransferManifest {
    /// Ledger height the snapshot covers (number of executed blocks).
    pub height: u64,
    /// The responder's ledger height when it served the request (the
    /// requester keeps pulling blocks above the snapshot from here).
    pub peer_height: u64,
    /// The block at `height − 1`, carrying the head's commit
    /// certificate and the `state_root` every chunk verifies against.
    pub head: Block,
    /// Ids of the most recently committed batches the snapshot covers
    /// (bounded window; seeds the receiver's re-commit dedup filter so
    /// a rejoining protocol instance cannot re-execute them).
    pub recent_ids: Vec<BatchId>,
    /// The application meta bytes (KV meta-leaf encoding).
    pub app_meta: Vec<u8>,
    /// Inclusion proof of `app_meta` at the meta leaf of the state tree.
    pub meta_proof: Vec<ProofStep>,
    /// The chunk plan, in order. Ranges must partition the bucket space.
    pub chunks: Vec<ChunkInfo>,
}

/// One chunk answering a [`TAG_CATCHUP_CHUNK_REQ`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChunkTransfer {
    /// The transfer's target height (matches the manifest).
    pub height: u64,
    /// Index into the manifest's chunk list.
    pub index: u32,
    /// The chunk's canonical encoding (`StateChunk::encode`).
    pub chunk: Vec<u8>,
    /// Per-bucket inclusion proofs into the owning *shard's* sub-tree,
    /// in bucket order within the chunk. Empty for fragment chunks
    /// (fragments are content-digest addressed; the assembled bucket is
    /// audited against the root at install).
    pub proofs: Vec<Vec<ProofStep>>,
    /// Inclusion proof of the owning shard's sub-root in the top tree
    /// (one per chunk — a chunk never crosses a shard boundary).
    pub top_proof: Vec<ProofStep>,
}

/// Everything a replica can receive inside an [`Envelope`].
pub enum WireMsg<M> {
    /// A consensus protocol message.
    Protocol(M),
    /// "Send me your executed blocks from `from_height` up."
    CatchUpReq {
        /// First height the requester is missing (execution-wise).
        from_height: u64,
    },
    /// A slice of the responder's executed chain.
    CatchUpResp {
        /// The responder's ledger height when it served the request.
        peer_height: u64,
        /// Contiguous blocks starting at the requested height (empty if
        /// the responder cannot serve that range).
        blocks: Vec<CatchUpBlock>,
    },
    /// The responder pruned the requested range: a chunked state
    /// transfer begins with its manifest (boxed: the variant dwarfs the
    /// others).
    Manifest(Box<TransferManifest>),
    /// "Send me chunk `index` of the transfer at `height`."
    ChunkReq {
        /// The transfer's target height.
        height: u64,
        /// Index into the manifest's chunk list.
        index: u32,
    },
    /// One verified-fetchable state chunk.
    Chunk(Box<ChunkTransfer>),
}

/// Borrowed view of a [`CatchUpBlock`]: the block header decodes owned
/// (small, structural), the batch payload stays a slice of the receive
/// buffer.
#[derive(Debug, PartialEq, Eq)]
pub struct CatchUpBlockRef<'a> {
    /// The hash-chained ledger block.
    pub block: Block,
    /// Serialized transactions, borrowed from the payload buffer.
    pub payload: &'a [u8],
}

impl CatchUpBlockRef<'_> {
    /// Copies the borrowed payload into an owned [`CatchUpBlock`] —
    /// the storage boundary.
    pub fn to_owned(&self) -> CatchUpBlock {
        CatchUpBlock {
            block: self.block.clone(),
            payload: self.payload.to_vec(),
        }
    }
}

/// Borrowed view of a [`TransferManifest`]: `app_meta` stays a slice of
/// the receive buffer.
#[derive(Debug, PartialEq, Eq)]
pub struct TransferManifestRef<'a> {
    /// Ledger height the snapshot covers.
    pub height: u64,
    /// The responder's ledger height when it served the request.
    pub peer_height: u64,
    /// The certified head block (see [`TransferManifest::head`]).
    pub head: Block,
    /// Recently committed batch ids covered by the snapshot.
    pub recent_ids: Vec<BatchId>,
    /// Application meta bytes, borrowed from the payload buffer.
    pub app_meta: &'a [u8],
    /// Inclusion proof of `app_meta` at the state tree's meta leaf.
    pub meta_proof: Vec<ProofStep>,
    /// The chunk plan, in order.
    pub chunks: Vec<ChunkInfo>,
}

impl TransferManifestRef<'_> {
    /// Copies the borrowed meta bytes into an owned
    /// [`TransferManifest`] — done once, when a transfer is accepted
    /// and the manifest must outlive the envelope that carried it.
    pub fn to_owned(&self) -> TransferManifest {
        TransferManifest {
            height: self.height,
            peer_height: self.peer_height,
            head: self.head.clone(),
            recent_ids: self.recent_ids.clone(),
            app_meta: self.app_meta.to_vec(),
            meta_proof: self.meta_proof.clone(),
            chunks: self.chunks.clone(),
        }
    }
}

/// Borrowed view of a [`ChunkTransfer`]: the chunk bytes — the bulk of
/// the frame — stay a slice of the receive buffer.
#[derive(Debug, PartialEq, Eq)]
pub struct ChunkTransferRef<'a> {
    /// The transfer's target height.
    pub height: u64,
    /// Index into the manifest's chunk list.
    pub index: u32,
    /// The chunk's canonical encoding, borrowed from the payload buffer.
    pub chunk: &'a [u8],
    /// Per-bucket shard-level inclusion proofs, in bucket order within
    /// the chunk (empty for fragments).
    pub proofs: Vec<Vec<ProofStep>>,
    /// Top-tree inclusion proof of the owning shard's sub-root.
    pub top_proof: Vec<ProofStep>,
}

impl ChunkTransferRef<'_> {
    /// Copies the borrowed chunk bytes into an owned [`ChunkTransfer`].
    pub fn to_owned(&self) -> ChunkTransfer {
        ChunkTransfer {
            height: self.height,
            index: self.index,
            chunk: self.chunk.to_vec(),
            proofs: self.proofs.clone(),
            top_proof: self.top_proof.clone(),
        }
    }
}

/// Borrowed counterpart of [`WireMsg`], produced by [`decode_ref`]:
/// bulk byte fields are slices of the payload buffer, and a protocol
/// body is returned **undecoded** (the raw bytes after the tag) so the
/// caller chooses when — and with which message type — to parse it.
/// Not generic over `M` for exactly that reason: the transfer variants
/// never mention the protocol type, so the pipeline can decode them
/// without knowing it.
#[derive(Debug, PartialEq, Eq)]
pub enum WireMsgRef<'a> {
    /// A consensus protocol message, still encoded: the body bytes to
    /// hand to [`decode_protocol_body`].
    Protocol(&'a [u8]),
    /// "Send me your executed blocks from `from_height` up."
    CatchUpReq {
        /// First height the requester is missing.
        from_height: u64,
    },
    /// A slice of the responder's executed chain.
    CatchUpResp {
        /// The responder's ledger height when it served the request.
        peer_height: u64,
        /// Contiguous blocks, payloads borrowed.
        blocks: Vec<CatchUpBlockRef<'a>>,
    },
    /// A chunked state transfer's manifest, meta bytes borrowed.
    Manifest(Box<TransferManifestRef<'a>>),
    /// "Send me chunk `index` of the transfer at `height`."
    ChunkReq {
        /// The transfer's target height.
        height: u64,
        /// Index into the manifest's chunk list.
        index: u32,
    },
    /// One state chunk, chunk bytes borrowed.
    Chunk(Box<ChunkTransferRef<'a>>),
}

impl WireMsgRef<'_> {
    /// Converts to the owning [`WireMsg`], decoding a protocol body
    /// with `M`. `None` only if a `Protocol` body fails to parse —
    /// every other variant converts infallibly. Exists for equivalence
    /// testing against [`decode`]; hot paths convert piecewise at
    /// their storage boundaries instead.
    pub fn to_owned_msg<M: Deserialize>(&self) -> Option<WireMsg<M>> {
        Some(match self {
            WireMsgRef::Protocol(body) => WireMsg::Protocol(decode_protocol_body(body)?),
            WireMsgRef::CatchUpReq { from_height } => WireMsg::CatchUpReq {
                from_height: *from_height,
            },
            WireMsgRef::CatchUpResp {
                peer_height,
                blocks,
            } => WireMsg::CatchUpResp {
                peer_height: *peer_height,
                blocks: blocks.iter().map(CatchUpBlockRef::to_owned).collect(),
            },
            WireMsgRef::Manifest(m) => WireMsg::Manifest(Box::new((**m).to_owned())),
            WireMsgRef::ChunkReq { height, index } => WireMsg::ChunkReq {
                height: *height,
                index: *index,
            },
            WireMsgRef::Chunk(c) => WireMsg::Chunk(Box::new((**c).to_owned())),
        })
    }
}

/// Starts a payload buffer: version byte, tag byte, `cap` bytes of
/// headroom for the body.
fn payload_buf(tag: u8, cap: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(2 + cap);
    out.push(WIRE_VERSION);
    out.push(tag);
    out
}

/// Encodes a protocol message payload.
pub fn encode_protocol<M: Serialize>(msg: &M) -> Vec<u8> {
    let mut out = payload_buf(TAG_PROTOCOL, 254);
    msg.ser_bin(&mut out);
    out
}

/// Like [`encode_protocol`], but reusing `buf`'s allocation (cleared
/// first). The egress stage encodes into [`BufferPool`] buffers so
/// steady-state sends allocate nothing per message.
pub fn encode_protocol_into<M: Serialize>(msg: &M, mut buf: Vec<u8>) -> Vec<u8> {
    buf.clear();
    buf.push(WIRE_VERSION);
    buf.push(TAG_PROTOCOL);
    msg.ser_bin(&mut buf);
    buf
}

/// Encodes a catch-up request payload.
pub fn encode_catchup_req(from_height: u64) -> Vec<u8> {
    let mut out = payload_buf(TAG_CATCHUP_REQ, 10);
    bin::write_varint(from_height, &mut out);
    out
}

/// Encodes a catch-up response payload.
pub fn encode_catchup_resp(peer_height: u64, blocks: &[CatchUpBlock]) -> Vec<u8> {
    let payload_bytes: usize = blocks.iter().map(|b| b.payload.len()).sum();
    let mut out = payload_buf(TAG_CATCHUP_RESP, 16 + blocks.len() * 160 + payload_bytes);
    bin::write_varint(peer_height, &mut out);
    bin::write_len(blocks.len(), &mut out);
    for cb in blocks {
        cb.block.ser_bin(&mut out);
        cb.payload.ser_bin(&mut out);
    }
    out
}

fn encode_proof(out: &mut Vec<u8>, proof: &[ProofStep]) {
    bin::write_len(proof.len(), out);
    for step in proof {
        out.extend_from_slice(&step.sibling.0);
        out.push(u8::from(step.sibling_on_right));
    }
}

fn decode_proof(r: &mut Reader<'_>) -> Option<Vec<ProofStep>> {
    let len = r.len().ok()?;
    if len > MAX_PROOF_DEPTH {
        return None; // no legal tree is that deep (shared bound with the prover)
    }
    let mut proof = Vec::with_capacity(len);
    for _ in 0..len {
        let mut sibling = Digest::ZERO;
        sibling.0.copy_from_slice(r.take(32).ok()?);
        let dir = match r.byte().ok()? {
            0 => false,
            1 => true,
            _ => return None,
        };
        proof.push(ProofStep {
            sibling,
            sibling_on_right: dir,
        });
    }
    Some(proof)
}

/// Encodes a state-transfer manifest payload.
pub fn encode_catchup_manifest(m: &TransferManifest) -> Vec<u8> {
    let mut out = payload_buf(
        TAG_CATCHUP_MANIFEST,
        256 + m.app_meta.len() + m.recent_ids.len() * 9 + m.chunks.len() * 40,
    );
    bin::write_varint(m.height, &mut out);
    bin::write_varint(m.peer_height, &mut out);
    m.head.ser_bin(&mut out);
    bin::write_len(m.recent_ids.len(), &mut out);
    for id in &m.recent_ids {
        bin::write_varint(id.0, &mut out);
    }
    m.app_meta.ser_bin(&mut out);
    encode_proof(&mut out, &m.meta_proof);
    bin::write_len(m.chunks.len(), &mut out);
    for c in &m.chunks {
        bin::write_varint(u64::from(c.first_bucket), &mut out);
        bin::write_varint(u64::from(c.buckets), &mut out);
        bin::write_varint(u64::from(c.part), &mut out);
        bin::write_varint(u64::from(c.parts), &mut out);
        out.extend_from_slice(&c.digest.0);
    }
    out
}

/// Encodes a chunk fetch request payload.
pub fn encode_chunk_req(height: u64, index: u32) -> Vec<u8> {
    let mut out = payload_buf(TAG_CATCHUP_CHUNK_REQ, 15);
    bin::write_varint(height, &mut out);
    bin::write_varint(u64::from(index), &mut out);
    out
}

/// Encodes a chunk transfer payload.
pub fn encode_chunk(c: &ChunkTransfer) -> Vec<u8> {
    let proof_bytes: usize = c.proofs.iter().map(|p| 2 + p.len() * 33).sum();
    let mut out = payload_buf(
        TAG_CATCHUP_CHUNK,
        24 + c.chunk.len() + proof_bytes + 2 + c.top_proof.len() * 33,
    );
    bin::write_varint(c.height, &mut out);
    bin::write_varint(u64::from(c.index), &mut out);
    c.chunk.ser_bin(&mut out);
    bin::write_len(c.proofs.len(), &mut out);
    for p in &c.proofs {
        encode_proof(&mut out, p);
    }
    encode_proof(&mut out, &c.top_proof);
    out
}

/// Sanity bound on list lengths in transfer payloads (a larger prefix
/// is a malformed frame, not data). `Reader::len` already bounds every
/// count against the remaining input; this is the belt to that
/// suspenders for lists of multi-byte records.
const MAX_TRANSFER_ITEMS: usize = 1 << 20;

/// Decodes a tagged payload. `None` on any structural defect — wrong
/// [`WIRE_VERSION`], unknown tag, truncation, trailing bytes — the
/// caller drops malformed traffic (the sender is faulty, on an
/// incompatible wire format, or the bytes are corrupt; either way
/// there is nothing to do with them).
pub fn decode<M: Deserialize>(payload: &[u8]) -> Option<WireMsg<M>> {
    let (&version, rest) = payload.split_first()?;
    if version != WIRE_VERSION {
        return None; // other format generation: fail closed
    }
    let (&tag, body) = rest.split_first()?;
    let mut r = Reader::new(body);
    let msg = match tag {
        TAG_PROTOCOL => WireMsg::Protocol(M::de_bin(&mut r).ok()?),
        TAG_CATCHUP_REQ => WireMsg::CatchUpReq {
            from_height: r.varint().ok()?,
        },
        TAG_CATCHUP_RESP => {
            let peer_height = r.varint().ok()?;
            let count = r.len().ok()?;
            if count > MAX_TRANSFER_ITEMS {
                return None;
            }
            let mut blocks = Vec::with_capacity(count.min(4096));
            for _ in 0..count {
                let block = Block::de_bin(&mut r).ok()?;
                let payload = Vec::<u8>::de_bin(&mut r).ok()?;
                blocks.push(CatchUpBlock { block, payload });
            }
            WireMsg::CatchUpResp {
                peer_height,
                blocks,
            }
        }
        TAG_CATCHUP_MANIFEST => {
            let height = r.varint().ok()?;
            let peer_height = r.varint().ok()?;
            let head = Block::de_bin(&mut r).ok()?;
            let ids_len = r.len().ok()?;
            if ids_len > MAX_TRANSFER_ITEMS {
                return None;
            }
            let mut recent_ids = Vec::with_capacity(ids_len);
            for _ in 0..ids_len {
                recent_ids.push(BatchId(r.varint().ok()?));
            }
            let app_meta = Vec::<u8>::de_bin(&mut r).ok()?;
            let meta_proof = decode_proof(&mut r)?;
            let chunks_len = r.len().ok()?;
            if chunks_len > MAX_TRANSFER_ITEMS {
                return None;
            }
            let mut chunks = Vec::with_capacity(chunks_len);
            for _ in 0..chunks_len {
                let first_bucket = u32::try_from(r.varint().ok()?).ok()?;
                let buckets = u32::try_from(r.varint().ok()?).ok()?;
                let part = u32::try_from(r.varint().ok()?).ok()?;
                let parts = u32::try_from(r.varint().ok()?).ok()?;
                let mut digest = Digest::ZERO;
                digest.0.copy_from_slice(r.take(32).ok()?);
                chunks.push(ChunkInfo {
                    first_bucket,
                    buckets,
                    part,
                    parts,
                    digest,
                });
            }
            WireMsg::Manifest(Box::new(TransferManifest {
                height,
                peer_height,
                head,
                recent_ids,
                app_meta,
                meta_proof,
                chunks,
            }))
        }
        TAG_CATCHUP_CHUNK_REQ => WireMsg::ChunkReq {
            height: r.varint().ok()?,
            index: u32::try_from(r.varint().ok()?).ok()?,
        },
        TAG_CATCHUP_CHUNK => {
            let height = r.varint().ok()?;
            let index = u32::try_from(r.varint().ok()?).ok()?;
            let chunk = Vec::<u8>::de_bin(&mut r).ok()?;
            let proofs_len = r.len().ok()?;
            if proofs_len > MAX_TRANSFER_ITEMS {
                return None;
            }
            let mut proofs = Vec::with_capacity(proofs_len);
            for _ in 0..proofs_len {
                proofs.push(decode_proof(&mut r)?);
            }
            let top_proof = decode_proof(&mut r)?;
            WireMsg::Chunk(Box::new(ChunkTransfer {
                height,
                index,
                chunk,
                proofs,
                top_proof,
            }))
        }
        _ => return None,
    };
    if !r.is_empty() {
        return None; // trailing bytes: malformed
    }
    Some(msg)
}

/// Cheapest possible classification of a sealed payload: its tag byte,
/// iff the version byte matches and the tag is known. The event loop
/// routes on this without parsing a body — protocol bodies parse on
/// the event loop thread (they feed the state machine right there),
/// transfer bodies ship to the pipeline still encoded and parse off
/// the loop via [`decode_ref`].
pub fn payload_tag(payload: &[u8]) -> Option<u8> {
    match payload {
        [WIRE_VERSION, tag, ..] if *tag <= TAG_CATCHUP_CHUNK => Some(*tag),
        _ => None,
    }
}

/// Parses a protocol body returned by [`WireMsgRef::Protocol`]
/// (requires full consumption, like [`decode`]).
pub fn decode_protocol_body<M: Deserialize>(body: &[u8]) -> Option<M> {
    bin::from_slice(body).ok()
}

/// Borrowing counterpart of [`decode`]: same fail-closed structural
/// checks, same accepted byte strings (pinned by proptest equivalence
/// in `tests/wire_format.rs`), but bulk byte fields come back as
/// slices of `payload` instead of fresh vectors, and a protocol body
/// comes back undecoded. This is the hot-path entry point: the event
/// loop classifies a frame without copying it, and the pipeline copies
/// only the pieces that must outlive the envelope (its storage
/// boundary).
///
/// Implemented independently of [`decode`] rather than by delegation,
/// so the equivalence tests between the two readers are a real check
/// on both, not a tautology.
pub fn decode_ref(payload: &[u8]) -> Option<WireMsgRef<'_>> {
    let (&version, rest) = payload.split_first()?;
    if version != WIRE_VERSION {
        return None; // other format generation: fail closed
    }
    let (&tag, body) = rest.split_first()?;
    let mut r = Reader::new(body);
    let msg = match tag {
        TAG_PROTOCOL => {
            // The body is handed back whole; the caller's parse
            // enforces full consumption.
            return Some(WireMsgRef::Protocol(body));
        }
        TAG_CATCHUP_REQ => WireMsgRef::CatchUpReq {
            from_height: r.varint().ok()?,
        },
        TAG_CATCHUP_RESP => {
            let peer_height = r.varint().ok()?;
            let count = r.len().ok()?;
            if count > MAX_TRANSFER_ITEMS {
                return None;
            }
            let mut blocks = Vec::with_capacity(count.min(4096));
            for _ in 0..count {
                let block = Block::de_bin(&mut r).ok()?;
                let payload = r.bytes().ok()?;
                blocks.push(CatchUpBlockRef { block, payload });
            }
            WireMsgRef::CatchUpResp {
                peer_height,
                blocks,
            }
        }
        TAG_CATCHUP_MANIFEST => {
            let height = r.varint().ok()?;
            let peer_height = r.varint().ok()?;
            let head = Block::de_bin(&mut r).ok()?;
            let ids_len = r.len().ok()?;
            if ids_len > MAX_TRANSFER_ITEMS {
                return None;
            }
            let mut recent_ids = Vec::with_capacity(ids_len);
            for _ in 0..ids_len {
                recent_ids.push(BatchId(r.varint().ok()?));
            }
            let app_meta = r.bytes().ok()?;
            let meta_proof = decode_proof(&mut r)?;
            let chunks_len = r.len().ok()?;
            if chunks_len > MAX_TRANSFER_ITEMS {
                return None;
            }
            let mut chunks = Vec::with_capacity(chunks_len);
            for _ in 0..chunks_len {
                let first_bucket = u32::try_from(r.varint().ok()?).ok()?;
                let buckets = u32::try_from(r.varint().ok()?).ok()?;
                let part = u32::try_from(r.varint().ok()?).ok()?;
                let parts = u32::try_from(r.varint().ok()?).ok()?;
                let mut digest = Digest::ZERO;
                digest.0.copy_from_slice(r.take(32).ok()?);
                chunks.push(ChunkInfo {
                    first_bucket,
                    buckets,
                    part,
                    parts,
                    digest,
                });
            }
            WireMsgRef::Manifest(Box::new(TransferManifestRef {
                height,
                peer_height,
                head,
                recent_ids,
                app_meta,
                meta_proof,
                chunks,
            }))
        }
        TAG_CATCHUP_CHUNK_REQ => WireMsgRef::ChunkReq {
            height: r.varint().ok()?,
            index: u32::try_from(r.varint().ok()?).ok()?,
        },
        TAG_CATCHUP_CHUNK => {
            let height = r.varint().ok()?;
            let index = u32::try_from(r.varint().ok()?).ok()?;
            let chunk = r.bytes().ok()?;
            let proofs_len = r.len().ok()?;
            if proofs_len > MAX_TRANSFER_ITEMS {
                return None;
            }
            let mut proofs = Vec::with_capacity(proofs_len);
            for _ in 0..proofs_len {
                proofs.push(decode_proof(&mut r)?);
            }
            let top_proof = decode_proof(&mut r)?;
            WireMsgRef::Chunk(Box::new(ChunkTransferRef {
                height,
                index,
                chunk,
                proofs,
                top_proof,
            }))
        }
        _ => return None,
    };
    if !r.is_empty() {
        return None; // trailing bytes: malformed
    }
    Some(msg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spotless_ledger::CommitProof;
    use spotless_types::{BatchId, Digest, InstanceId, View};

    fn sample_block(height: u64) -> Block {
        let mut ledger = spotless_ledger::Ledger::new();
        for i in 0..=height {
            ledger.append(
                BatchId(i),
                Digest::from_u64(i),
                10,
                Digest::from_u64(i * 7 + 3),
                CommitProof {
                    instance: InstanceId(0),
                    view: View(i),
                    phase: spotless_types::CertPhase::Strong,
                    voted: Digest::from_u64(i),
                    slot: 0,
                    signers: vec![ReplicaId(0), ReplicaId(1), ReplicaId(2)],
                    sigs: vec![spotless_types::Signature::ZERO; 3],
                },
            );
        }
        ledger.block(height).unwrap().clone()
    }

    #[test]
    fn seal_verify_roundtrip_and_tamper_rejection() {
        let stores = KeyStore::cluster(b"envelope-test", 4);
        let env = Envelope::seal(&stores[2], encode_catchup_req(7));
        assert_eq!(env.from, ReplicaId(2));
        assert!(env.verify(&stores[0]).is_ok());
        let mut forged = env.clone();
        forged.from = ReplicaId(1);
        assert!(forged.verify(&stores[0]).is_err());
    }

    #[test]
    fn catchup_req_roundtrips() {
        let enc = encode_catchup_req(42);
        match decode::<u64>(&enc) {
            Some(WireMsg::CatchUpReq { from_height: 42 }) => {}
            _ => panic!("wrong decode"),
        }
    }

    #[test]
    fn catchup_resp_roundtrips() {
        let blocks = vec![
            CatchUpBlock {
                block: sample_block(0),
                payload: b"txns-0".to_vec(),
            },
            CatchUpBlock {
                block: sample_block(1),
                payload: Vec::new(),
            },
        ];
        let enc = encode_catchup_resp(9, &blocks);
        match decode::<u64>(&enc) {
            Some(WireMsg::CatchUpResp {
                peer_height,
                blocks: got,
            }) => {
                assert_eq!(peer_height, 9);
                assert_eq!(got, blocks);
            }
            _ => panic!("wrong decode"),
        }
    }

    fn sample_manifest() -> TransferManifest {
        TransferManifest {
            height: 5,
            peer_height: 9,
            head: sample_block(4),
            recent_ids: vec![BatchId(2), BatchId(3), BatchId(4)],
            app_meta: b"meta-bytes".to_vec(),
            meta_proof: vec![
                ProofStep {
                    sibling: Digest::from_u64(1),
                    sibling_on_right: true,
                },
                ProofStep {
                    sibling: Digest::from_u64(2),
                    sibling_on_right: false,
                },
            ],
            chunks: vec![
                ChunkInfo {
                    first_bucket: 0,
                    buckets: 512,
                    part: 0,
                    parts: 1,
                    digest: Digest::from_u64(100),
                },
                ChunkInfo {
                    first_bucket: 512,
                    buckets: 1,
                    part: 1,
                    parts: 3,
                    digest: Digest::from_u64(101),
                },
            ],
        }
    }

    #[test]
    fn manifest_roundtrips() {
        let m = sample_manifest();
        let enc = encode_catchup_manifest(&m);
        match decode::<u64>(&enc) {
            Some(WireMsg::Manifest(got)) => assert_eq!(*got, m),
            _ => panic!("wrong decode"),
        }
        // Truncation fails closed.
        assert!(decode::<u64>(&enc[..enc.len() - 1]).is_none());
        let mut trailing = enc;
        trailing.push(0);
        assert!(decode::<u64>(&trailing).is_none());
    }

    #[test]
    fn chunk_req_and_chunk_roundtrip() {
        let enc = encode_chunk_req(7, 3);
        match decode::<u64>(&enc) {
            Some(WireMsg::ChunkReq {
                height: 7,
                index: 3,
            }) => {}
            _ => panic!("wrong decode"),
        }
        let c = ChunkTransfer {
            height: 7,
            index: 3,
            chunk: b"canonical-chunk-bytes".to_vec(),
            proofs: vec![
                vec![ProofStep {
                    sibling: Digest::from_u64(9),
                    sibling_on_right: false,
                }],
                vec![],
            ],
            top_proof: vec![ProofStep {
                sibling: Digest::from_u64(11),
                sibling_on_right: true,
            }],
        };
        let enc = encode_chunk(&c);
        match decode::<u64>(&enc) {
            Some(WireMsg::Chunk(got)) => assert_eq!(*got, c),
            _ => panic!("wrong decode"),
        }
        assert!(decode::<u64>(&enc[..enc.len() - 1]).is_none());
    }

    #[test]
    fn borrowing_decode_is_zero_copy_and_matches_owning() {
        // Manifest: meta bytes must be a slice *into* the encoded
        // payload, and the owned conversion must equal the owning
        // decoder's result.
        let m = sample_manifest();
        let enc = encode_catchup_manifest(&m);
        let Some(WireMsgRef::Manifest(got)) = decode_ref(&enc) else {
            panic!("wrong decode_ref variant");
        };
        assert_eq!(got.to_owned(), m);
        let range = enc.as_ptr_range();
        assert!(
            range.contains(&got.app_meta.as_ptr()),
            "app_meta must borrow from the payload buffer"
        );

        // Chunk: same for the chunk bytes (the bulk of the frame).
        let c = ChunkTransfer {
            height: 7,
            index: 3,
            chunk: b"canonical-chunk-bytes".to_vec(),
            proofs: vec![vec![]],
            top_proof: vec![ProofStep {
                sibling: Digest::from_u64(4),
                sibling_on_right: false,
            }],
        };
        let enc = encode_chunk(&c);
        let Some(WireMsgRef::Chunk(got)) = decode_ref(&enc) else {
            panic!("wrong decode_ref variant");
        };
        assert_eq!(got.to_owned(), c);
        assert!(enc.as_ptr_range().contains(&got.chunk.as_ptr()));

        // Protocol: the body comes back undecoded and parses to the
        // same message the owning decoder produces.
        let enc = encode_protocol(&42u64);
        let Some(WireMsgRef::Protocol(body)) = decode_ref(&enc) else {
            panic!("wrong decode_ref variant");
        };
        assert_eq!(decode_protocol_body::<u64>(body), Some(42));
        match decode::<u64>(&enc) {
            Some(WireMsg::Protocol(42)) => {}
            _ => panic!("owning decode disagrees"),
        }
        // A trailing byte after the protocol body fails both readers.
        let mut trailing = enc.clone();
        trailing.push(0);
        assert!(decode::<u64>(&trailing).is_none());
        let Some(WireMsgRef::Protocol(body)) = decode_ref(&trailing) else {
            panic!("wrong decode_ref variant");
        };
        assert!(decode_protocol_body::<u64>(body).is_none());
    }

    #[test]
    fn malformed_payloads_decode_to_none() {
        assert!(decode::<u64>(&[]).is_none());
        assert!(decode::<u64>(&[WIRE_VERSION]).is_none(), "version only");
        assert!(
            decode::<u64>(&[WIRE_VERSION, 9, 1, 2]).is_none(),
            "unknown tag"
        );
        assert!(
            decode::<u64>(&[WIRE_VERSION, TAG_CATCHUP_REQ]).is_none(),
            "missing body"
        );
        assert!(
            decode::<u64>(&[WIRE_VERSION, TAG_CATCHUP_CHUNK_REQ, 1]).is_none(),
            "short chunk req"
        );
        let mut resp = encode_catchup_resp(3, &[]);
        resp.push(0);
        assert!(decode::<u64>(&resp).is_none(), "trailing bytes");
        // A proof step with an out-of-range direction byte is rejected.
        let c = ChunkTransfer {
            height: 1,
            index: 0,
            chunk: Vec::new(),
            proofs: vec![],
            top_proof: vec![ProofStep {
                sibling: Digest::from_u64(1),
                sibling_on_right: true,
            }],
        };
        let mut enc = encode_chunk(&c);
        let last = enc.len() - 1;
        enc[last] = 7; // the direction byte of the last step
        assert!(decode::<u64>(&enc).is_none(), "bad direction byte");
    }

    #[test]
    fn wrong_wire_version_fails_closed() {
        // A valid payload re-badged with any other version byte must
        // be dropped unread — this is the mixed-cluster guard. 0xB3 is
        // the previous revision (single-level state tree, no fragment
        // fields): a cluster mixing the two drops each other's frames
        // instead of misreading the proof layout.
        let enc = encode_catchup_req(42);
        for bad_version in [0u8, 1, TAG_CATCHUP_RESP, 0xB1, 0xB2, 0xB3, 0xFF] {
            let mut reframed = enc.clone();
            reframed[0] = bad_version;
            assert!(decode::<u64>(&reframed).is_none(), "{bad_version:#x}");
        }
        // (That the version byte sits outside the tag range — so a v1
        // tag-first decoder never matches it either — is a compile-time
        // assertion next to WIRE_VERSION.)
    }

    #[test]
    fn oversized_proof_depth_is_rejected() {
        // MAX_PROOF_DEPTH steps decode; one more is a malformed frame.
        let step = ProofStep {
            sibling: Digest::from_u64(3),
            sibling_on_right: true,
        };
        let ok = ChunkTransfer {
            height: 1,
            index: 0,
            chunk: Vec::new(),
            proofs: vec![vec![step; MAX_PROOF_DEPTH]],
            top_proof: vec![step; 3],
        };
        assert!(decode::<u64>(&encode_chunk(&ok)).is_some());
        let too_deep = ChunkTransfer {
            proofs: vec![vec![step; MAX_PROOF_DEPTH + 1]],
            ..ok
        };
        assert!(decode::<u64>(&encode_chunk(&too_deep)).is_none());
    }
}
