//! # SpotLess
//!
//! A full Rust reproduction of **"SpotLess: Concurrent Rotational
//! Consensus Made Practical through Rapid View Synchronization"**
//! (ICDE 2024): the protocol itself, the four baselines it is evaluated
//! against (PBFT, RCC, chained HotStuff, Narwhal-HS), a deterministic
//! discrete-event evaluation substrate standing in for the paper's cloud
//! testbed, the YCSB workload and key-value execution engine, a
//! hash-chained ledger, and a tokio runtime for real deployments.
//!
//! This crate is the facade: it re-exports the workspace members under
//! one name and hosts the runnable examples (`examples/`) and the
//! cross-crate integration tests (`tests/`).
//!
//! ## Quick start
//!
//! ```
//! use spotless::core::{ReplicaConfig, SpotLessReplica};
//! use spotless::simnet::{ClosedLoopDriver, SimConfig, Simulation};
//! use spotless::types::ClusterConfig;
//!
//! // A 4-replica cluster with 4 concurrent instances on the simulator.
//! let cluster = ClusterConfig::new(4);
//! let nodes: Vec<SpotLessReplica> = cluster
//!     .replicas()
//!     .map(|r| SpotLessReplica::new(ReplicaConfig::honest(cluster.clone(), r)))
//!     .collect();
//! let mut cfg = SimConfig::new(cluster);
//! cfg.duration = spotless::types::SimDuration::from_millis(600);
//! let report = Simulation::new(cfg, nodes, ClosedLoopDriver::new(2)).run();
//! assert!(report.txns > 0);
//! ```
//!
//! For a real (tokio) deployment see `examples/quickstart.rs`.

#![forbid(unsafe_code)]

/// The SpotLess protocol (chained rotational consensus + RVS).
pub use spotless_core as core;

/// Baseline protocols: PBFT, RCC, HotStuff, Narwhal-HS.
pub use spotless_baselines as baselines;

/// Cryptographic substrate (SHA-256, HMAC, Ed25519).
pub use spotless_crypto as crypto;

/// Hash-chained blockchain ledger.
pub use spotless_ledger as ledger;

/// Deterministic discrete-event simulator.
pub use spotless_simnet as simnet;

/// Durable ledger storage (segmented log, snapshots, crash recovery).
pub use spotless_storage as storage;

/// The durable, pipelined replica runtime every protocol deploys on.
pub use spotless_runtime as runtime;

/// Transport fabrics (in-process channels, TCP) and cluster assembly.
pub use spotless_transport as transport;

/// Shared identifiers, time, configuration, node model.
pub use spotless_types as types;

/// YCSB workload, key-value engine, batching.
pub use spotless_workload as workload;
